package resilient

import (
	"fmt"
	"testing"
	"time"
)

// TestBreakerFullCycleWithHook drives one breaker through the complete
// closed → open → half-open → closed automaton and checks both the
// State() accessor and the transition-hook callback at every step.
func TestBreakerFullCycleWithHook(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(2, time.Minute, func() time.Time { return clock })
	var transitions []string
	b.OnTransition(func(from, to string) {
		transitions = append(transitions, from+"→"+to)
	})

	if got := b.State(); got != "closed" {
		t.Fatalf("initial state %q, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow calls")
	}

	// One failure below threshold: still closed, no transition.
	b.Failure()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after 1/2 failures %q, want closed", got)
	}
	if len(transitions) != 0 {
		t.Fatalf("no transition expected yet, got %v", transitions)
	}

	// Second failure reaches the threshold: closed → open, calls blocked.
	b.Failure()
	if got := b.State(); got != "open" {
		t.Fatalf("state after threshold %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must block calls during cooldown")
	}

	// Cooldown elapses: the next Allow admits one probe, open → half-open.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker past cooldown must admit a half-open probe")
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state during probe %q, want half-open", got)
	}

	// The probe succeeds: half-open → closed, cycle complete.
	b.Success()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful probe %q, want closed", got)
	}

	want := []string{"closed→open", "open→half-open", "half-open→closed"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

// TestBreakerFailedProbeReopens checks the other half-open edge: a failed
// probe goes straight back to open and restarts the cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(1, time.Minute, func() time.Time { return clock })
	var transitions []string
	b.OnTransition(func(from, to string) { transitions = append(transitions, from+"→"+to) })

	b.Failure() // threshold 1: closed → open
	clock = clock.Add(time.Minute)
	if !b.Allow() { // open → half-open
		t.Fatal("probe should be admitted after cooldown")
	}
	b.Failure() // half-open → open
	if got := b.State(); got != "open" {
		t.Fatalf("state after failed probe %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("freshly reopened breaker must block until the next cooldown")
	}
	want := []string{"closed→open", "open→half-open", "half-open→open"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

func TestStateValue(t *testing.T) {
	for state, want := range map[string]int64{"closed": 0, "open": 1, "half-open": 2, "bogus": -1} {
		if got := StateValue(state); got != want {
			t.Errorf("StateValue(%q) = %d, want %d", state, got, want)
		}
	}
}

// TestBreakerSuccessWhileClosedIsQuiet guards against hook spam: Success
// on an already-closed breaker is not a transition.
func TestBreakerSuccessWhileClosedIsQuiet(t *testing.T) {
	b := NewBreaker(3, time.Minute, nil)
	calls := 0
	b.OnTransition(func(_, _ string) { calls++ })
	b.Success()
	b.Success()
	if calls != 0 {
		t.Fatalf("no-op successes fired %d transitions, want 0", calls)
	}
}

// TestBreakerJitterSpreadsProbeTimes is the half-open desynchronization
// regression test: with jitter set, an opened breaker refuses its probe at
// the bare cooldown boundary and admits it only once the jittered wait has
// elapsed — and two breakers seeded differently draw different waits, so
// they do not probe in lockstep. Driven entirely by a fake clock.
func TestBreakerJitterSpreadsProbeTimes(t *testing.T) {
	const cooldown = time.Minute
	const jitterMax = 30 * time.Second

	// probeDelay opens a freshly seeded breaker and walks the fake clock
	// forward second by second until Allow admits the half-open probe.
	probeDelay := func(seed int64) time.Duration {
		clock := time.Unix(0, 0)
		b := NewBreaker(1, cooldown, func() time.Time { return clock })
		b.SetJitter(jitterMax, seed)
		b.Failure() // threshold 1: opens immediately, drawing this wait's jitter
		if b.State() != "open" {
			t.Fatalf("breaker not open after failure: %s", b.State())
		}
		for elapsed := time.Duration(0); elapsed <= cooldown+jitterMax; elapsed += time.Second {
			clock = time.Unix(0, 0).Add(elapsed)
			if b.Allow() {
				return elapsed
			}
		}
		t.Fatalf("seed %d: breaker never admitted a probe within cooldown+jitterMax", seed)
		return 0
	}

	// Each draw lands in [cooldown, cooldown+jitterMax); same seed replays
	// the same wait, so the test is deterministic.
	seen := map[time.Duration]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		d := probeDelay(seed)
		if d < cooldown || d >= cooldown+jitterMax+time.Second {
			t.Fatalf("seed %d: probe admitted after %v, want within [%v, %v)", seed, d, cooldown, cooldown+jitterMax)
		}
		if d2 := probeDelay(seed); d2 != d {
			t.Fatalf("seed %d: replay drew %v then %v; jitter must be replayable", seed, d, d2)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 distinct seeds all drew the same probe delay %v; jitter is not spreading probes", seen)
	}

	// A second opening of the same breaker draws fresh jitter rather than
	// reusing the first wait: consecutive draws from one source differ for
	// at least one seed (seed 1 here, pinned by the deterministic PRNG).
	clock := time.Unix(0, 0)
	b := NewBreaker(1, cooldown, func() time.Time { return clock })
	b.SetJitter(jitterMax, 1)
	waits := make([]time.Duration, 2)
	for i := range waits {
		b.Failure()
		opened := clock
		for !b.Allow() {
			clock = clock.Add(time.Second)
		}
		waits[i] = clock.Sub(opened)
		b.Failure() // fail the half-open probe: reopens with a fresh draw
		for !b.Allow() {
			clock = clock.Add(time.Second)
		}
		b.Success()
	}
	if waits[0] == waits[1] {
		t.Fatalf("consecutive openings drew identical waits %v; each opening must redraw", waits[0])
	}

	// Without jitter the probe comes exactly at the cooldown: the default
	// path stays deterministic for everyone who never opts in.
	clock = time.Unix(0, 0)
	plain := NewBreaker(1, cooldown, func() time.Time { return clock })
	plain.Failure()
	clock = clock.Add(cooldown)
	if !plain.Allow() {
		t.Fatal("jitterless breaker must admit its probe exactly at the cooldown")
	}
}

// TestDefaultBreakerJitterBoundsProbeWindow pins the production default
// now that serving enables probe jitter by default: DefaultBreakerJitter
// is an eighth of the cooldown (assuming the gateway's 30s cooldown for
// non-positive inputs), and a breaker jittered with it admits its probe
// within [cooldown, cooldown+cooldown/8] — late enough to desynchronize
// a fleet, early enough to keep recovery prompt. Fake clock throughout.
func TestDefaultBreakerJitterBoundsProbeWindow(t *testing.T) {
	if got := DefaultBreakerJitter(80 * time.Second); got != 10*time.Second {
		t.Fatalf("DefaultBreakerJitter(80s) = %v, want 10s", got)
	}
	for _, d := range []time.Duration{0, -time.Second} {
		if got := DefaultBreakerJitter(d); got != 30*time.Second/8 {
			t.Fatalf("DefaultBreakerJitter(%v) = %v, want %v", d, got, 30*time.Second/8)
		}
	}

	const cooldown = 40 * time.Second
	jitterMax := DefaultBreakerJitter(cooldown) // 5s
	for seed := int64(1); seed <= 4; seed++ {
		clock := time.Unix(0, 0)
		b := NewBreaker(1, cooldown, func() time.Time { return clock })
		b.SetJitter(jitterMax, seed)
		b.Failure()
		clock = time.Unix(0, 0).Add(cooldown - time.Second)
		if b.Allow() {
			t.Fatalf("seed %d: probe admitted before the cooldown elapsed", seed)
		}
		admitted := time.Duration(-1)
		for elapsed := time.Duration(0); elapsed <= jitterMax; elapsed += time.Second {
			clock = time.Unix(0, 0).Add(cooldown + elapsed)
			if b.Allow() {
				admitted = elapsed
				break
			}
		}
		if admitted < 0 {
			t.Fatalf("seed %d: probe not admitted within cooldown+%v", seed, jitterMax)
		}
	}
}
