package resilient

// Gateway-level answer-cache behavior: hits skip the pipeline, carry the
// cached=true trace attribute, and invalidate on data mutation (via the
// database fingerprint), TTL expiry, and LRU eviction.

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// counting wraps answering with an Interpret call counter so tests can
// prove a cache hit never re-entered the pipeline.
func counting(name, sql string) (*fakeInterp, *atomic.Int64) {
	var calls atomic.Int64
	return &fakeInterp{name: name, fn: func(q string) ([]nlq.Interpretation, error) {
		calls.Add(1)
		return []nlq.Interpretation{{SQL: sqlparse.MustParse(sql), Score: 0.9}}, nil
	}}, &calls
}

func TestCacheHitSkipsPipeline(t *testing.T) {
	db := testDB(t)
	eng, calls := counting("a", "SELECT name FROM customer WHERE city = 'Berlin'")
	gw := New(db, []nlq.Interpreter{eng}, Config{Cache: qcache.New(qcache.Config{})})
	ctx := context.Background()

	cold, err := gw.Ask(ctx, "customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first Ask must not be cached")
	}
	if cold.Trace.Find("execute") == nil {
		t.Fatal("cold Ask should carry an execute span")
	}

	warm, err := gw.Ask(ctx, "customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second Ask must be served from cache")
	}
	if calls.Load() != 1 {
		t.Fatalf("interpreter ran %d times, want 1", calls.Load())
	}
	if warm.Result != cold.Result {
		t.Fatal("cached hit should share the result set")
	}
	if warm.Engine != cold.Engine || warm.Score != cold.Score {
		t.Fatalf("cached answer metadata diverged: %+v vs %+v", warm, cold)
	}
	if warm.Trace.Find("execute") != nil {
		t.Fatalf("warm hit must not execute; trace:\n%s", warm.Trace)
	}
	if !strings.Contains(warm.Trace.String(), "cached=true") {
		t.Fatalf("warm trace lacks cached=true attribute:\n%s", warm.Trace)
	}
}

func TestCacheHitOnNormalizedVariant(t *testing.T) {
	db := testDB(t)
	eng, calls := counting("a", "SELECT name FROM customer")
	gw := New(db, []nlq.Interpreter{eng}, Config{Cache: qcache.New(qcache.Config{})})
	ctx := context.Background()

	if _, err := gw.Ask(ctx, "show top five customers"); err != nil {
		t.Fatal(err)
	}
	ans, err := gw.Ask(ctx, "Show  TOP 5 Customers")
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Cached {
		t.Fatal("normalized variant should hit the cache")
	}
	if calls.Load() != 1 {
		t.Fatalf("interpreter ran %d times, want 1", calls.Load())
	}
}

func TestCacheInvalidatesOnInsert(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Cache: qcache.New(qcache.Config{})})
	ctx := context.Background()

	cold, err := gw.Ask(ctx, "all customers")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cold.Result.Rows); n != 3 {
		t.Fatalf("seed table has %d rows, want 3", n)
	}
	if warm, _ := gw.Ask(ctx, "all customers"); !warm.Cached {
		t.Fatal("repeat before mutation should hit")
	}

	// Mutation bumps the table version, changing the fingerprint: the old
	// entry is orphaned, not served.
	db.Table("customer").MustInsert(sqldata.NewInt(4), sqldata.NewText("dave"), sqldata.NewText("Hamburg"))

	fresh, err := gw.Ask(ctx, "all customers")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("post-insert Ask must not serve the stale entry")
	}
	if n := len(fresh.Result.Rows); n != 4 {
		t.Fatalf("post-insert result has %d rows, want 4 (stale cache?)", n)
	}
	if warm, _ := gw.Ask(ctx, "all customers"); !warm.Cached || len(warm.Result.Rows) != 4 {
		t.Fatal("new fingerprint should cache the fresh 4-row answer")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Cache: qcache.New(qcache.Config{TTL: time.Minute, Now: clock})})
	ctx := context.Background()

	if _, err := gw.Ask(ctx, "all customers"); err != nil {
		t.Fatal(err)
	}
	if warm, _ := gw.Ask(ctx, "all customers"); !warm.Cached {
		t.Fatal("within TTL should hit")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if ans, _ := gw.Ask(ctx, "all customers"); ans.Cached {
		t.Fatal("expired entry must not be served")
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Cache: qcache.New(qcache.Config{MaxEntries: 2, Shards: 1})})
	ctx := context.Background()

	for _, q := range []string{"customers one", "customers two", "customers three"} {
		if _, err := gw.Ask(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2 with three distinct questions: the first is gone.
	if ans, _ := gw.Ask(ctx, "customers one"); ans.Cached {
		t.Fatal("LRU entry should have been evicted under pressure")
	}
	if ans, _ := gw.Ask(ctx, "customers three"); !ans.Cached {
		t.Fatal("most recent entry should have survived eviction")
	}
}

func TestCacheDoesNotStoreFailures(t *testing.T) {
	db := testDB(t)
	cache := qcache.New(qcache.Config{})
	gw := New(db, []nlq.Interpreter{unanswerable("a")}, Config{Cache: cache})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := gw.Ask(ctx, "unanswerable question"); err == nil {
			t.Fatal("expected chain exhaustion")
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("failures must not be cached; cache has %d entries", cache.Len())
	}
}

func TestCacheMetricsAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Cache: qcache.New(qcache.Config{Metrics: reg}), Metrics: reg})
	ctx := context.Background()

	gw.Ask(ctx, "all customers")
	gw.Ask(ctx, "all customers")
	if n := reg.Counter(qcache.MetricHits).Value(); n != 1 {
		t.Fatalf("cache hits = %d, want 1", n)
	}
	if n := reg.Counter(qcache.MetricMisses).Value(); n != 1 {
		t.Fatalf("cache misses = %d, want 1", n)
	}
	// Both the cold and the cached Ask count as served queries.
	if n := reg.Counter(MetricQueries, "engine", "a", "outcome", "ok").Value(); n != 2 {
		t.Fatalf("query counter = %d, want 2", n)
	}
}
