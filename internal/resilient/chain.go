package resilient

import (
	"fmt"
	"strings"

	"nlidb/internal/athena"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/parsenl"
	"nlidb/internal/patternnl"
	"nlidb/internal/sqldata"
)

// DefaultChainNames is the survey-ordered degradation sequence: the
// ontology-driven BI interpreter first, then parse+schema, then pattern,
// then keyword — each step trading precision for coverage and simplicity.
var DefaultChainNames = []string{"athena", "parse", "pattern", "keyword"}

// EngineByName constructs one entity-based interpreter over db by its
// family name (athena, parse, pattern, keyword).
func EngineByName(name string, db *sqldata.Database, lex *lexicon.Lexicon) (nlq.Interpreter, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "keyword":
		return keywordnl.New(db, lex), nil
	case "pattern":
		return patternnl.New(db, lex), nil
	case "parse":
		return parsenl.New(db, lex), nil
	case "athena":
		return athena.New(db, lex), nil
	default:
		return nil, fmt.Errorf("resilient: unknown engine %q", name)
	}
}

// ChainByNames constructs a fallback chain from engine names, dropping
// duplicates while keeping first-occurrence order.
func ChainByNames(db *sqldata.Database, lex *lexicon.Lexicon, names []string) ([]nlq.Interpreter, error) {
	var chain []nlq.Interpreter
	seen := map[string]bool{}
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		eng, err := EngineByName(n, db, lex)
		if err != nil {
			return nil, err
		}
		chain = append(chain, eng)
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("resilient: empty engine chain")
	}
	return chain, nil
}

// DefaultChain builds the default athena → parse → pattern → keyword
// fallback chain over db.
func DefaultChain(db *sqldata.Database, lex *lexicon.Lexicon) []nlq.Interpreter {
	chain, err := ChainByNames(db, lex, DefaultChainNames)
	if err != nil {
		panic(err) // unreachable: the default names are all known
	}
	return chain
}
