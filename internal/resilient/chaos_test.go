package resilient_test

// The seeded chaos suite: replay a benchdata workload through the Gateway
// while the fault injector forces panics, errors, and slowness at every
// pipeline stage, and assert the resilience contract — no panic ever
// escapes Ask, every query returns within deadline plus tolerance, and the
// fallback chain answers at least everything the healthy keyword engine
// could answer on its own.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
	"nlidb/internal/resilient/faultinject"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

const (
	chaosSeed     = 7
	chaosTimeout  = 2 * time.Second
	chaosSlack    = 1 * time.Second // scheduling tolerance on top of the deadline
	fullPerDomain = 130             // 2 domains ≥ 200 queries in full mode
	shortPer      = 30
)

// chaosWorkload is one domain's replayable slice of the workload.
type chaosWorkload struct {
	domain *benchdata.Domain
	pairs  []dataset.Pair
	gold   []*sqldata.Result
}

func chaosWorkloads(t *testing.T) []chaosWorkload {
	t.Helper()
	per := fullPerDomain
	if testing.Short() {
		per = shortPer
	}
	var out []chaosWorkload
	total := 0
	for i, d := range []*benchdata.Domain{benchdata.Sales(chaosSeed), benchdata.Movies(chaosSeed + 1)} {
		pairs := d.GeneratePairs(per, chaosSeed+int64(i)*13)
		eng := sqlexec.New(d.DB)
		w := chaosWorkload{domain: d, pairs: pairs}
		for _, p := range pairs {
			gold, err := eng.Run(p.SQL)
			if err != nil {
				t.Fatalf("gold %q fails: %v", p.SQL, err)
			}
			w.gold = append(w.gold, gold)
		}
		total += len(pairs)
		out = append(out, w)
	}
	if !testing.Short() && total < 200 {
		t.Fatalf("workload has %d queries, the chaos contract requires ≥200", total)
	}
	return out
}

func matches(pred, gold *sqldata.Result, goldStmt *sqlparse.SelectStmt) bool {
	if len(goldStmt.OrderBy) > 0 {
		return pred.EqualOrdered(gold)
	}
	return pred.EqualUnordered(gold)
}

// askGuarded calls Ask under its own recover so an escaped panic is an
// explicit test failure rather than a crashed test binary, and checks the
// deadline-plus-tolerance contract.
func askGuarded(t *testing.T, gw *resilient.Gateway, question string) (ans *resilient.Answer, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Gateway.Ask(%q): %v", question, r)
		}
	}()
	start := time.Now()
	ans, err = gw.Ask(context.Background(), question)
	if elapsed := time.Since(start); elapsed > chaosTimeout+chaosSlack {
		t.Errorf("Ask(%q) took %v, want ≤ deadline %v + tolerance %v", question, elapsed, chaosTimeout, chaosSlack)
	}
	return ans, err
}

// TestChaosDegradedChainBeatsKeywordBaseline kills the three upper engines
// (athena, parse, pattern) with alternating panics and errors at every
// stage and checks the gateway still answers — correctly — at least
// everything the untouched keyword engine answers on its own.
func TestChaosDegradedChainBeatsKeywordBaseline(t *testing.T) {
	for _, w := range chaosWorkloads(t) {
		lex := lexicon.New()

		// Healthy-keyword baseline, no gateway involved.
		kw := keywordnl.New(w.domain.DB, lex)
		baselineAnswered := make([]bool, len(w.pairs))
		baselineCorrect := 0
		eng := sqlexec.New(w.domain.DB)
		for i, p := range w.pairs {
			ins, err := kw.Interpret(p.Question)
			if err != nil {
				continue
			}
			best, err := nlq.Best(ins)
			if err != nil || best.SQL == nil {
				continue
			}
			baselineAnswered[i] = true
			if res, err := eng.Run(best.SQL); err == nil && matches(res, w.gold[i], p.SQL) {
				baselineCorrect++
			}
		}

		// Deterministically fault every stage of every non-keyword engine.
		calls := 0
		hook := func(site resilient.Site, engine string) resilient.Fault {
			if engine == "keyword" {
				return resilient.Fault{}
			}
			calls++
			if calls%2 == 0 {
				return resilient.Fault{Panic: fmt.Sprintf("chaos: %s/%s", site, engine)}
			}
			return resilient.Fault{Err: fmt.Errorf("chaos: %s/%s", site, engine)}
		}
		gw := resilient.New(w.domain.DB, resilient.DefaultChain(w.domain.DB, lex),
			resilient.Config{Timeout: chaosTimeout, Hook: hook})

		gwCorrect := 0
		for i, p := range w.pairs {
			ans, err := askGuarded(t, gw, p.Question)
			if err != nil {
				if baselineAnswered[i] {
					t.Errorf("%s: gateway failed %q which healthy keyword answers: %v", w.domain.Name, p.Question, err)
				}
				if !errors.Is(err, resilient.ErrExhausted) {
					t.Errorf("%s: untyped gateway error for %q: %v", w.domain.Name, p.Question, err)
				}
				continue
			}
			if matches(ans.Result, w.gold[i], p.SQL) {
				gwCorrect++
			}
		}
		if gwCorrect < baselineCorrect {
			t.Errorf("%s: degraded gateway correct=%d < keyword baseline=%d", w.domain.Name, gwCorrect, baselineCorrect)
		}
		t.Logf("%s: %d queries, gateway correct=%d, keyword baseline=%d",
			w.domain.Name, len(w.pairs), gwCorrect, baselineCorrect)
	}
}

// TestChaosRandomFaultsNeverEscape replays the workload under seeded
// random panics, errors, and slowness across every engine and site, and
// asserts the gateway's hard contract: no escaped panics, bounded latency,
// and typed errors when the whole chain is down.
func TestChaosRandomFaultsNeverEscape(t *testing.T) {
	for _, w := range chaosWorkloads(t) {
		lex := lexicon.New()
		inj := faultinject.New(chaosSeed)
		inj.PanicRate, inj.ErrorRate, inj.SlowRate = 0.12, 0.15, 0.08
		inj.SlowBy = 5 * time.Millisecond
		gw := resilient.New(w.domain.DB, resilient.DefaultChain(w.domain.DB, lex),
			resilient.Config{
				Timeout:         chaosTimeout,
				Hook:            inj.Hook(),
				BreakerCooldown: 100 * time.Millisecond,
			})

		answered := 0
		for i, p := range w.pairs {
			ans, err := askGuarded(t, gw, p.Question)
			if err != nil {
				if !errors.Is(err, resilient.ErrExhausted) {
					t.Errorf("untyped gateway error for %q: %v", p.Question, err)
				}
				continue
			}
			if ans.Result == nil || ans.SQL == nil || ans.Engine == "" {
				t.Fatalf("incomplete answer for %q: %+v", p.Question, ans)
			}
			_ = i
			answered++
		}
		counts := inj.Counts()
		for _, kind := range []string{"panic", "error", "slow"} {
			if counts[kind] == 0 {
				t.Errorf("%s: injector never fired a %q fault (counts %v)", w.domain.Name, kind, counts)
			}
		}
		if answered == 0 {
			t.Errorf("%s: gateway answered nothing under random chaos", w.domain.Name)
		}
		t.Logf("%s: answered %d/%d under faults %v", w.domain.Name, answered, len(w.pairs), counts)
	}
}

// TestChaosConcurrentFaultsUnderRace is the concurrent version of the
// random-fault contract, and the forcing function for the -race sweep:
// N goroutines hammer one shared gateway — with a shared answer cache —
// while the seeded injector fires panics, errors, and slowness at every
// site. The contract holds per query exactly as in the serial test (no
// escaped panics, typed errors only), breaker and cache state stay
// internally consistent, and every question is answered or failed, never
// lost.
func TestChaosConcurrentFaultsUnderRace(t *testing.T) {
	const goroutines = 8
	for _, w := range chaosWorkloads(t) {
		lex := lexicon.New()
		inj := faultinject.New(chaosSeed + 99)
		inj.PanicRate, inj.ErrorRate, inj.SlowRate = 0.10, 0.12, 0.05
		inj.SlowBy = 2 * time.Millisecond
		gw := resilient.New(w.domain.DB, resilient.DefaultChain(w.domain.DB, lex),
			resilient.Config{
				Timeout:         chaosTimeout,
				Hook:            inj.Hook(),
				BreakerCooldown: 50 * time.Millisecond,
				Workers:         goroutines,
				Cache:           qcache.New(qcache.Config{MaxEntries: 256}),
			})

		// Each goroutine walks the whole workload at a different offset so
		// the same questions are in flight simultaneously — the cache and
		// breakers see genuine contention.
		var answered, failed, panicked atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.Add(1)
						t.Errorf("panic escaped concurrent Ask: %v", r)
					}
				}()
				for i := range w.pairs {
					p := w.pairs[(i+g*len(w.pairs)/goroutines)%len(w.pairs)]
					ans, err := gw.Ask(context.Background(), p.Question)
					if err != nil {
						if !errors.Is(err, resilient.ErrExhausted) {
							t.Errorf("untyped concurrent gateway error for %q: %v", p.Question, err)
						}
						failed.Add(1)
						continue
					}
					if ans.Result == nil || ans.SQL == nil || ans.Engine == "" {
						t.Errorf("incomplete concurrent answer for %q", p.Question)
					}
					answered.Add(1)
				}
			}(g)
		}
		wg.Wait()

		total := int64(goroutines * len(w.pairs))
		if got := answered.Load() + failed.Load(); got != total {
			t.Errorf("%s: %d of %d asks unaccounted for", w.domain.Name, total-got, total)
		}
		if answered.Load() == 0 {
			t.Errorf("%s: nothing answered under concurrent chaos", w.domain.Name)
		}
		for engine, state := range gw.BreakerStates() {
			switch state {
			case "closed", "open", "half-open":
			default:
				t.Errorf("%s: breaker %s in impossible state %q", w.domain.Name, engine, state)
			}
		}
		t.Logf("%s: %d goroutines × %d questions: answered=%d failed=%d faults=%v",
			w.domain.Name, goroutines, len(w.pairs), answered.Load(), failed.Load(), inj.Counts())
	}
}
