package resilient_test

// Cross-engine determinism regression: the same question, served twice —
// serially on independent gateways, and concurrently on a shared one —
// must produce byte-identical result tables. This pins down any
// map-iteration-order leak in interpretation candidate ranking, sqlexec
// grouping/projection, or invindex tie-breaking: one nondeterministic
// ordering anywhere surfaces as a differing Result.String().

import (
	"context"
	"sync"
	"testing"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
)

// determinismWorkload samples real generated questions from both bench
// domains, keeping the suite fast while covering joins, grouping,
// ordering, and filters.
func determinismWorkload(t *testing.T) map[*benchdata.Domain][]string {
	t.Helper()
	per := 40
	if testing.Short() {
		per = 12
	}
	out := map[*benchdata.Domain][]string{}
	for i, d := range []*benchdata.Domain{benchdata.Sales(11), benchdata.Movies(12)} {
		for _, p := range d.GeneratePairs(per, 31+int64(i)*7) {
			out[d] = append(out[d], p.Question)
		}
	}
	return out
}

func TestDeterministicAcrossGateways(t *testing.T) {
	ctx := context.Background()
	for d, questions := range determinismWorkload(t) {
		// Two fully independent stacks: separate lexicons, engine chains,
		// and executors over the same data.
		gw1 := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()), resilient.Config{NoTrace: true})
		gw2 := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()), resilient.Config{NoTrace: true})
		for _, q := range questions {
			a1, err1 := gw1.Ask(ctx, q)
			a2, err2 := gw2.Ask(ctx, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: %q: one gateway errored (%v), the other did not (%v)", d.Name, q, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if a1.Engine != a2.Engine || a1.SQL.String() != a2.SQL.String() {
				t.Fatalf("%s: %q interpreted differently:\n  %s: %s\n  %s: %s",
					d.Name, q, a1.Engine, a1.SQL, a2.Engine, a2.SQL)
			}
			if a1.Result.String() != a2.Result.String() {
				t.Fatalf("%s: %q result tables differ byte-wise:\n--- gw1\n%s\n--- gw2\n%s",
					d.Name, q, a1.Result, a2.Result)
			}
		}
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	ctx := context.Background()
	const goroutines = 8
	for d, questions := range determinismWorkload(t) {
		gw := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()), resilient.Config{NoTrace: true})
		for _, q := range questions {
			ref, refErr := gw.Ask(ctx, q)
			var wg sync.WaitGroup
			got := make([]string, goroutines)
			errs := make([]error, goroutines)
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ans, err := gw.Ask(ctx, q)
					errs[i] = err
					if err == nil {
						got[i] = ans.Engine + "\n" + ans.Result.String()
					}
				}(i)
			}
			wg.Wait()
			for i := 0; i < goroutines; i++ {
				if (errs[i] == nil) != (refErr == nil) {
					t.Fatalf("%s: %q: concurrent Ask error mismatch: %v vs %v", d.Name, q, errs[i], refErr)
				}
				if refErr == nil {
					want := ref.Engine + "\n" + ref.Result.String()
					if got[i] != want {
						t.Fatalf("%s: %q concurrent result diverged:\n--- want\n%s\n--- got\n%s", d.Name, q, want, got[i])
					}
				}
			}
		}
	}
}

func TestDeterministicWithCacheMatchesWithout(t *testing.T) {
	// A cached replay must be byte-identical to an uncached recomputation
	// of the same question: the cache can change latency, never answers.
	ctx := context.Background()
	for d, questions := range determinismWorkload(t) {
		plain := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()), resilient.Config{NoTrace: true})
		cached := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()),
			resilient.Config{NoTrace: true, Cache: qcache.New(qcache.Config{})})
		for _, q := range questions {
			want, errPlain := plain.Ask(ctx, q)
			cached.Ask(ctx, q) // cold fill
			got, errWarm := cached.Ask(ctx, q)
			if (errPlain == nil) != (errWarm == nil) {
				t.Fatalf("%s: %q: cache changed outcome: %v vs %v", d.Name, q, errPlain, errWarm)
			}
			if errPlain != nil {
				continue
			}
			if !got.Cached {
				t.Fatalf("%s: %q second cached Ask was not a hit", d.Name, q)
			}
			if want.Result.String() != got.Result.String() {
				t.Fatalf("%s: %q cached replay differs from recomputation:\n--- plain\n%s\n--- cached\n%s",
					d.Name, q, want.Result, got.Result)
			}
		}
	}
}
