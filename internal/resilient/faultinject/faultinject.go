// Package faultinject is a deterministic chaos harness for the resilient
// Gateway: a seeded injector that forces panics, errors, and artificial
// slowness at named pipeline sites (interpret, parse, execute) with
// configurable rates, plus per-kind counters so tests can assert the
// faults actually fired. The same seed always produces the same fault
// sequence, so chaos tests are replayable.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nlidb/internal/resilient"
)

// Injector decides faults pseudo-randomly from a seed. The zero rates
// inject nothing; rates are probabilities in [0,1] checked in order
// panic → error → slow (so PanicRate+ErrorRate+SlowRate should be ≤ 1).
type Injector struct {
	// PanicRate is the probability a guarded stage panics.
	PanicRate float64
	// ErrorRate is the probability a guarded stage fails with an error.
	ErrorRate float64
	// SlowRate is the probability a guarded stage is delayed by SlowBy.
	SlowRate float64
	// SlowBy is the injected delay for slow faults (default 5ms).
	SlowBy time.Duration
	// Sites, when non-nil, restricts injection to these sites.
	Sites map[resilient.Site]bool
	// Engines, when non-nil, restricts injection to these engine names.
	Engines map[string]bool

	mu     sync.Mutex
	rnd    *rand.Rand
	counts map[string]int
}

// New returns an injector seeded for a replayable fault sequence.
func New(seed int64) *Injector {
	return &Injector{
		SlowBy: 5 * time.Millisecond,
		rnd:    rand.New(rand.NewSource(seed)),
		counts: map[string]int{},
	}
}

// Hook adapts the injector to the Gateway's fault hook. The returned hook
// is safe for concurrent use.
func (in *Injector) Hook() resilient.Hook {
	return func(site resilient.Site, engine string) resilient.Fault {
		return in.decide(site, engine)
	}
}

func (in *Injector) decide(site resilient.Site, engine string) resilient.Fault {
	if in.Sites != nil && !in.Sites[site] {
		return resilient.Fault{}
	}
	if in.Engines != nil && !in.Engines[engine] {
		return resilient.Fault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rnd.Float64()
	switch {
	case r < in.PanicRate:
		in.counts["panic"]++
		return resilient.Fault{Panic: fmt.Sprintf("faultinject: panic at %s/%s", site, engine)}
	case r < in.PanicRate+in.ErrorRate:
		in.counts["error"]++
		return resilient.Fault{Err: fmt.Errorf("faultinject: error at %s/%s", site, engine)}
	case r < in.PanicRate+in.ErrorRate+in.SlowRate:
		in.counts["slow"]++
		return resilient.Fault{Delay: in.SlowBy}
	default:
		return resilient.Fault{}
	}
}

// Counts returns a copy of the per-kind injection counters ("panic",
// "error", "slow").
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}
