package faultinject

import (
	"reflect"
	"testing"
	"time"

	"nlidb/internal/resilient"
)

func drive(in *Injector, n int) []resilient.Fault {
	hook := in.Hook()
	sites := []resilient.Site{resilient.SiteInterpret, resilient.SiteParse, resilient.SiteExecute}
	engines := []string{"athena", "parse", "pattern", "keyword"}
	out := make([]resilient.Fault, n)
	for i := 0; i < n; i++ {
		out[i] = hook(sites[i%len(sites)], engines[i%len(engines)])
	}
	return out
}

func TestInjectorIsDeterministicPerSeed(t *testing.T) {
	mk := func() *Injector {
		in := New(42)
		in.PanicRate, in.ErrorRate, in.SlowRate = 0.2, 0.2, 0.2
		return in
	}
	a, b := mk(), mk()
	fa, fb := drive(a, 500), drive(b, 500)
	for i := range fa {
		if (fa[i].Panic == nil) != (fb[i].Panic == nil) ||
			(fa[i].Err == nil) != (fb[i].Err == nil) ||
			fa[i].Delay != fb[i].Delay {
			t.Fatalf("fault %d diverged between identical seeds: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatalf("counts diverged: %v vs %v", a.Counts(), b.Counts())
	}
	for _, kind := range []string{"panic", "error", "slow"} {
		if a.Counts()[kind] == 0 {
			t.Fatalf("no %q faults in 500 draws at rate 0.2 (counts %v)", kind, a.Counts())
		}
	}
}

func TestInjectorZeroRatesInjectNothing(t *testing.T) {
	in := New(1)
	for _, f := range drive(in, 100) {
		if f != (resilient.Fault{}) {
			t.Fatalf("zero-rate injector produced fault %+v", f)
		}
	}
	if len(in.Counts()) != 0 {
		t.Fatalf("counts should be empty, got %v", in.Counts())
	}
}

func TestInjectorFilters(t *testing.T) {
	in := New(3)
	in.ErrorRate = 1 // every targeted call errors
	in.SlowBy = time.Millisecond
	in.Sites = map[resilient.Site]bool{resilient.SiteExecute: true}
	in.Engines = map[string]bool{"athena": true}
	hook := in.Hook()
	if f := hook(resilient.SiteInterpret, "athena"); f.Err != nil {
		t.Fatal("site filter ignored")
	}
	if f := hook(resilient.SiteExecute, "keyword"); f.Err != nil {
		t.Fatal("engine filter ignored")
	}
	if f := hook(resilient.SiteExecute, "athena"); f.Err == nil {
		t.Fatal("targeted call should fault")
	}
}
