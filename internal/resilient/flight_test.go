package resilient

// Singleflight miss-collapse at the gateway level: concurrent identical
// questions on a cold cache must run the pipeline exactly once.

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/qcache"
	"nlidb/internal/sqlparse"
)

// gatedInterp counts Interpret calls and holds the first one open until
// released, so the test can stack provably concurrent misses behind it.
type gatedInterp struct {
	calls   atomic.Int64
	started chan struct{} // closed when the first Interpret is inside
	release chan struct{} // the interpreter waits for this before answering
	once    sync.Once
}

func (g *gatedInterp) Name() string { return "gated" }

func (g *gatedInterp) Interpret(q string) ([]nlq.Interpretation, error) {
	g.calls.Add(1)
	g.once.Do(func() { close(g.started) })
	<-g.release
	return []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT name FROM customer"), Score: 0.9}}, nil
}

// TestAskCollapsesConcurrentIdenticalMisses is the satellite's required
// assertion: N concurrent Asks of one cold question execute the pipeline
// exactly once and all share the answer.
func TestAskCollapsesConcurrentIdenticalMisses(t *testing.T) {
	db := testDB(t)
	eng := &gatedInterp{started: make(chan struct{}), release: make(chan struct{})}
	gw := New(db, []nlq.Interpreter{eng},
		Config{NoRetry: true, Cache: qcache.New(qcache.Config{})})

	const followers = 7
	var wg sync.WaitGroup
	answers := make([]*Answer, followers+1)
	errs := make([]error, followers+1)
	ask := func(i int) {
		defer wg.Done()
		answers[i], errs[i] = gw.Ask(context.Background(), "customers please")
	}
	wg.Add(1)
	go ask(0)
	<-eng.started // the leader is mid-pipeline; the cache is still cold
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go ask(i)
	}
	// Wait until every follower has joined the in-progress flight before
	// letting the leader finish — otherwise a late follower would simply
	// hit the warm cache, proving nothing about collapse.
	key := qcache.WithFingerprint(db.Fingerprint(), qcache.Key("customers please"))
	deadline := time.Now().Add(5 * time.Second)
	for gw.flight.Followers(key) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight, want %d", gw.flight.Followers(key), followers)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(eng.release)
	wg.Wait()

	if c := eng.calls.Load(); c != 1 {
		t.Fatalf("pipeline interpreted %d times for %d concurrent identical asks, want exactly 1", c, followers+1)
	}
	sharedCount := 0
	for i := range answers {
		if errs[i] != nil {
			t.Fatalf("ask %d failed: %v", i, errs[i])
		}
		if len(answers[i].Result.Rows) != 3 {
			t.Fatalf("ask %d got %d rows, want 3", i, len(answers[i].Result.Rows))
		}
		if answers[i].Cached {
			sharedCount++
			if !strings.Contains(answers[i].Trace.String(), "singleflight=shared") {
				t.Fatalf("shared answer %d lacks singleflight=shared on its trace:\n%s", i, answers[i].Trace)
			}
		}
	}
	if sharedCount != followers {
		t.Fatalf("%d answers marked shared/cached, want %d", sharedCount, followers)
	}
	// The leader filled the cache: a later Ask is a plain hit, no flight.
	ans, err := gw.Ask(context.Background(), "customers please")
	if err != nil || !ans.Cached {
		t.Fatalf("post-collapse ask: cached=%v err=%v, want warm hit", ans != nil && ans.Cached, err)
	}
}

// TestAskWithoutCacheDoesNotCollapse pins the scope: singleflight only
// engages alongside the cache (its key IS the cache key), so a cacheless
// gateway still executes every ask independently.
func TestAskWithoutCacheDoesNotCollapse(t *testing.T) {
	db := testDB(t)
	eng, calls := counting("a", "SELECT name FROM customer")
	gw := New(db, []nlq.Interpreter{eng}, Config{NoRetry: true})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gw.Ask(context.Background(), "customers please"); err != nil {
				t.Errorf("ask failed: %v", err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 4 {
		t.Fatalf("cacheless gateway interpreted %d times, want 4 (no collapse)", c)
	}
}
