package resilient

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// Metric family names the gateway publishes. Documented in the README's
// Observability section and asserted by `make metrics-smoke`.
const (
	// MetricQueries counts finished queries by engine and outcome.
	MetricQueries = "nlidb_queries_total"
	// MetricQuerySeconds is the end-to-end latency histogram by engine.
	MetricQuerySeconds = "nlidb_query_seconds"
	// MetricStageSeconds is the per-stage latency histogram by stage and
	// engine (tokenize is attributed to the pseudo-engine "gateway").
	MetricStageSeconds = "nlidb_stage_seconds"
	// MetricBreakerState gauges each engine's breaker (0 closed, 1 open,
	// 2 half-open).
	MetricBreakerState = "nlidb_breaker_state"
	// MetricBreakerTransitions counts breaker transitions by target state.
	MetricBreakerTransitions = "nlidb_breaker_transitions_total"
	// MetricSlowQueries counts queries recorded by the slow-query log.
	MetricSlowQueries = "nlidb_slow_queries_total"
	// MetricRowsScanned / MetricJoinRows / MetricSubqueries total the
	// executor's budget meters by engine.
	MetricRowsScanned = "nlidb_rows_scanned_total"
	MetricJoinRows    = "nlidb_join_rows_total"
	MetricSubqueries  = "nlidb_subqueries_total"
)

// ErrBreakerOpen marks an engine skipped because its circuit breaker is
// open (still cooling down after consecutive failures).
var ErrBreakerOpen = errors.New("resilient: circuit breaker open")

// ErrExhausted marks an Ask for which every engine in the chain failed or
// was skipped. The concrete error is a *ChainError listing the attempts.
var ErrExhausted = errors.New("resilient: all engines failed")

// ChainError reports an exhausted fallback chain with the per-attempt
// failure trail.
type ChainError struct {
	// Question is the original question asked.
	Question string
	// Attempts is the failure trail, in the order tried.
	Attempts []Attempt
	// Trace is the query's span tree (nil when tracing is disabled).
	Trace *obs.QueryTrace
}

// Error renders the trail including, per attempt, which form of the
// question was actually tried — the original or the stopword-simplified
// retry — so an exhausted chain is diagnosable from the log line alone.
func (e *ChainError) Error() string {
	parts := make([]string, len(e.Attempts))
	for i, a := range e.Attempts {
		form := "original"
		if a.Question != e.Question {
			form = fmt.Sprintf("simplified %q", a.Question)
		}
		parts[i] = fmt.Sprintf("%s (%s): %v", a.Engine, form, a.Err)
	}
	return fmt.Sprintf("resilient: all engines failed for %q [%s]", e.Question, strings.Join(parts, "; "))
}

// Unwrap lets errors.Is(err, ErrExhausted) match.
func (e *ChainError) Unwrap() error { return ErrExhausted }

// Attempt is one failed try in the fallback chain.
type Attempt struct {
	// Engine is the interpreter tried.
	Engine string
	// Question is the question form used (original or simplified).
	Question string
	// Err is why the attempt failed.
	Err error
}

// Answer is a successful Ask.
type Answer struct {
	// Engine names the interpreter that produced the answer.
	Engine string
	// SQL is the executed statement (round-tripped through the parser).
	SQL *sqlparse.SelectStmt
	// Result is the executed result set.
	Result *sqldata.Result
	// Score is the interpretation confidence reported by the engine.
	Score float64
	// Simplified reports that the answer came from the stopword-stripped
	// retry form of the question rather than the original.
	Simplified bool
	// Attempts is the failure trail of engines tried before this one.
	Attempts []Attempt
	// Usage is the execution's resource consumption.
	Usage sqlexec.Usage
	// Elapsed is the total wall-clock time of the Ask.
	Elapsed time.Duration
	// Trace is the query's span tree (nil when tracing is disabled);
	// render it with Trace.String() for the EXPLAIN view.
	Trace *obs.QueryTrace
	// Cached reports that the answer was served from the answer cache
	// without re-running the pipeline. Cached answers share their SQL and
	// Result with every other hit on the same entry: treat both as
	// read-only.
	Cached bool
	// Partial reports that the answer was assembled from an incomplete
	// scatter-gather: at least one shard had no healthy replica and its
	// rows are missing. Single-process gateways never set it; the shard
	// coordinator does, so clients can distinguish "complete answer" from
	// "best effort under degradation" instead of being silently wrong.
	Partial bool
	// MissingShards lists the shard indexes absent from a Partial answer,
	// ascending. Nil when Partial is false.
	MissingShards []int
}

// Config tunes a Gateway. The zero value is serviceable: default budget,
// no deadline, breaker threshold 3 with a 30-second cooldown,
// retry-with-simplification enabled, tracing on, and no metrics sink.
type Config struct {
	// Timeout is the per-Ask wall-clock deadline (0 = none). It covers the
	// whole fallback chain, not each engine separately.
	Timeout time.Duration
	// Budget bounds each execution; the zero Budget is replaced by
	// sqlexec.DefaultBudget(). Set a field negative for truly unlimited.
	Budget sqlexec.Budget
	// BreakerThreshold is the consecutive-failure count that opens an
	// engine's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe (default 30s).
	BreakerCooldown time.Duration
	// BreakerJitter, when positive, adds a random delay in [0, BreakerJitter)
	// on top of every cooldown, drawn fresh each time a breaker opens, so
	// breakers that tripped together do not probe a recovering engine in
	// lockstep. Off by default (tests and callers that reason about exact
	// cooldowns keep deterministic timing).
	BreakerJitter time.Duration
	// NoRetry disables the stopword-stripped retry of a failed engine.
	NoRetry bool
	// Hook, when non-nil, is consulted before every guarded stage; tests
	// use it to inject faults at named sites.
	Hook Hook
	// Now is the breaker clock, injectable for tests (default time.Now).
	Now func() time.Time

	// Metrics, when non-nil, receives gateway telemetry (query totals,
	// stage latency histograms, breaker states, budget meters). Metric
	// families are pre-registered at New so scrapes see them before the
	// first query.
	Metrics *obs.Registry
	// SlowLog, when non-nil, records queries at or above its threshold.
	SlowLog *obs.SlowLog
	// Traces, when non-nil, receives every finished trace for tail-sampled
	// exemplar retention: slow and failed queries are always kept, the rest
	// probabilistically, linkable from the slow log by trace ID.
	Traces *obs.TraceStore
	// NoTrace disables span collection (Answer.Trace stays nil). Metrics
	// and the slow log keep working; they do not depend on spans.
	NoTrace bool
	// BreakerHook, when non-nil, observes every breaker transition as
	// (engine, from, to) state names. Called outside breaker locks.
	BreakerHook func(engine, from, to string)

	// Cache, when non-nil, is consulted before the fallback chain and
	// filled after every successful uncached Ask. Keys combine the
	// normalized question (qcache.Key) with the database fingerprint, so
	// inserts invalidate implicitly. Hits skip interpret/parse/plan/
	// execute entirely, return Answer.Cached=true, and carry a
	// cached=true attribute on the trace root.
	Cache *qcache.Cache
	// PlanCache, when non-nil, caches bound physical plans keyed by the
	// statement's canonical SQL plus the database fingerprint, so repeated
	// questions skip bind/plan work even when the answer cache misses.
	// Plans are immutable and shared safely across concurrent executions.
	PlanCache *qcache.Cache
	// Workers bounds ServeBatch's worker pool (default: GOMAXPROCS).
	Workers int
}

// Gateway serves natural-language questions end-to-end with failure
// handling and full observability: an ordered fallback chain of
// interpreters, each call guarded by recover(), execution bounded by
// context and budget, unhealthy engines tripped out by circuit breakers —
// and every stage spanned, timed, and counted.
//
// Goroutine-safety contract: a Gateway is safe for concurrent use —
// Ask and ServeBatch may be called from any number of goroutines. The
// chain's interpreters and the executor are immutable after New; breaker
// state, metrics, the slow log, and the answer cache are internally
// synchronized. Two caveats, both on the caller: (1) the underlying
// database must not be mutated while queries are in flight (see the
// concurrency note on sqldata.Table — mutate between requests, and the
// fingerprint-keyed cache invalidates itself); (2) any Config.Hook,
// Config.Now, or Config.BreakerHook supplied must itself be safe for
// concurrent calls.
type Gateway struct {
	db       *sqldata.Database
	engines  []nlq.Interpreter
	exec     *sqlexec.Engine
	cfg      Config
	breakers map[string]*Breaker
	// flight collapses concurrent identical cache misses: N requests for
	// one cold key run the pipeline once and share the answer, so a hot
	// key arriving in a burst cannot stampede the fallback chain. Only
	// engaged when a Cache is configured (the flight key is the cache
	// key, so the two stay consistent).
	flight qcache.Flight
}

// New builds a Gateway over db serving the given fallback chain, best
// engine first. Config zero values are filled with defaults.
func New(db *sqldata.Database, chain []nlq.Interpreter, cfg Config) *Gateway {
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Budget == (sqlexec.Budget{}) {
		cfg.Budget = sqlexec.DefaultBudget()
	}
	g := &Gateway{
		db:       db,
		engines:  chain,
		exec:     sqlexec.NewWithPlanCache(db, cfg.PlanCache),
		cfg:      cfg,
		breakers: map[string]*Breaker{},
	}
	for i, e := range chain {
		name := e.Name()
		br := NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
		if cfg.BreakerJitter > 0 {
			// Seed from the wall clock (not cfg.Now, which tests freeze) and
			// the chain position, so each engine's breaker — and each process
			// in a fleet — draws a distinct probe schedule.
			br.SetJitter(cfg.BreakerJitter, time.Now().UnixNano()+int64(i))
		}
		br.OnTransition(func(from, to string) {
			if g.cfg.Metrics != nil {
				g.cfg.Metrics.Gauge(MetricBreakerState, "engine", name).Set(StateValue(to))
				g.cfg.Metrics.Counter(MetricBreakerTransitions, "engine", name, "to", to).Inc()
			}
			if g.cfg.BreakerHook != nil {
				g.cfg.BreakerHook(name, from, to)
			}
		})
		g.breakers[name] = br
	}
	g.preregisterMetrics()
	return g
}

// preregisterMetrics creates every metric family the gateway can emit, so
// a /metrics scrape taken before the first query already shows them.
func (g *Gateway) preregisterMetrics() {
	m := g.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter(MetricSlowQueries)
	m.Histogram(MetricStageSeconds, "stage", "tokenize", "engine", "gateway")
	for _, e := range g.engines {
		name := e.Name()
		m.Gauge(MetricBreakerState, "engine", name).Set(StateValue("closed"))
		m.Counter(MetricQueries, "engine", name, "outcome", "ok")
		m.Histogram(MetricQuerySeconds, "engine", name)
		for _, stage := range []string{"interpret", "parse", "plan", "execute"} {
			m.Histogram(MetricStageSeconds, "stage", stage, "engine", name)
		}
		m.Counter(MetricRowsScanned, "engine", name)
		m.Counter(MetricJoinRows, "engine", name)
		m.Counter(MetricSubqueries, "engine", name)
	}
}

// BreakerStates reports each engine's current breaker state ("closed",
// "open", "half-open"), keyed by engine name.
func (g *Gateway) BreakerStates() map[string]string {
	out := make(map[string]string, len(g.breakers))
	for name, b := range g.breakers {
		out[name] = b.State()
	}
	return out
}

// Breaker returns the named engine's circuit breaker (nil if the engine
// is not in the chain), for state inspection and transition hooks.
func (g *Gateway) Breaker(engine string) *Breaker { return g.breakers[engine] }

// Ask answers one question: it walks the fallback chain, skipping engines
// with open breakers, trying each healthy engine first with the question
// as asked and then (unless NoRetry) with its stopword-stripped form, and
// returns the first interpretation that parses and executes within the
// deadline and budget. It never panics: stage panics surface inside the
// failure trail as *PanicError values.
//
// Unless Config.NoTrace is set, the full pipeline is traced — tokenize,
// then per engine attempt interpret → parse → plan → execute with rows
// and budget counters — and the trace travels on the Answer (or the
// *ChainError) for EXPLAIN rendering and the slow-query log.
//
// With Config.Cache set, a hit short-circuits all of the above: the
// cached answer comes back with Cached=true, its trace is just the root
// span carrying cached=true, and query counters/latency still record.
// Concurrent identical misses are collapsed: one leader runs the
// pipeline, the rest share its answer (Cached=true, singleflight=shared
// on the trace root) — a cold hot key cannot stampede the chain.
func (g *Gateway) Ask(ctx context.Context, question string) (*Answer, error) {
	start := time.Now()
	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}
	var trace *obs.QueryTrace
	if !g.cfg.NoTrace {
		ctx, trace = obs.NewQueryTrace(ctx, question)
	}

	key := ""
	if g.cfg.Cache != nil {
		key = qcache.WithFingerprint(g.db.Fingerprint(), qcache.Key(question))
		if v, ok := g.cfg.Cache.Get(key); ok {
			hit := *(v.(*Answer)) // shallow copy; SQL/Result shared read-only
			hit.Cached = true
			if trace != nil {
				trace.Root.SetAttr("cached", "true")
			}
			elapsed := time.Since(start)
			g.finish(question, &hit, nil, trace, elapsed)
			hit.Elapsed = elapsed
			hit.Trace = trace
			return &hit, nil
		}
	}

	var ans *Answer
	var err error
	if key == "" {
		ans, err = g.ask(ctx, question, trace)
	} else {
		// Singleflight miss-collapse: the first Ask for a cold key leads,
		// running the pipeline under its own context and trace; concurrent
		// identical misses wait and share the leader's (sanitized) answer
		// instead of stampeding the chain.
		var mine *Answer
		v, ferr, shared := g.flight.Do(ctx, key, func() (any, error) {
			a, e := g.ask(ctx, question, trace)
			mine = a
			if e != nil {
				return nil, e
			}
			// Store and share a sanitized copy: no failure trail, timing,
			// or trace — those belong to the Ask that produced them, not
			// to replays.
			sh := &Answer{
				Engine:     a.Engine,
				SQL:        a.SQL,
				Result:     a.Result,
				Score:      a.Score,
				Simplified: a.Simplified,
				Usage:      a.Usage,
			}
			g.cfg.Cache.Put(key, sh)
			return sh, nil
		})
		err = ferr
		switch {
		case !shared:
			ans = mine // leader (or a follower canceled while waiting: nil)
		case err == nil:
			hit := *(v.(*Answer)) // shallow copy; SQL/Result shared read-only
			hit.Cached = true
			ans = &hit
			if trace != nil {
				trace.Root.SetAttr("cached", "true")
				trace.Root.SetAttr("singleflight", "shared")
			}
		default:
			if trace != nil {
				trace.Root.SetAttr("singleflight", "shared")
			}
		}
	}
	elapsed := time.Since(start)
	g.finish(question, ans, err, trace, elapsed)
	if ans != nil {
		ans.Elapsed = elapsed
		ans.Trace = trace
	}
	return ans, err
}

// ask is the fallback-chain walk, with the surrounding context already
// deadline-bounded and trace-carrying.
func (g *Gateway) ask(ctx context.Context, question string, trace *obs.QueryTrace) (*Answer, error) {
	root := obs.FromContext(ctx)

	tokSpan := root.Child("tokenize")
	t0 := time.Now()
	toks := nlp.Tokenize(question)
	tokSpan.Add("tokens", int64(len(toks)))
	tokSpan.End()
	g.observeStage("tokenize", "gateway", time.Since(t0))

	simplified := ""
	if !g.cfg.NoRetry {
		simplified = SimplifyTokens(toks)
		if simplified == question {
			simplified = ""
		}
	}

	var trail []Attempt
	for _, eng := range g.engines {
		name := eng.Name()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("resilient: %w", err)
		}
		br := g.breakers[name]
		if !br.Allow() {
			sp := root.Child("attempt " + name)
			sp.SetAttr("skipped", "breaker-open")
			sp.End()
			trail = append(trail, Attempt{Engine: name, Question: question, Err: ErrBreakerOpen})
			continue
		}

		tries := []string{question}
		if simplified != "" {
			tries = append(tries, simplified)
		}
		var lastErr error
		for ti, q := range tries {
			aCtx, aSpan := obs.StartSpan(ctx, "attempt "+name)
			aSpan.SetAttr("engine", name)
			if ti > 0 {
				aSpan.SetAttr("form", "simplified")
			}
			ans, err := g.attempt(aCtx, eng, q)
			aSpan.End()
			if err == nil {
				br.Success()
				ans.Simplified = ti > 0
				ans.Attempts = trail
				return ans, nil
			}
			aSpan.SetAttr("error", err.Error())
			lastErr = err
			trail = append(trail, Attempt{Engine: name, Question: q, Err: err})
			if ctx.Err() != nil {
				// The overall deadline is gone; further engines would only
				// burn it further. The timeout counts against the engine
				// that consumed it.
				if countable(err) {
					br.Failure()
				}
				return nil, &ChainError{Question: question, Attempts: trail, Trace: trace}
			}
		}
		if countable(lastErr) {
			br.Failure()
		}
	}
	return nil, &ChainError{Question: question, Attempts: trail, Trace: trace}
}

// countable reports whether an attempt failure indicates engine ill-health
// (and should advance its breaker). Clean semantic misses — the engine
// simply has no reading of the question — are not failures: a keyword
// engine that cannot interpret nested questions is healthy, just limited.
func countable(err error) bool {
	return err != nil && !errors.Is(err, nlq.ErrNoInterpretation)
}

// attempt runs one engine over one question form through the guarded
// stages: interpret, parse (print + re-parse validation), plan, execute.
// Each stage gets a span and a stage-latency observation.
func (g *Gateway) attempt(ctx context.Context, eng nlq.Interpreter, q string) (*Answer, error) {
	name := eng.Name()

	var ins []nlq.Interpretation
	iCtx, iSpan := obs.StartSpan(ctx, "interpret")
	t0 := time.Now()
	err := g.guard(iCtx, SiteInterpret, name, func() error {
		var err error
		ins, err = eng.Interpret(q)
		return err
	})
	iSpan.Add("candidates", int64(len(ins)))
	iSpan.End()
	g.observeStage("interpret", name, time.Since(t0))
	if err != nil {
		return nil, fmt.Errorf("interpret: %w", err)
	}
	best, err := nlq.Best(ins)
	if err != nil {
		return nil, err
	}
	if best.SQL == nil {
		return nil, fmt.Errorf("resilient: %s produced an interpretation without SQL", name)
	}
	iSpan.SetAttr("score", fmt.Sprintf("%.2f", best.Score))

	stmt, res, usage, err := g.runSQL(ctx, name, best.SQL.String())
	if err != nil {
		return nil, err
	}
	return &Answer{Engine: name, SQL: stmt, Result: res, Score: best.Score, Usage: usage}, nil
}

// runSQL is the SQL tail of the pipeline — parse (print + re-parse
// validation), plan, execute — shared by the NL fallback chain and by
// direct AskSQL calls. Each stage is guarded, spanned, and timed under
// the given engine label.
func (g *Gateway) runSQL(ctx context.Context, name, sql string) (*sqlparse.SelectStmt, *sqldata.Result, sqlexec.Usage, error) {
	// Validate the candidate by round-tripping it through the printer and
	// parser; a malformed AST fails here instead of deep inside execution.
	var stmt *sqlparse.SelectStmt
	pCtx, pSpan := obs.StartSpan(ctx, "parse")
	t0 := time.Now()
	err := g.guard(pCtx, SiteParse, name, func() error {
		var err error
		stmt, err = sqlparse.Parse(sql)
		return err
	})
	pSpan.End()
	g.observeStage("parse", name, time.Since(t0))
	if err != nil {
		return nil, nil, sqlexec.Usage{}, fmt.Errorf("parse: %w", err)
	}
	pSpan.SetAttr("sql", stmt.String())

	// Plan: bind the statement to a physical plan (through the plan cache
	// when configured) and record the plan tree and its compact shape on
	// the trace. Binding can fail — e.g. an interpreter inventing a column
	// the schema lacks — and that is a planning failure, not an execution
	// one.
	var prep *sqlexec.Prepared
	var planHit bool
	plCtx, planSpan := obs.StartSpan(ctx, "plan")
	t0 = time.Now()
	err = g.guard(plCtx, SitePlan, name, func() error {
		var err error
		prep, planHit, err = g.exec.PrepareCached(stmt)
		return err
	})
	if err == nil {
		planSpan.SetAttr("plan", prep.Explain())
		planSpan.SetAttr("shape", prep.Shape())
		if planHit {
			planSpan.SetAttr("plan_cache", "hit")
		}
	}
	planSpan.End()
	g.observeStage("plan", name, time.Since(t0))
	if err != nil {
		return nil, nil, sqlexec.Usage{}, fmt.Errorf("plan: %w", err)
	}

	var res *sqldata.Result
	var usage sqlexec.Usage
	eCtx, eSpan := obs.StartSpan(ctx, "execute")
	t0 = time.Now()
	err = g.guard(eCtx, SiteExecute, name, func() error {
		var err error
		res, usage, err = prep.Run(eCtx, g.cfg.Budget)
		return err
	})
	eSpan.End()
	g.observeStage("execute", name, time.Since(t0))
	if m := g.cfg.Metrics; m != nil {
		m.Counter(MetricRowsScanned, "engine", name).Add(int64(usage.Rows))
		m.Counter(MetricJoinRows, "engine", name).Add(int64(usage.JoinRows))
		m.Counter(MetricSubqueries, "engine", name).Add(int64(usage.Subqueries))
	}
	if err != nil {
		return nil, nil, sqlexec.Usage{}, fmt.Errorf("execute: %w", err)
	}
	return stmt, res, usage, nil
}

// SQLEngine is the pseudo-engine label AskSQL answers carry in metrics,
// traces, and the slow-query log.
const SQLEngine = "sql"

// AskSQL executes one SQL statement directly through the guarded parse →
// plan → execute tail, bypassing the NL fallback chain, the answer cache,
// and the breakers. It is the shard coordinator's entry point for pushing
// rewritten partial-aggregate statements down to replica gateways, and is
// generally useful wherever trusted SQL (not a user question) needs the
// gateway's deadline, budget, fault-injection, and telemetry treatment.
func (g *Gateway) AskSQL(ctx context.Context, sql string) (*Answer, error) {
	start := time.Now()
	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}
	var trace *obs.QueryTrace
	if !g.cfg.NoTrace {
		ctx, trace = obs.NewQueryTrace(ctx, sql)
	}
	var ans *Answer
	stmt, res, usage, err := g.runSQL(ctx, SQLEngine, sql)
	if err == nil {
		ans = &Answer{Engine: SQLEngine, SQL: stmt, Result: res, Score: 1, Usage: usage}
	}
	elapsed := time.Since(start)
	g.finish(sql, ans, err, trace, elapsed)
	if ans != nil {
		ans.Elapsed = elapsed
		ans.Trace = trace
	}
	return ans, err
}

// observeStage records one stage latency into the metrics registry.
func (g *Gateway) observeStage(stage, engine string, d time.Duration) {
	if g.cfg.Metrics == nil {
		return
	}
	g.cfg.Metrics.Histogram(MetricStageSeconds, "stage", stage, "engine", engine).Observe(d.Seconds())
}

// outcomeOf maps an Ask error to its metric label.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, sqlexec.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, ErrExhausted):
		return "exhausted"
	default:
		return "error"
	}
}

// finish closes out one Ask: ends the trace root with summary attributes,
// records query counters and latency, and feeds the slow-query log.
func (g *Gateway) finish(question string, ans *Answer, err error, trace *obs.QueryTrace, elapsed time.Duration) {
	outcome := outcomeOf(err)
	engine := "none"
	if ans != nil {
		engine = ans.Engine
	}
	if trace != nil {
		root := trace.Root
		root.SetAttr("engine", engine)
		root.SetAttr("outcome", outcome)
		if ans != nil && ans.Simplified {
			root.SetAttr("form", "simplified")
		}
		var states []string
		for _, e := range g.engines {
			states = append(states, e.Name()+"="+g.breakers[e.Name()].State())
		}
		root.SetAttr("breakers", strings.Join(states, ","))
		root.End()
		g.cfg.Traces.Offer(trace, outcome, elapsed, false)
	}
	if m := g.cfg.Metrics; m != nil {
		m.Counter(MetricQueries, "engine", engine, "outcome", outcome).Inc()
		m.Histogram(MetricQuerySeconds, "engine", engine).Observe(elapsed.Seconds())
	}
	var tid obs.TraceID
	if trace != nil {
		tid = trace.ID
	}
	if g.cfg.SlowLog.Observe(obs.SlowEntry{
		Question: question, Engine: engine, Outcome: outcome,
		Duration: elapsed, When: time.Now(), Trace: trace,
		TraceID: tid, DroppedSpans: trace.DroppedTotal(),
	}) {
		if m := g.cfg.Metrics; m != nil {
			m.Counter(MetricSlowQueries).Inc()
		}
	}
}

// guard runs one stage under panic isolation, first applying any injected
// fault from the hook. Injected delays respect the query's context, so a
// slow fault cannot push an Ask past its deadline by more than one stage.
func (g *Gateway) guard(ctx context.Context, site Site, engine string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Site: site, Engine: engine, Value: r, Stack: debug.Stack()}
		}
	}()
	if g.cfg.Hook != nil {
		fault := g.cfg.Hook(site, engine)
		if fault.Delay > 0 {
			t := time.NewTimer(fault.Delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("resilient: %w", ctx.Err())
			case <-t.C:
			}
		}
		if fault.Panic != nil {
			panic(fault.Panic)
		}
		if fault.Err != nil {
			return fault.Err
		}
	}
	return f()
}
