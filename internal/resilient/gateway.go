package resilient

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// ErrBreakerOpen marks an engine skipped because its circuit breaker is
// open (still cooling down after consecutive failures).
var ErrBreakerOpen = errors.New("resilient: circuit breaker open")

// ErrExhausted marks an Ask for which every engine in the chain failed or
// was skipped. The concrete error is a *ChainError listing the attempts.
var ErrExhausted = errors.New("resilient: all engines failed")

// ChainError reports an exhausted fallback chain with the per-attempt
// failure trail.
type ChainError struct {
	// Question is the original question asked.
	Question string
	// Attempts is the failure trail, in the order tried.
	Attempts []Attempt
}

func (e *ChainError) Error() string {
	parts := make([]string, len(e.Attempts))
	for i, a := range e.Attempts {
		parts[i] = fmt.Sprintf("%s: %v", a.Engine, a.Err)
	}
	return fmt.Sprintf("resilient: all engines failed for %q [%s]", e.Question, strings.Join(parts, "; "))
}

// Unwrap lets errors.Is(err, ErrExhausted) match.
func (e *ChainError) Unwrap() error { return ErrExhausted }

// Attempt is one failed try in the fallback chain.
type Attempt struct {
	// Engine is the interpreter tried.
	Engine string
	// Question is the question form used (original or simplified).
	Question string
	// Err is why the attempt failed.
	Err error
}

// Answer is a successful Ask.
type Answer struct {
	// Engine names the interpreter that produced the answer.
	Engine string
	// SQL is the executed statement (round-tripped through the parser).
	SQL *sqlparse.SelectStmt
	// Result is the executed result set.
	Result *sqldata.Result
	// Score is the interpretation confidence reported by the engine.
	Score float64
	// Simplified reports that the answer came from the stopword-stripped
	// retry form of the question rather than the original.
	Simplified bool
	// Attempts is the failure trail of engines tried before this one.
	Attempts []Attempt
}

// Config tunes a Gateway. The zero value is serviceable: default budget,
// no deadline, breaker threshold 3 with a 30-second cooldown, and
// retry-with-simplification enabled.
type Config struct {
	// Timeout is the per-Ask wall-clock deadline (0 = none). It covers the
	// whole fallback chain, not each engine separately.
	Timeout time.Duration
	// Budget bounds each execution; the zero Budget is replaced by
	// sqlexec.DefaultBudget(). Set a field negative for truly unlimited.
	Budget sqlexec.Budget
	// BreakerThreshold is the consecutive-failure count that opens an
	// engine's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe (default 30s).
	BreakerCooldown time.Duration
	// NoRetry disables the stopword-stripped retry of a failed engine.
	NoRetry bool
	// Hook, when non-nil, is consulted before every guarded stage; tests
	// use it to inject faults at named sites.
	Hook Hook
	// Now is the breaker clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// Gateway serves natural-language questions end-to-end with failure
// handling: an ordered fallback chain of interpreters, each call guarded
// by recover(), execution bounded by context and budget, and unhealthy
// engines tripped out by circuit breakers.
type Gateway struct {
	engines  []nlq.Interpreter
	exec     *sqlexec.Engine
	cfg      Config
	breakers map[string]*breaker
}

// New builds a Gateway over db serving the given fallback chain, best
// engine first. Config zero values are filled with defaults.
func New(db *sqldata.Database, chain []nlq.Interpreter, cfg Config) *Gateway {
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Budget == (sqlexec.Budget{}) {
		cfg.Budget = sqlexec.DefaultBudget()
	}
	g := &Gateway{
		engines:  chain,
		exec:     sqlexec.New(db),
		cfg:      cfg,
		breakers: map[string]*breaker{},
	}
	for _, e := range chain {
		g.breakers[e.Name()] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
	}
	return g
}

// BreakerStates reports each engine's current breaker state ("closed",
// "open", "half-open"), keyed by engine name.
func (g *Gateway) BreakerStates() map[string]string {
	out := make(map[string]string, len(g.breakers))
	for name, b := range g.breakers {
		out[name] = b.snapshot().String()
	}
	return out
}

// Ask answers one question: it walks the fallback chain, skipping engines
// with open breakers, trying each healthy engine first with the question
// as asked and then (unless NoRetry) with its stopword-stripped form, and
// returns the first interpretation that parses and executes within the
// deadline and budget. It never panics: stage panics surface inside the
// failure trail as *PanicError values.
func (g *Gateway) Ask(ctx context.Context, question string) (*Answer, error) {
	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}

	var trail []Attempt
	simplified := ""
	if !g.cfg.NoRetry {
		simplified = Simplify(question)
		if simplified == question {
			simplified = ""
		}
	}

	for _, eng := range g.engines {
		name := eng.Name()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("resilient: %w", err)
		}
		br := g.breakers[name]
		if !br.allow() {
			trail = append(trail, Attempt{Engine: name, Question: question, Err: ErrBreakerOpen})
			continue
		}

		tries := []string{question}
		if simplified != "" {
			tries = append(tries, simplified)
		}
		var lastErr error
		for ti, q := range tries {
			ans, err := g.attempt(ctx, eng, q)
			if err == nil {
				br.success()
				ans.Simplified = ti > 0
				ans.Attempts = trail
				return ans, nil
			}
			lastErr = err
			trail = append(trail, Attempt{Engine: name, Question: q, Err: err})
			if ctx.Err() != nil {
				// The overall deadline is gone; further engines would only
				// burn it further. The timeout counts against the engine
				// that consumed it.
				if countable(err) {
					br.failure()
				}
				return nil, &ChainError{Question: question, Attempts: trail}
			}
		}
		if countable(lastErr) {
			br.failure()
		}
	}
	return nil, &ChainError{Question: question, Attempts: trail}
}

// countable reports whether an attempt failure indicates engine ill-health
// (and should advance its breaker). Clean semantic misses — the engine
// simply has no reading of the question — are not failures: a keyword
// engine that cannot interpret nested questions is healthy, just limited.
func countable(err error) bool {
	return err != nil && !errors.Is(err, nlq.ErrNoInterpretation)
}

// attempt runs one engine over one question form through the three guarded
// stages: interpret, parse (print + re-parse validation), execute.
func (g *Gateway) attempt(ctx context.Context, eng nlq.Interpreter, q string) (*Answer, error) {
	name := eng.Name()

	var ins []nlq.Interpretation
	if err := g.guard(ctx, SiteInterpret, name, func() error {
		var err error
		ins, err = eng.Interpret(q)
		return err
	}); err != nil {
		return nil, fmt.Errorf("interpret: %w", err)
	}
	best, err := nlq.Best(ins)
	if err != nil {
		return nil, err
	}
	if best.SQL == nil {
		return nil, fmt.Errorf("resilient: %s produced an interpretation without SQL", name)
	}

	// Validate the candidate by round-tripping it through the printer and
	// parser; a malformed AST fails here instead of deep inside execution.
	var stmt *sqlparse.SelectStmt
	if err := g.guard(ctx, SiteParse, name, func() error {
		var err error
		stmt, err = sqlparse.Parse(best.SQL.String())
		return err
	}); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}

	var res *sqldata.Result
	if err := g.guard(ctx, SiteExecute, name, func() error {
		var err error
		res, err = g.exec.RunContext(ctx, stmt, g.cfg.Budget)
		return err
	}); err != nil {
		return nil, fmt.Errorf("execute: %w", err)
	}
	return &Answer{Engine: name, SQL: stmt, Result: res, Score: best.Score}, nil
}

// guard runs one stage under panic isolation, first applying any injected
// fault from the hook. Injected delays respect the query's context, so a
// slow fault cannot push an Ask past its deadline by more than one stage.
func (g *Gateway) guard(ctx context.Context, site Site, engine string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Site: site, Engine: engine, Value: r, Stack: debug.Stack()}
		}
	}()
	if g.cfg.Hook != nil {
		fault := g.cfg.Hook(site, engine)
		if fault.Delay > 0 {
			t := time.NewTimer(fault.Delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("resilient: %w", ctx.Err())
			case <-t.C:
			}
		}
		if fault.Panic != nil {
			panic(fault.Panic)
		}
		if fault.Err != nil {
			return fault.Err
		}
	}
	return f()
}
