package resilient

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// fakeInterp is a scriptable interpreter for gateway tests.
type fakeInterp struct {
	name string
	fn   func(q string) ([]nlq.Interpretation, error)
}

func (f *fakeInterp) Name() string { return f.name }
func (f *fakeInterp) Interpret(q string) ([]nlq.Interpretation, error) {
	return f.fn(q)
}

// testDB builds a tiny customers table the fake interpreters query.
func testDB(t *testing.T) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("test")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "customer", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range [][2]string{{"ann", "Berlin"}, {"bob", "Munich"}, {"carol", "Berlin"}} {
		tbl.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(row[0]), sqldata.NewText(row[1]))
	}
	return db
}

func answering(name, sql string) *fakeInterp {
	return &fakeInterp{name: name, fn: func(q string) ([]nlq.Interpretation, error) {
		return []nlq.Interpretation{{SQL: sqlparse.MustParse(sql), Score: 0.9}}, nil
	}}
}

func panicking(name string) *fakeInterp {
	return &fakeInterp{name: name, fn: func(q string) ([]nlq.Interpretation, error) {
		panic("interpreter bug: " + name)
	}}
}

func unanswerable(name string) *fakeInterp {
	return &fakeInterp{name: name, fn: func(q string) ([]nlq.Interpretation, error) {
		return nil, nlq.ErrNoInterpretation
	}}
}

func TestGatewayAnswersEndToEnd(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")}, Config{})
	ans, err := gw.Ask(context.Background(), "customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Engine != "a" || len(ans.Result.Rows) != 2 {
		t.Fatalf("engine %q, %d rows; want a, 2", ans.Engine, len(ans.Result.Rows))
	}
}

func TestGatewayIsolatesPanicsAndFallsBack(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{
		panicking("bad"),
		answering("good", "SELECT name FROM customer"),
	}, Config{})
	ans, err := gw.Ask(context.Background(), "all customers")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Engine != "good" {
		t.Fatalf("answered by %q, want good", ans.Engine)
	}
	if len(ans.Attempts) == 0 {
		t.Fatal("no failure trail recorded")
	}
	var pe *PanicError
	if !errors.As(ans.Attempts[0].Err, &pe) {
		t.Fatalf("first attempt error %v, want *PanicError", ans.Attempts[0].Err)
	}
	if pe.Site != SiteInterpret || pe.Engine != "bad" || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing detail: %+v", pe)
	}
}

func TestGatewayExhaustedChainReturnsTypedError(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{panicking("x"), panicking("y")}, Config{})
	_, err := gw.Ask(context.Background(), "anything")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	var ce *ChainError
	if !errors.As(err, &ce) || len(ce.Attempts) == 0 {
		t.Fatalf("want *ChainError with attempts, got %v", err)
	}
}

func TestGatewaySimplifiedRetry(t *testing.T) {
	db := testDB(t)
	// Fails on the full question, answers the stopword-stripped form.
	picky := &fakeInterp{name: "picky", fn: func(q string) ([]nlq.Interpretation, error) {
		if strings.Contains(q, "the") {
			return nil, fmt.Errorf("picky: too wordy")
		}
		return []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT name FROM customer"), Score: 1}}, nil
	}}
	gw := New(db, []nlq.Interpreter{picky}, Config{})
	ans, err := gw.Ask(context.Background(), "please show me all the customers")
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Simplified {
		t.Fatal("answer should be marked as coming from the simplified retry")
	}
}

func TestGatewayBreakerOpensSkipsAndRecovers(t *testing.T) {
	db := testDB(t)
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	gw := New(db, []nlq.Interpreter{
		panicking("flaky"),
		answering("steady", "SELECT name FROM customer"),
	}, Config{BreakerThreshold: 2, BreakerCooldown: time.Minute, Now: now, NoRetry: true})

	for i := 0; i < 2; i++ {
		if _, err := gw.Ask(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.BreakerStates()["flaky"]; got != "open" {
		t.Fatalf("flaky breaker %q after %d failures, want open", got, 2)
	}
	ans, err := gw.Ask(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Attempts) != 1 || !errors.Is(ans.Attempts[0].Err, ErrBreakerOpen) {
		t.Fatalf("open breaker should be skipped, trail %v", ans.Attempts)
	}

	// After the cooldown the half-open probe reaches the engine again; its
	// failure immediately reopens the breaker.
	clock = clock.Add(2 * time.Minute)
	ans, err = gw.Ask(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if len(ans.Attempts) != 1 || !errors.As(ans.Attempts[0].Err, &pe) {
		t.Fatalf("half-open probe should reach the engine, trail %v", ans.Attempts)
	}
	if got := gw.BreakerStates()["flaky"]; got != "open" {
		t.Fatalf("failed probe should reopen the breaker, got %q", got)
	}
}

func TestGatewayNoInterpretationDoesNotTripBreaker(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{
		unanswerable("limited"),
		answering("steady", "SELECT name FROM customer"),
	}, Config{BreakerThreshold: 2})
	for i := 0; i < 10; i++ {
		if _, err := gw.Ask(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.BreakerStates()["limited"]; got != "closed" {
		t.Fatalf("semantic misses must not trip the breaker; state %q", got)
	}
}

func TestGatewayDeadlineCoversInjectedSlowness(t *testing.T) {
	db := testDB(t)
	hook := func(site Site, engine string) Fault {
		return Fault{Delay: time.Second}
	}
	gw := New(db, []nlq.Interpreter{answering("slow", "SELECT name FROM customer")},
		Config{Timeout: 50 * time.Millisecond, Hook: hook})
	start := time.Now()
	_, err := gw.Ask(context.Background(), "q")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("Ask took %v, deadline was 50ms", elapsed)
	}
}

func TestGatewayBudgetSurfacesInTrail(t *testing.T) {
	db := testDB(t)
	// Self-join on an always-true predicate: 9 join rows, budget allows 4.
	greedy := answering("greedy", "SELECT c.name FROM customer AS c JOIN customer AS d ON c.id >= d.id")
	gw := New(db, []nlq.Interpreter{greedy},
		Config{Budget: sqlexec.Budget{MaxJoinRows: 4, MaxRows: -1, MaxSubqueries: -1}, NoRetry: true})
	_, err := gw.Ask(context.Background(), "q")
	var ce *ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChainError", err)
	}
	if !errors.Is(ce.Attempts[0].Err, sqlexec.ErrBudgetExceeded) {
		t.Fatalf("attempt err = %v, want ErrBudgetExceeded", ce.Attempts[0].Err)
	}
}

func TestGatewayParseSiteFaultInjection(t *testing.T) {
	db := testDB(t)
	hook := func(site Site, engine string) Fault {
		if site == SiteParse {
			return Fault{Err: fmt.Errorf("boom at parse")}
		}
		return Fault{}
	}
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Hook: hook, NoRetry: true})
	_, err := gw.Ask(context.Background(), "q")
	var ce *ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChainError", err)
	}
	if !strings.Contains(ce.Attempts[0].Err.Error(), "parse: boom at parse") {
		t.Fatalf("attempt err = %v, want parse-stage fault", ce.Attempts[0].Err)
	}
}

func TestGatewayConcurrentAsks(t *testing.T) {
	db := testDB(t)
	n := 0
	var mu sync.Mutex
	hook := func(site Site, engine string) Fault {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n%7 == 0 {
			return Fault{Panic: "chaos"}
		}
		if n%5 == 0 {
			return Fault{Err: fmt.Errorf("chaos error")}
		}
		return Fault{}
	}
	gw := New(db, []nlq.Interpreter{
		panicking("bad"),
		answering("good", "SELECT name FROM customer"),
	}, Config{Hook: hook, BreakerCooldown: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ans, err := gw.Ask(context.Background(), "all customers")
				if err == nil && ans.Result == nil {
					t.Error("answer without result")
				}
			}
		}()
	}
	wg.Wait()
}

func TestSafeInterpreterConvertsPanics(t *testing.T) {
	safe := Safe(panicking("boomer"))
	if safe.Name() != "boomer" {
		t.Fatalf("Safe must preserve the name, got %q", safe.Name())
	}
	_, err := safe.Interpret("q")
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Engine != "boomer" {
		t.Fatalf("err = %v, want *PanicError from boomer", err)
	}
}

func TestSimplifyStripsStopwords(t *testing.T) {
	got := Simplify("please show me all the customers in Berlin!")
	if got != "customers in Berlin" {
		t.Fatalf("Simplify = %q", got)
	}
	if Simplify("show me the") != "" {
		t.Fatal("all-stopword question should simplify to empty")
	}
}
