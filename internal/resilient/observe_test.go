package resilient

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/obs"
)

// TestChainErrorNamesQuestionForm is the satellite fix: an exhausted
// chain must say, per attempt, whether the original or the simplified
// form of the question was tried.
func TestChainErrorNamesQuestionForm(t *testing.T) {
	db := testDB(t)
	failing := &fakeInterp{name: "f", fn: func(q string) ([]nlq.Interpretation, error) {
		return nil, fmt.Errorf("nope")
	}}
	gw := New(db, []nlq.Interpreter{failing}, Config{})
	_, err := gw.Ask(context.Background(), "please show me all the customers")
	var ce *ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChainError", err)
	}
	msg := ce.Error()
	if !strings.Contains(msg, "f (original): interpret: nope") {
		t.Errorf("message should name the original-form attempt: %s", msg)
	}
	if !strings.Contains(msg, `f (simplified "customers"): interpret: nope`) {
		t.Errorf("message should name the simplified-form attempt with its text: %s", msg)
	}
}

// TestAskProducesTrace checks the tentpole wiring: one Ask yields a span
// tree covering tokenize → attempt → interpret/parse/plan/execute with
// rows and budget counters, plus summary attributes on the root.
func TestAskProducesTrace(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")}, Config{})
	ans, err := gw.Ask(context.Background(), "customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil {
		t.Fatal("Answer.Trace should be populated by default")
	}
	for _, name := range []string{"tokenize", "attempt a", "interpret", "parse", "plan", "execute", "scan customer"} {
		if ans.Trace.Find(name) == nil {
			t.Errorf("trace missing span %q in:\n%s", name, ans.Trace)
		}
	}
	exec := ans.Trace.Find("execute")
	if got := exec.Count("rows_scanned"); got != 5 { // 3 base + 2 projected
		t.Errorf("rows_scanned = %d, want 5", got)
	}
	if got := exec.Count("rows_returned"); got != 2 {
		t.Errorf("rows_returned = %d, want 2", got)
	}
	if exec.Attr("budget") == "" {
		t.Error("execute span should carry budget consumption")
	}
	root := ans.Trace.Root
	if root.Attr("engine") != "a" || root.Attr("outcome") != "ok" {
		t.Errorf("root attrs engine=%q outcome=%q, want a/ok", root.Attr("engine"), root.Attr("outcome"))
	}
	if !strings.Contains(root.Attr("breakers"), "a=closed") {
		t.Errorf("root should record breaker states, got %q", root.Attr("breakers"))
	}
	if !root.Ended() {
		t.Error("root span must be ended by finish")
	}
	if ans.Elapsed <= 0 {
		t.Error("Answer.Elapsed should be positive")
	}
	if ans.Usage.Rows == 0 {
		t.Error("Answer.Usage should report consumption")
	}
	// The plan is embedded in the rendered tree.
	if out := ans.Trace.String(); !strings.Contains(out, "Project [name]") {
		t.Errorf("rendered trace should inline the plan:\n%s", out)
	}
}

func TestAskNoTrace(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, Config{NoTrace: true})
	ans, err := gw.Ask(context.Background(), "customers")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != nil {
		t.Fatal("NoTrace must suppress trace collection")
	}
	if ans.Usage.Rows == 0 {
		t.Error("usage metering must survive NoTrace")
	}
}

func TestChainErrorCarriesTrace(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{panicking("x")}, Config{NoRetry: true})
	_, err := gw.Ask(context.Background(), "anything")
	var ce *ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChainError", err)
	}
	if ce.Trace == nil {
		t.Fatal("failed asks should carry their trace for EXPLAIN")
	}
	sp := ce.Trace.Find("attempt x")
	if sp == nil || sp.Attr("error") == "" {
		t.Errorf("failed attempt span should record the error:\n%s", ce.Trace)
	}
	if got := ce.Trace.Root.Attr("outcome"); got != "exhausted" {
		t.Errorf("outcome = %q, want exhausted", got)
	}
}

func TestGatewayMetrics(t *testing.T) {
	db := testDB(t)
	reg := obs.NewRegistry()
	gw := New(db, []nlq.Interpreter{
		panicking("bad"),
		answering("good", "SELECT name FROM customer"),
	}, Config{Metrics: reg, NoRetry: true, BreakerThreshold: 2})

	// Pre-registration: families exist before any query.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, fam := range []string{MetricQueries, MetricStageSeconds, MetricBreakerState, MetricSlowQueries, MetricQuerySeconds} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("family %q should be pre-registered:\n%s", fam, sb.String())
		}
	}

	for i := 0; i < 3; i++ {
		if _, err := gw.Ask(context.Background(), "all customers"); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MetricQueries, "engine", "good", "outcome", "ok").Value(); got != 3 {
		t.Errorf("queries_total{good,ok} = %d, want 3", got)
	}
	if got := reg.Histogram(MetricQuerySeconds, "engine", "good").Count(); got != 3 {
		t.Errorf("query_seconds{good} count = %d, want 3", got)
	}
	if got := reg.Histogram(MetricStageSeconds, "stage", "execute", "engine", "good").Count(); got != 3 {
		t.Errorf("stage_seconds{execute,good} count = %d, want 3", got)
	}
	// "bad" panicked twice → threshold 2 opened its breaker (gauge = 1)
	// and counted a transition.
	if got := reg.Gauge(MetricBreakerState, "engine", "bad").Value(); got != 1 {
		t.Errorf("breaker_state{bad} = %d, want 1 (open)", got)
	}
	if got := reg.Counter(MetricBreakerTransitions, "engine", "bad", "to", "open").Value(); got != 1 {
		t.Errorf("breaker_transitions{bad,open} = %d, want 1", got)
	}
	if got := reg.Counter(MetricRowsScanned, "engine", "good").Value(); got == 0 {
		t.Error("rows_scanned_total{good} should accumulate")
	}
}

func TestGatewaySlowLog(t *testing.T) {
	db := testDB(t)
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(0, 8) // threshold 0: everything is slow
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Metrics: reg, SlowLog: slow})
	if _, err := gw.Ask(context.Background(), "all customers"); err != nil {
		t.Fatal(err)
	}
	entries := slow.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Question != "all customers" || e.Engine != "a" || e.Outcome != "ok" || e.Trace == nil {
		t.Errorf("slow entry incomplete: %+v", e)
	}
	if got := reg.Counter(MetricSlowQueries).Value(); got != 1 {
		t.Errorf("slow_queries_total = %d, want 1", got)
	}
}

func TestGatewayBreakerHookAndAccessor(t *testing.T) {
	db := testDB(t)
	var seen []string
	gw := New(db, []nlq.Interpreter{panicking("bad")}, Config{
		BreakerThreshold: 1, NoRetry: true,
		BreakerHook: func(engine, from, to string) {
			seen = append(seen, fmt.Sprintf("%s:%s→%s", engine, from, to))
		},
	})
	_, err := gw.Ask(context.Background(), "q")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if len(seen) != 1 || seen[0] != "bad:closed→open" {
		t.Fatalf("breaker hook saw %v, want [bad:closed→open]", seen)
	}
	if br := gw.Breaker("bad"); br == nil || br.State() != "open" {
		t.Fatalf("Breaker accessor should expose the open breaker")
	}
	if gw.Breaker("missing") != nil {
		t.Fatal("unknown engine should return nil breaker")
	}
}

// TestGatewayTimeoutOutcome checks the outcome classification used for
// metrics labels and slow-log entries.
func TestGatewayTimeoutOutcome(t *testing.T) {
	db := testDB(t)
	slow := obs.NewSlowLog(0, 4)
	hook := func(site Site, engine string) Fault { return Fault{Delay: time.Second} }
	gw := New(db, []nlq.Interpreter{answering("slow", "SELECT name FROM customer")},
		Config{Timeout: 30 * time.Millisecond, Hook: hook, SlowLog: slow})
	_, err := gw.Ask(context.Background(), "q")
	if err == nil {
		t.Fatal("expected timeout failure")
	}
	entries := slow.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow entries = %d, want 1", len(entries))
	}
	if got := entries[0].Outcome; got != "timeout" && got != "exhausted" {
		t.Errorf("outcome = %q, want timeout (or exhausted when the deadline landed between stages)", got)
	}
}
