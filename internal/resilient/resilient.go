// Package resilient is the production-grade serving layer in front of the
// natural-language interpreters and the SQL executor. The survey's hybrid
// systems stay usable by degrading from fragile high-precision
// interpreters to simpler high-coverage ones; this package packages that
// degradation story as a Gateway: one Ask(ctx, question) call that runs an
// ordered fallback chain of interpreters under panic isolation, per-query
// deadlines and resource budgets, per-engine circuit breakers, and
// retry-with-simplification — with named fault-injection sites so tests
// can force panics, errors, and slowness at every pipeline stage.
package resilient

import (
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
)

// Site names one pipeline stage where faults can occur (or be injected).
type Site int

const (
	// SiteInterpret is the natural-language → SQL translation stage.
	SiteInterpret Site = iota
	// SiteParse is the SQL validation stage (print + re-parse round-trip).
	SiteParse
	// SiteExecute is the SQL execution stage.
	SiteExecute
	// SitePlan is the bind/plan stage (statement → physical plan).
	SitePlan
)

// String names the site the way traces and injectors print it.
func (s Site) String() string {
	switch s {
	case SiteInterpret:
		return "interpret"
	case SiteParse:
		return "parse"
	case SiteExecute:
		return "execute"
	case SitePlan:
		return "plan"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// Fault is what a Hook may inject at a site: an artificial delay, then a
// panic, then an error — in that order; the zero Fault injects nothing.
type Fault struct {
	// Delay sleeps before the stage runs (canceled early by the query's
	// context).
	Delay time.Duration
	// Panic, when non-nil, is the value panicked with.
	Panic any
	// Err, when non-nil, is returned as the stage's error.
	Err error
}

// Hook decides the fault, if any, for one stage invocation. Hooks must be
// safe for concurrent use; the Gateway calls them on every guarded stage.
type Hook func(site Site, engine string) Fault

// PanicError is a panic recovered at a guarded site, converted into an
// error so one bad query can never take down a session. It carries the
// recovered value and the goroutine stack at recovery time.
type PanicError struct {
	// Site is the pipeline stage that panicked.
	Site Site
	// Engine is the interpreter being served when the panic happened.
	Engine string
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured by the recovering deferral.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilient: panic at %s/%s: %v", e.Site, e.Engine, e.Value)
}

// Safe wraps an interpreter so that a panic inside Interpret surfaces as a
// *PanicError instead of unwinding into the caller. Name is unchanged, so
// experiment tables and breaker keys are unaffected.
func Safe(in nlq.Interpreter) nlq.Interpreter { return &safeInterpreter{inner: in} }

type safeInterpreter struct{ inner nlq.Interpreter }

func (s *safeInterpreter) Name() string { return s.inner.Name() }

func (s *safeInterpreter) Interpret(question string) (ins []nlq.Interpretation, err error) {
	defer func() {
		if r := recover(); r != nil {
			ins = nil
			err = &PanicError{Site: SiteInterpret, Engine: s.inner.Name(), Value: r, Stack: debug.Stack()}
		}
	}()
	return s.inner.Interpret(question)
}

// Simplify strips stopwords and punctuation from a question, producing the
// degraded retry form: "please show me all the customers in Berlin" →
// "customers in Berlin". It returns "" when nothing content-bearing
// survives, in which case callers should skip the retry.
func Simplify(question string) string {
	return SimplifyTokens(nlp.Tokenize(question))
}

// SimplifyTokens is Simplify over an already-tokenized question, letting
// the gateway reuse the tokens its tokenize stage produced.
func SimplifyTokens(toks []nlp.Token) string {
	var parts []string
	for _, t := range toks {
		if t.Kind == nlp.KindPunct || t.IsStop() {
			continue
		}
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}
