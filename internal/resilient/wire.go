package resilient

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"nlidb/internal/obs"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// This file defines the typed answer wire form: how an Answer — in
// particular the partial-aggregate pushdown results the shard coordinator
// merges (SUM+COUNT pairs for AVG, ORDER BY/LIMIT re-sort inputs) —
// travels between processes. The human-facing /query protocol serializes
// every cell through Value.String(), which is lossy: "3" could be the
// integer 3, the text "3", or a float, and a coordinator that merged
// re-parsed strings could be silently wrong. The wire form keeps the type
// tag on every cell and fails typed on anything malformed, truncated, or
// NaN-bearing — a corrupt payload must never become a quietly-wrong merge.

// ErrWire marks a wire-form answer that could not be decoded (or an
// answer that cannot be encoded, e.g. a NaN aggregate). Match with
// errors.Is; the concrete error is a *WireError carrying the reason.
var ErrWire = errors.New("resilient: malformed wire answer")

// WireError reports why a wire answer was rejected.
type WireError struct {
	// Reason is the human-readable rejection.
	Reason string
}

func (e *WireError) Error() string { return "resilient: malformed wire answer: " + e.Reason }

// Unwrap lets errors.Is(err, ErrWire) match.
func (e *WireError) Unwrap() error { return ErrWire }

func wireErrf(format string, args ...any) error {
	return &WireError{Reason: fmt.Sprintf(format, args...)}
}

// Wire type tags, one per sqldata type plus NULL. Dates travel as days
// since epoch (the Value representation), not as formatted strings.
const (
	wireNull  = "n"
	wireInt   = "i"
	wireFloat = "f"
	wireText  = "s"
	wireBool  = "b"
	wireDate  = "d"
)

// WireValue is one typed cell on the wire: a type tag plus the value's
// canonical string form. Text travels verbatim; numerics through strconv
// so they round-trip exactly (floats via 'g'/-1 shortest-exact form).
type WireValue struct {
	T string `json:"t"`
	V string `json:"v,omitempty"`
}

// EncodeValue converts one typed cell to its wire form. NaN and ±Inf are
// rejected: they cannot come out of a correct aggregate over real data,
// and letting one travel would poison a downstream merge.
func EncodeValue(v sqldata.Value) (WireValue, error) {
	if v.Null {
		return WireValue{T: wireNull}, nil
	}
	switch v.T {
	case sqldata.TypeInt:
		return WireValue{T: wireInt, V: strconv.FormatInt(v.Int(), 10)}, nil
	case sqldata.TypeFloat:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return WireValue{}, wireErrf("non-finite float %v", f)
		}
		return WireValue{T: wireFloat, V: strconv.FormatFloat(f, 'g', -1, 64)}, nil
	case sqldata.TypeText:
		return WireValue{T: wireText, V: v.Text()}, nil
	case sqldata.TypeBool:
		return WireValue{T: wireBool, V: strconv.FormatBool(v.Bool())}, nil
	case sqldata.TypeDate:
		return WireValue{T: wireDate, V: strconv.FormatInt(v.DateDays(), 10)}, nil
	default:
		return WireValue{}, wireErrf("unknown value type %v", v.T)
	}
}

// DecodeValue converts a wire cell back to a typed Value, failing typed
// on unknown tags, unparseable payloads, and non-finite floats (the
// decode side re-checks NaN/Inf: strconv.ParseFloat accepts "NaN").
func DecodeValue(w WireValue) (sqldata.Value, error) {
	switch w.T {
	case wireNull:
		return sqldata.NullValue(), nil
	case wireInt:
		i, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return sqldata.Value{}, wireErrf("bad int cell %q", w.V)
		}
		return sqldata.NewInt(i), nil
	case wireFloat:
		f, err := strconv.ParseFloat(w.V, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return sqldata.Value{}, wireErrf("bad float cell %q", w.V)
		}
		return sqldata.NewFloat(f), nil
	case wireText:
		return sqldata.NewText(w.V), nil
	case wireBool:
		b, err := strconv.ParseBool(w.V)
		if err != nil {
			return sqldata.Value{}, wireErrf("bad bool cell %q", w.V)
		}
		return sqldata.NewBool(b), nil
	case wireDate:
		d, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return sqldata.Value{}, wireErrf("bad date cell %q", w.V)
		}
		return sqldata.NewDateDays(d), nil
	default:
		return sqldata.Value{}, wireErrf("unknown cell tag %q", w.T)
	}
}

// WireUsage mirrors sqlexec.Usage with stable JSON names.
type WireUsage struct {
	Rows       int `json:"rows,omitempty"`
	JoinRows   int `json:"join_rows,omitempty"`
	Subqueries int `json:"subqueries,omitempty"`
}

// WireAnswer is the process-boundary form of an Answer: typed cells, the
// SQL as text (re-parsed on decode), and the node's span tree as an
// opaque payload the coordinator grafts into its own trace.
type WireAnswer struct {
	Engine        string          `json:"engine"`
	SQL           string          `json:"sql,omitempty"`
	Columns       []string        `json:"columns"`
	Rows          [][]WireValue   `json:"rows"`
	Score         float64         `json:"score"`
	Simplified    bool            `json:"simplified,omitempty"`
	Partial       bool            `json:"partial,omitempty"`
	MissingShards []int           `json:"missing_shards,omitempty"`
	Usage         WireUsage       `json:"usage,omitempty"`
	ElapsedNS     int64           `json:"elapsed_ns,omitempty"`
	Trace         json.RawMessage `json:"trace,omitempty"`
}

// EncodeAnswer converts an executed Answer to its wire form. The span
// tree, when the answer carries one, is serialized alongside so the
// coordinator can graft the remote work into its distributed trace.
func EncodeAnswer(a *Answer) (*WireAnswer, error) {
	if a == nil || a.Result == nil {
		return nil, wireErrf("nil answer")
	}
	if math.IsNaN(a.Score) || math.IsInf(a.Score, 0) {
		return nil, wireErrf("non-finite score %v", a.Score)
	}
	w := &WireAnswer{
		Engine:        a.Engine,
		Columns:       a.Result.Columns,
		Rows:          make([][]WireValue, len(a.Result.Rows)),
		Score:         a.Score,
		Simplified:    a.Simplified,
		Partial:       a.Partial,
		MissingShards: a.MissingShards,
		Usage:         WireUsage{Rows: a.Usage.Rows, JoinRows: a.Usage.JoinRows, Subqueries: a.Usage.Subqueries},
		ElapsedNS:     int64(a.Elapsed),
	}
	if a.SQL != nil {
		w.SQL = a.SQL.String()
	}
	ncols := len(a.Result.Columns)
	for i, row := range a.Result.Rows {
		if len(row) != ncols {
			return nil, wireErrf("row %d has %d cells, want %d", i, len(row), ncols)
		}
		cells := make([]WireValue, len(row))
		for j, v := range row {
			wv, err := EncodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("row %d column %d: %w", i, j, err)
			}
			cells[j] = wv
		}
		w.Rows[i] = cells
	}
	if a.Trace != nil {
		data, err := obs.MarshalTrace(a.Trace)
		if err == nil {
			w.Trace = data
		}
	}
	return w, nil
}

// Decode converts the wire form back to an Answer. Every cell is
// re-typed and validated — row arity against the header, tags against
// the known set, numerics through strconv with NaN/Inf rejected — so a
// truncated or corrupted payload fails typed instead of merging wrong.
// The SQL text is re-parsed; the remote span tree is NOT attached (use
// RemoteTrace, then graft it under the coordinator's own span).
func (w *WireAnswer) Decode() (*Answer, error) {
	if math.IsNaN(w.Score) || math.IsInf(w.Score, 0) {
		return nil, wireErrf("non-finite score")
	}
	a := &Answer{
		Engine:        w.Engine,
		Score:         w.Score,
		Simplified:    w.Simplified,
		Partial:       w.Partial,
		MissingShards: w.MissingShards,
		Usage:         sqlexec.Usage{Rows: w.Usage.Rows, JoinRows: w.Usage.JoinRows, Subqueries: w.Usage.Subqueries},
		Elapsed:       time.Duration(w.ElapsedNS),
		Result:        &sqldata.Result{Columns: w.Columns},
	}
	if w.SQL != "" {
		stmt, err := sqlparse.Parse(w.SQL)
		if err != nil {
			return nil, wireErrf("unparseable sql %q: %v", w.SQL, err)
		}
		a.SQL = stmt
	}
	ncols := len(w.Columns)
	a.Result.Rows = make([]sqldata.Row, len(w.Rows))
	for i, cells := range w.Rows {
		if len(cells) != ncols {
			return nil, wireErrf("row %d has %d cells, want %d", i, len(cells), ncols)
		}
		row := make(sqldata.Row, len(cells))
		for j, wv := range cells {
			v, err := DecodeValue(wv)
			if err != nil {
				return nil, fmt.Errorf("row %d column %d: %w", i, j, err)
			}
			row[j] = v
		}
		a.Result.Rows[i] = row
	}
	return a, nil
}

// RemoteTrace rebuilds the remote node's span tree from the payload, or
// (nil, nil) when none traveled. The rebuilt trace is frozen and ready
// for Span.Graft under the coordinator's leg span.
func (w *WireAnswer) RemoteTrace() (*obs.QueryTrace, error) {
	if len(w.Trace) == 0 {
		return nil, nil
	}
	return obs.UnmarshalTrace(w.Trace)
}

// DecodeAnswerJSON unmarshals and decodes a wire answer in one step,
// wrapping JSON-level failures in the same typed error as cell-level
// ones so transports have a single malformed-payload signal.
func DecodeAnswerJSON(data []byte) (*Answer, *WireAnswer, error) {
	var w WireAnswer
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, nil, wireErrf("bad json: %v", err)
	}
	a, err := w.Decode()
	if err != nil {
		return nil, nil, err
	}
	return a, &w, nil
}
