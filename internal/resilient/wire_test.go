package resilient

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// randomValue draws one typed cell, NULLs included, covering every tag.
func randomValue(rng *rand.Rand) sqldata.Value {
	switch rng.Intn(6) {
	case 0:
		return sqldata.NullValue()
	case 1:
		return sqldata.NewInt(rng.Int63() - rng.Int63())
	case 2:
		// Mix integral floats in deliberately: "12000" must come back as
		// the FLOAT 12000, not the INT — that is the whole point of tags.
		if rng.Intn(3) == 0 {
			return sqldata.NewFloat(float64(rng.Intn(100000)))
		}
		return sqldata.NewFloat(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(30)-15)))
	case 3:
		runes := []rune("aé∞\"\\,\n\x00日")
		n := rng.Intn(12)
		s := make([]rune, n)
		for i := range s {
			s[i] = runes[rng.Intn(len(runes))]
		}
		return sqldata.NewText(string(s))
	case 4:
		return sqldata.NewBool(rng.Intn(2) == 0)
	default:
		return sqldata.NewDateDays(int64(rng.Intn(40000) - 10000))
	}
}

// TestWireValueRoundTrip is the property test: any typed cell encodes,
// survives JSON, and decodes to an equal cell with the same type.
func TestWireValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := randomValue(rng)
		wv, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		data, err := json.Marshal(wv)
		if err != nil {
			t.Fatal(err)
		}
		var back WireValue
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeValue(back)
		if err != nil {
			t.Fatalf("decode %+v (from %v): %v", back, v, err)
		}
		if got.Null != v.Null || (!v.Null && got.T != v.T) {
			t.Fatalf("round trip changed type: %v -> %v", v, got)
		}
		if !v.Null && !got.Equal(v) {
			t.Fatalf("round trip changed value: %v -> %v", v, got)
		}
	}
}

// TestWireAnswerRoundTrip: a full answer — typed rows, usage, partial
// markers, SQL — survives the wire byte-exactly in meaning.
func TestWireAnswerRoundTrip(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT city, SUM(credit), COUNT(*) FROM customers GROUP BY city")
	a := &Answer{
		Engine: "parse",
		SQL:    stmt,
		Score:  0.75,
		Result: &sqldata.Result{
			Columns: []string{"city", "SUM(credit)", "COUNT(*)"},
			Rows: []sqldata.Row{
				{sqldata.NewText("Berlin"), sqldata.NewFloat(12000), sqldata.NewInt(4)},
				{sqldata.NewText("Oslo"), sqldata.NullValue(), sqldata.NewInt(0)},
			},
		},
		Usage:         sqlexec.Usage{Rows: 40, JoinRows: 7, Subqueries: 1},
		Elapsed:       1500 * time.Microsecond,
		Partial:       true,
		MissingShards: []int{2},
	}
	w, err := EncodeAnswer(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeAnswerJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != a.Engine || got.Score != a.Score || !got.Partial ||
		len(got.MissingShards) != 1 || got.MissingShards[0] != 2 ||
		got.Usage != a.Usage || got.Elapsed != a.Elapsed {
		t.Fatalf("metadata changed: %+v", got)
	}
	if got.SQL == nil || got.SQL.String() != stmt.String() {
		t.Fatalf("SQL changed: %v", got.SQL)
	}
	if !got.Result.EqualOrdered(a.Result) {
		t.Fatalf("rows changed:\n%s\nwant:\n%s", got.Result, a.Result)
	}
	// The integral float kept its tag: it must still be a FLOAT cell.
	if v := got.Result.Rows[0][1]; v.T != sqldata.TypeFloat || v.Float() != 12000 {
		t.Fatalf("SUM cell = %v (type %v), want FLOAT 12000", v, v.T)
	}
}

// TestWireRejectsNonFinite: NaN/Inf must fail typed on both sides —
// encode (a NaN aggregate must not travel) and decode (ParseFloat
// accepts "NaN", so the decoder re-checks).
func TestWireRejectsNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := EncodeValue(sqldata.NewFloat(f)); !errors.Is(err, ErrWire) {
			t.Errorf("encode %v: err = %v, want ErrWire", f, err)
		}
	}
	for _, v := range []string{"NaN", "nan", "+Inf", "-Inf", "Infinity"} {
		if _, err := DecodeValue(WireValue{T: "f", V: v}); !errors.Is(err, ErrWire) {
			t.Errorf("decode float %q: err = %v, want ErrWire", v, err)
		}
	}
	if _, err := EncodeAnswer(&Answer{Score: math.NaN(), Result: &sqldata.Result{}}); !errors.Is(err, ErrWire) {
		t.Errorf("NaN score: err = %v, want ErrWire", err)
	}
}

// TestWireRejectsMalformed: corrupted payloads of every shape fail with
// ErrWire — never a silently-wrong Answer.
func TestWireRejectsMalformed(t *testing.T) {
	good, err := EncodeAnswer(&Answer{
		Engine: "e",
		Score:  1,
		Result: &sqldata.Result{
			Columns: []string{"a", "b"},
			Rows:    []sqldata.Row{{sqldata.NewInt(1), sqldata.NewFloat(2.5)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	goodJSON, _ := json.Marshal(good)

	cases := []struct {
		name string
		data []byte
	}{
		{"not json", []byte("%%%")},
		{"truncated", goodJSON[:len(goodJSON)/2]},
		{"wrong arity", []byte(`{"engine":"e","score":1,"columns":["a","b"],"rows":[[{"t":"i","v":"1"}]]}`)},
		{"unknown tag", []byte(`{"engine":"e","score":1,"columns":["a"],"rows":[[{"t":"x","v":"1"}]]}`)},
		{"bad int", []byte(`{"engine":"e","score":1,"columns":["a"],"rows":[[{"t":"i","v":"12z"}]]}`)},
		{"nan cell", []byte(`{"engine":"e","score":1,"columns":["a"],"rows":[[{"t":"f","v":"NaN"}]]}`)},
		{"bad sql", []byte(`{"engine":"e","score":1,"sql":"SELEC nope","columns":[],"rows":[]}`)},
	}
	for _, tc := range cases {
		if _, _, err := DecodeAnswerJSON(tc.data); !errors.Is(err, ErrWire) {
			t.Errorf("%s: err = %v, want ErrWire", tc.name, err)
		}
	}
	// The control: the untampered payload decodes fine.
	if _, _, err := DecodeAnswerJSON(goodJSON); err != nil {
		t.Errorf("control payload failed: %v", err)
	}
}

// TestWireRefusesUnencodableAnswer: nil answers and ragged rows are
// encode-side failures, not wire garbage for the peer to choke on.
func TestWireRefusesUnencodableAnswer(t *testing.T) {
	if _, err := EncodeAnswer(nil); !errors.Is(err, ErrWire) {
		t.Errorf("nil answer: err = %v, want ErrWire", err)
	}
	if _, err := EncodeAnswer(&Answer{Result: nil}); !errors.Is(err, ErrWire) {
		t.Errorf("nil result: err = %v, want ErrWire", err)
	}
	ragged := &Answer{Engine: "e", Result: &sqldata.Result{
		Columns: []string{"a", "b"},
		Rows:    []sqldata.Row{{sqldata.NewInt(1)}},
	}}
	if _, err := EncodeAnswer(ragged); !errors.Is(err, ErrWire) {
		t.Errorf("ragged row: err = %v, want ErrWire", err)
	}
}
