// Package schemagraph models a database schema as a graph whose nodes are
// tables and whose edges are foreign-key relationships, and infers join
// paths between the tables a natural-language query mentions. This is the
// join-inference substrate shared by the parse-tree (NaLIR-style) and
// ontology-driven (ATHENA-style) interpreters; edge weights support
// TEMPLAR-style query-log priors that bias inference toward joins users
// actually run.
package schemagraph

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Edge is one foreign-key hop between two tables, stored directionally
// (From.FromCol joins To.ToCol); every FK yields two mirrored edges.
type Edge struct {
	From, FromCol string
	To, ToCol     string
}

// key canonicalizes the edge regardless of direction.
func (e Edge) key() string {
	a := e.From + "." + e.FromCol
	b := e.To + "." + e.ToCol
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}

// String renders the edge as a join predicate.
func (e Edge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.From, e.FromCol, e.To, e.ToCol)
}

// Graph is an immutable schema graph with mutable edge weights.
type Graph struct {
	adj     map[string][]Edge
	tables  []string
	weights map[string]float64
}

// Build constructs the graph from the database's declared foreign keys.
func Build(db *sqldata.Database) *Graph {
	g := &Graph{adj: make(map[string][]Edge), weights: make(map[string]float64)}
	for _, t := range db.Tables() {
		name := strings.ToLower(t.Schema.Name)
		g.tables = append(g.tables, name)
		if _, ok := g.adj[name]; !ok {
			g.adj[name] = nil
		}
	}
	for _, t := range db.Tables() {
		from := strings.ToLower(t.Schema.Name)
		for _, fk := range t.Schema.ForeignKeys {
			to := strings.ToLower(fk.RefTable)
			fwd := Edge{From: from, FromCol: strings.ToLower(fk.Column), To: to, ToCol: strings.ToLower(fk.RefColumn)}
			rev := Edge{From: to, FromCol: strings.ToLower(fk.RefColumn), To: from, ToCol: strings.ToLower(fk.Column)}
			g.adj[from] = append(g.adj[from], fwd)
			g.adj[to] = append(g.adj[to], rev)
		}
	}
	for _, edges := range g.adj {
		sort.Slice(edges, func(i, j int) bool { return edges[i].String() < edges[j].String() })
	}
	sort.Strings(g.tables)
	return g
}

// Tables lists all known tables, sorted.
func (g *Graph) Tables() []string { return g.tables }

// HasTable reports whether the graph knows the table.
func (g *Graph) HasTable(name string) bool {
	_, ok := g.adj[strings.ToLower(name)]
	return ok
}

// SetWeight overrides an edge's traversal cost (default 1.0). Query-log
// priors call this with values below 1 for frequently joined pairs.
func (g *Graph) SetWeight(e Edge, w float64) { g.weights[e.key()] = w }

// Weight returns the traversal cost of an edge.
func (g *Graph) Weight(e Edge) float64 {
	if w, ok := g.weights[e.key()]; ok {
		return w
	}
	return 1.0
}

// Path returns the cheapest join path between two tables (Dijkstra over
// edge weights; ties broken lexicographically for determinism). An empty
// path means from == to.
func (g *Graph) Path(from, to string) ([]Edge, error) {
	from, to = strings.ToLower(from), strings.ToLower(to)
	if !g.HasTable(from) {
		return nil, fmt.Errorf("schemagraph: unknown table %q", from)
	}
	if !g.HasTable(to) {
		return nil, fmt.Errorf("schemagraph: unknown table %q", to)
	}
	if from == to {
		return nil, nil
	}
	dist := map[string]float64{from: 0}
	prev := map[string]Edge{}
	visited := map[string]bool{}
	for {
		// Extract the unvisited node with the smallest distance.
		cur, best := "", 0.0
		for n, d := range dist {
			if visited[n] {
				continue
			}
			if cur == "" || d < best || (d == best && n < cur) {
				cur, best = n, d
			}
		}
		if cur == "" {
			return nil, fmt.Errorf("schemagraph: no join path from %q to %q", from, to)
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, e := range g.adj[cur] {
			nd := best + g.Weight(e)
			if d, ok := dist[e.To]; !ok || nd < d {
				dist[e.To] = nd
				prev[e.To] = e
			}
		}
	}
	var path []Edge
	for at := to; at != from; {
		e := prev[at]
		path = append([]Edge{e}, path...)
		at = e.From
	}
	return path, nil
}

// ParallelEdges returns all direct foreign-key edges between two tables
// (a schema may have several, e.g. origin and destination references to
// the same dimension table); they are distinct join readings.
func (g *Graph) ParallelEdges(a, b string) []Edge {
	a, b = strings.ToLower(a), strings.ToLower(b)
	var out []Edge
	for _, e := range g.adj[a] {
		if e.To == b {
			out = append(out, e)
		}
	}
	return out
}

// JoinTree connects all the given tables with a minimal set of join edges
// (greedy Steiner heuristic: grow the connected component by the cheapest
// path to any uncovered terminal). The result lists the distinct edges to
// apply; callers order them via BuildFrom.
func (g *Graph) JoinTree(tables []string) ([]Edge, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("schemagraph: JoinTree with no tables")
	}
	terms := make([]string, 0, len(tables))
	seen := map[string]bool{}
	for _, t := range tables {
		lt := strings.ToLower(t)
		if !g.HasTable(lt) {
			return nil, fmt.Errorf("schemagraph: unknown table %q", t)
		}
		if !seen[lt] {
			seen[lt] = true
			terms = append(terms, lt)
		}
	}
	sort.Strings(terms)

	connected := map[string]bool{terms[0]: true}
	var edges []Edge
	edgeSeen := map[string]bool{}
	remaining := terms[1:]

	for len(remaining) > 0 {
		// Cheapest path from the connected set to any remaining terminal.
		var bestPath []Edge
		bestCost := 0.0
		bestIdx := -1
		for i, target := range remaining {
			for src := range connected {
				p, err := g.Path(src, target)
				if err != nil {
					continue
				}
				cost := 0.0
				for _, e := range p {
					cost += g.Weight(e)
				}
				if bestIdx < 0 || cost < bestCost {
					bestPath, bestCost, bestIdx = p, cost, i
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("schemagraph: cannot connect tables %v", terms)
		}
		for _, e := range bestPath {
			connected[e.From] = true
			connected[e.To] = true
			if !edgeSeen[e.key()] {
				edgeSeen[e.key()] = true
				edges = append(edges, e)
			}
		}
		connected[remaining[bestIdx]] = true
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return edges, nil
}

// BuildFrom converts a set of required tables into a FROM clause whose
// JOIN chain applies the inferred join tree. Tables not linked by any edge
// cause an error. The first (sorted) required table anchors the chain.
func (g *Graph) BuildFrom(tables []string) (*sqlparse.FromClause, error) {
	edges, err := g.JoinTree(tables)
	if err != nil {
		return nil, err
	}
	// Collect every table touched (terminals plus Steiner intermediates).
	need := map[string]bool{}
	for _, t := range tables {
		need[strings.ToLower(t)] = true
	}
	for _, e := range edges {
		need[e.From] = true
		need[e.To] = true
	}
	order := make([]string, 0, len(need))
	for t := range need {
		order = append(order, t)
	}
	sort.Strings(order)

	from := &sqlparse.FromClause{First: sqlparse.TableRef{Name: order[0]}}
	placed := map[string]bool{order[0]: true}
	pending := append([]Edge(nil), edges...)
	for len(pending) > 0 {
		progressed := false
		for i, e := range pending {
			var newTable string
			switch {
			case placed[e.From] && !placed[e.To]:
				newTable = e.To
			case placed[e.To] && !placed[e.From]:
				newTable = e.From
			case placed[e.From] && placed[e.To]:
				// Redundant edge (cycle); attach as an extra conjunct is
				// unnecessary for trees — drop it.
				pending = append(pending[:i], pending[i+1:]...)
				progressed = true
			default:
				continue
			}
			if newTable != "" {
				on := &sqlparse.BinaryExpr{
					Op: "=",
					L:  &sqlparse.ColumnRef{Table: e.From, Column: e.FromCol},
					R:  &sqlparse.ColumnRef{Table: e.To, Column: e.ToCol},
				}
				from.Joins = append(from.Joins, sqlparse.Join{Type: sqlparse.JoinInner, Table: sqlparse.TableRef{Name: newTable}, On: on})
				placed[newTable] = true
				pending = append(pending[:i], pending[i+1:]...)
				progressed = true
			}
			break
		}
		if !progressed {
			return nil, fmt.Errorf("schemagraph: disconnected join edges %v", pending)
		}
	}
	// Any required table still unplaced has no edge at all (single-table
	// queries fall out naturally; multi-table without FK is an error).
	for t := range need {
		if !placed[t] {
			if len(need) == 1 {
				break
			}
			return nil, fmt.Errorf("schemagraph: table %q cannot be joined", t)
		}
	}
	return from, nil
}

// ApplyQueryLog lowers the weight of every join edge seen in the log,
// reproducing TEMPLAR's use of SQL query logs for join-path inference.
// Each observation multiplies the edge weight by decay (clamped at min).
func (g *Graph) ApplyQueryLog(stmts []*sqlparse.SelectStmt, decay, min float64) {
	for _, s := range stmts {
		if s.From == nil {
			continue
		}
		for _, j := range s.From.Joins {
			be, ok := j.On.(*sqlparse.BinaryExpr)
			if !ok || be.Op != "=" {
				continue
			}
			l, lok := be.L.(*sqlparse.ColumnRef)
			r, rok := be.R.(*sqlparse.ColumnRef)
			if !lok || !rok {
				continue
			}
			e := Edge{
				From: strings.ToLower(l.Table), FromCol: strings.ToLower(l.Column),
				To: strings.ToLower(r.Table), ToCol: strings.ToLower(r.Column),
			}
			w := g.Weight(e) * decay
			if w < min {
				w = min
			}
			g.SetWeight(e, w)
		}
	}
}
