package schemagraph

import (
	"strings"
	"testing"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// starDB builds a star schema:
//
//	orders → customer, orders → product, product → category,
//	customer → city, employee → city (so employee—customer needs 2 hops).
func starDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	mk := func(name string, cols []sqldata.Column, fks ...sqldata.ForeignKey) {
		if _, err := db.CreateTable(&sqldata.Schema{Name: name, Columns: cols, ForeignKeys: fks}); err != nil {
			t.Fatal(err)
		}
	}
	id := func() sqldata.Column { return sqldata.Column{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true} }
	mk("city", []sqldata.Column{id(), {Name: "name", Type: sqldata.TypeText}})
	mk("customer", []sqldata.Column{id(), {Name: "name", Type: sqldata.TypeText}, {Name: "city_id", Type: sqldata.TypeInt}},
		sqldata.ForeignKey{Column: "city_id", RefTable: "city", RefColumn: "id"})
	mk("category", []sqldata.Column{id(), {Name: "name", Type: sqldata.TypeText}})
	mk("product", []sqldata.Column{id(), {Name: "name", Type: sqldata.TypeText}, {Name: "category_id", Type: sqldata.TypeInt}},
		sqldata.ForeignKey{Column: "category_id", RefTable: "category", RefColumn: "id"})
	mk("orders", []sqldata.Column{id(), {Name: "customer_id", Type: sqldata.TypeInt}, {Name: "product_id", Type: sqldata.TypeInt}, {Name: "qty", Type: sqldata.TypeInt}},
		sqldata.ForeignKey{Column: "customer_id", RefTable: "customer", RefColumn: "id"},
		sqldata.ForeignKey{Column: "product_id", RefTable: "product", RefColumn: "id"})
	mk("employee", []sqldata.Column{id(), {Name: "name", Type: sqldata.TypeText}, {Name: "city_id", Type: sqldata.TypeInt}},
		sqldata.ForeignKey{Column: "city_id", RefTable: "city", RefColumn: "id"})
	mk("island", []sqldata.Column{id()}) // disconnected table
	return db
}

func TestPathDirect(t *testing.T) {
	g := Build(starDB(t))
	p, err := g.Path("orders", "customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].String() != "orders.customer_id = customer.id" {
		t.Fatalf("path = %v", p)
	}
}

func TestPathMultiHop(t *testing.T) {
	g := Build(starDB(t))
	p, err := g.Path("employee", "customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("path = %v", p)
	}
	if p[0].From != "employee" || p[0].To != "city" || p[1].To != "customer" {
		t.Errorf("path shape = %v", p)
	}
}

func TestPathSameTable(t *testing.T) {
	g := Build(starDB(t))
	p, err := g.Path("orders", "orders")
	if err != nil || p != nil {
		t.Errorf("same-table path = %v, %v", p, err)
	}
}

func TestPathErrors(t *testing.T) {
	g := Build(starDB(t))
	if _, err := g.Path("orders", "island"); err == nil {
		t.Error("disconnected path accepted")
	}
	if _, err := g.Path("orders", "nope"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestJoinTreeThreeTables(t *testing.T) {
	g := Build(starDB(t))
	edges, err := g.JoinTree([]string{"category", "customer", "orders"})
	if err != nil {
		t.Fatal(err)
	}
	// Needs orders-customer, orders-product, product-category = 3 edges.
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestJoinTreeSingle(t *testing.T) {
	g := Build(starDB(t))
	edges, err := g.JoinTree([]string{"orders"})
	if err != nil || len(edges) != 0 {
		t.Errorf("single-table tree = %v, %v", edges, err)
	}
}

func TestBuildFromSingleTable(t *testing.T) {
	g := Build(starDB(t))
	from, err := g.BuildFrom([]string{"customer"})
	if err != nil {
		t.Fatal(err)
	}
	if from.First.Name != "customer" || len(from.Joins) != 0 {
		t.Errorf("from = %s", from)
	}
}

func TestBuildFromExecutes(t *testing.T) {
	db := starDB(t)
	// Populate a little data to execute against.
	db.Table("city").MustInsert(sqldata.NewInt(1), sqldata.NewText("Berlin"))
	db.Table("customer").MustInsert(sqldata.NewInt(1), sqldata.NewText("Ann"), sqldata.NewInt(1))
	db.Table("category").MustInsert(sqldata.NewInt(1), sqldata.NewText("toys"))
	db.Table("product").MustInsert(sqldata.NewInt(1), sqldata.NewText("ball"), sqldata.NewInt(1))
	db.Table("orders").MustInsert(sqldata.NewInt(1), sqldata.NewInt(1), sqldata.NewInt(1), sqldata.NewInt(3))

	g := Build(db)
	from, err := g.BuildFrom([]string{"customer", "category"})
	if err != nil {
		t.Fatal(err)
	}
	stmt := sqlparse.NewSelect()
	stmt.Items = []sqlparse.SelectItem{{Expr: &sqlparse.ColumnRef{Table: "customer", Column: "name"}}}
	stmt.From = from
	sql := stmt.String()
	if !strings.Contains(sql, "JOIN") {
		t.Fatalf("no joins in %s", sql)
	}
	// The clause must round-trip through the parser and execute.
	reparsed, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("generated SQL unparseable: %s: %v", sql, err)
	}
	_ = reparsed
}

func TestBuildFromDisconnected(t *testing.T) {
	g := Build(starDB(t))
	if _, err := g.BuildFrom([]string{"orders", "island"}); err == nil {
		t.Error("disconnected BuildFrom accepted")
	}
}

func TestWeightsChangePath(t *testing.T) {
	db := sqldata.NewDatabase("w")
	mk := func(name string, cols []sqldata.Column, fks ...sqldata.ForeignKey) {
		if _, err := db.CreateTable(&sqldata.Schema{Name: name, Columns: cols, ForeignKeys: fks}); err != nil {
			t.Fatal(err)
		}
	}
	id := func() sqldata.Column { return sqldata.Column{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true} }
	// Diamond: a→b→d and a→c→d; both length 2.
	mk("d", []sqldata.Column{id()})
	mk("b", []sqldata.Column{id(), {Name: "d_id", Type: sqldata.TypeInt}}, sqldata.ForeignKey{Column: "d_id", RefTable: "d", RefColumn: "id"})
	mk("c", []sqldata.Column{id(), {Name: "d_id", Type: sqldata.TypeInt}}, sqldata.ForeignKey{Column: "d_id", RefTable: "d", RefColumn: "id"})
	mk("a", []sqldata.Column{id(), {Name: "b_id", Type: sqldata.TypeInt}, {Name: "c_id", Type: sqldata.TypeInt}},
		sqldata.ForeignKey{Column: "b_id", RefTable: "b", RefColumn: "id"},
		sqldata.ForeignKey{Column: "c_id", RefTable: "c", RefColumn: "id"})

	g := Build(db)
	p1, err := g.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic tie-break goes through b (lexicographically smaller).
	if p1[0].To != "b" {
		t.Fatalf("default path = %v", p1)
	}
	// Bias the c route strongly.
	g.SetWeight(Edge{From: "a", FromCol: "c_id", To: "c", ToCol: "id"}, 0.1)
	g.SetWeight(Edge{From: "c", FromCol: "d_id", To: "d", ToCol: "id"}, 0.1)
	p2, err := g.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if p2[0].To != "c" {
		t.Fatalf("weighted path = %v", p2)
	}
}

func TestApplyQueryLog(t *testing.T) {
	g := Build(starDB(t))
	logStmt := sqlparse.MustParse("SELECT orders.id FROM orders JOIN customer ON orders.customer_id = customer.id")
	before := g.Weight(Edge{From: "orders", FromCol: "customer_id", To: "customer", ToCol: "id"})
	g.ApplyQueryLog([]*sqlparse.SelectStmt{logStmt, logStmt}, 0.5, 0.05)
	after := g.Weight(Edge{From: "orders", FromCol: "customer_id", To: "customer", ToCol: "id"})
	if before != 1.0 || after != 0.25 {
		t.Errorf("weights %v → %v", before, after)
	}
	// Clamping at min.
	for i := 0; i < 10; i++ {
		g.ApplyQueryLog([]*sqlparse.SelectStmt{logStmt}, 0.5, 0.05)
	}
	if w := g.Weight(Edge{From: "orders", FromCol: "customer_id", To: "customer", ToCol: "id"}); w < 0.05 {
		t.Errorf("weight below min: %v", w)
	}
}
