package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
)

// TestObservabilityDuringDrain is the regression test for the shutdown
// ordering bug: a draining server must shed query traffic with 503s but
// keep /metrics, /debug/vars, and /slowlog answering, so operators can
// watch the drain instead of going blind at the worst moment.
func TestObservabilityDuringDrain(t *testing.T) {
	db := testDB(t)
	block := make(chan struct{})
	slowInterp := &fakeInterp{name: "slow", fn: func(q string) ([]nlq.Interpretation, error) {
		<-block
		return answering("slow", "SELECT name FROM customer").fn(q)
	}}
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(time.Millisecond, 16)
	gw := resilient.New(db, []nlq.Interpreter{slowInterp}, resilient.Config{Metrics: reg, SlowLog: slow})
	api := New(Config{Gateway: gw, Metrics: reg})
	mux := Mux(api, reg, slow)

	// Park one request inside the pipeline so the drain has to wait.
	done := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"question": "x"}`))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		done <- rec.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for api.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan bool, 1)
	go func() { drained <- api.Drain(10 * time.Second) }()
	for !api.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Query traffic is shed...
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"question": "y"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("X-Shed-Reason") != "draining" {
		t.Fatalf("query during drain: X-Shed-Reason %q, want draining", rec.Header().Get("X-Shed-Reason"))
	}
	// ...but the debug suite keeps answering.
	for _, path := range []string{"/metrics", "/debug/vars", "/slowlog"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s during drain: status %d, want 200", path, rec.Code)
		}
		if rec.Body.Len() == 0 {
			t.Errorf("GET %s during drain: empty body", path)
		}
	}

	close(block)
	if !<-drained {
		t.Fatal("drain reported stragglers despite the request finishing")
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

// TestShardedBackendOverHTTP wires a shard.Cluster as the server Backend
// and checks the degradation contract reaches the client: a dead shard
// turns scatter answers into partial:true with the missing shard listed.
func TestShardedBackendOverHTTP(t *testing.T) {
	db := testDB(t)
	nodes := make([][]*shard.ChaosNode, 2)
	cl, err := shard.New(db, 2, shard.Config{
		Replicas:     1,
		Chain:        []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Retries:      1,
		RetryBackoff: time.Millisecond,
		CacheSize:    -1,
		WrapNode: func(s, r int, n shard.Node) shard.Node {
			cn := &shard.ChaosNode{Inner: n}
			nodes[s] = append(nodes[s], cn)
			return cn
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Backend: cl})

	rec := post(s, "/query", `{"question": "all customers"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy cluster: status %d, body %s", rec.Code, rec.Body)
	}
	resp := decode[queryResponse](t, rec)
	if resp.Partial || len(resp.Rows) != 3 {
		t.Fatalf("healthy cluster: %+v", resp)
	}

	nodes[1][0].Kill()
	rec = post(s, "/query", `{"question": "all customers"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded cluster: status %d, body %s", rec.Code, rec.Body)
	}
	resp = decode[queryResponse](t, rec)
	if !resp.Partial {
		t.Fatalf("degraded cluster: answer not marked partial: %+v", resp)
	}
	if len(resp.MissingShards) != 1 || resp.MissingShards[0] != 1 {
		t.Fatalf("degraded cluster: missing_shards %v, want [1]", resp.MissingShards)
	}
	if len(resp.Rows) >= 3 {
		t.Fatalf("degraded cluster: partial answer has %d rows, want fewer than 3", len(resp.Rows))
	}
}
