package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
)

// This file is the node-to-node half of the protocol: POST
// /internal/query serves a coordinator's remote shard legs with typed
// answers (resilient.WireAnswer — the human /query route stringifies
// cells, which a partial-aggregate merge cannot survive), and GET
// /healthz serves supervisors and load balancers. Both routes are part
// of what turns this process into a shard node another process can own.

// SQLBackend is the direct-SQL path a backend may offer: how pushed-down
// partial-aggregate statements execute without an NL pipeline in the
// way. resilient.Gateway and shard.Cluster both satisfy it.
type SQLBackend interface {
	AskSQL(ctx context.Context, sql string) (*resilient.Answer, error)
}

// internalQueryRequest is the POST /internal/query body: exactly one of
// Question (full NL pipeline) or SQL (trusted pushdown statement).
type internalQueryRequest struct {
	Question string `json:"question,omitempty"`
	SQL      string `json:"sql,omitempty"`
	Priority string `json:"priority,omitempty"`
}

func (s *Server) handleInternalQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Epoch fencing first, before any work: a node configured under a
	// different shard map than the coordinator routed with must refuse —
	// it may no longer own the rows the request assumes. The response
	// always carries this node's epoch so the stale side learns.
	if epoch := s.cfg.ShardEpoch; epoch != 0 {
		w.Header().Set(shard.HeaderShardEpoch, strconv.FormatInt(epoch, 10))
		if h := r.Header.Get(shard.HeaderShardEpoch); h != "" {
			have, err := strconv.ParseInt(h, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "invalid "+shard.HeaderShardEpoch+" header: "+h)
				return
			}
			if have != epoch {
				writeJSON(w, http.StatusConflict, map[string]any{
					"error":       (&shard.StaleEpochError{Have: have, Want: epoch}).Error(),
					"shard_epoch": epoch,
				})
				return
			}
		}
	}
	var req internalQueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if (req.Question == "") == (req.SQL == "") {
		writeError(w, http.StatusBadRequest, "exactly one of question or sql is required")
		return
	}
	class := admission.Interactive
	if req.Priority != "" {
		var err error
		if class, err = admission.ParsePriority(req.Priority); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()
	if h := r.Header.Get("X-Trace-Context"); h != "" {
		tc, terr := obs.ParseTraceContext(h)
		if terr != nil {
			// Reject rather than mislink: a corrupt trace header would
			// attach this node's spans to the wrong distributed trace.
			writeError(w, http.StatusBadRequest, terr.Error())
			return
		}
		ctx = obs.WithRemoteContext(ctx, tc)
	}

	release, ok := s.gate(w, r, ctx, class)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	var ans *resilient.Answer
	if req.SQL != "" {
		sb, okSQL := s.cfg.Backend.(SQLBackend)
		if !okSQL {
			writeError(w, http.StatusNotImplemented, "backend has no direct SQL path")
			return
		}
		ans, err = sb.AskSQL(ctx, req.SQL)
	} else {
		ans, err = s.cfg.Backend.Ask(ctx, req.Question)
	}
	s.observeSLO(time.Since(start), ans, err)
	if err != nil {
		s.writeAskError(w, ctx, err)
		return
	}
	wire, werr := resilient.EncodeAnswer(ans)
	if werr != nil {
		// An answer that cannot be typed for the wire (NaN aggregate,
		// ragged rows) must fail loudly, not travel approximately.
		writeError(w, http.StatusInternalServerError, werr.Error())
		return
	}
	writeJSON(w, http.StatusOK, wire)
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status   string `json:"status"` // "ok", "draining", or "failing"
	Mode     string `json:"mode"`   // "shallow" or "deep"
	InFlight int    `json:"inflight"`
	// DeepSupported is false when ?deep=1 was asked of a server with no
	// HealthSQL probe or no direct-SQL backend (the probe fell back to
	// shallow).
	DeepSupported bool    `json:"deep_supported"`
	ProbeMs       float64 `json:"probe_ms,omitempty"`
	Error         string  `json:"error,omitempty"`
	// ShardIndex/ShardEpoch identify this node's place in the fleet
	// (present only when the node was started with a shard assignment).
	ShardIndex *int  `json:"shard_index,omitempty"`
	ShardEpoch int64 `json:"shard_epoch,omitempty"`
}

// handleHealthz answers liveness probes. Shallow (the default) means the
// process is up and not draining; deep (?deep=1) additionally executes
// Config.HealthSQL through the backend, so a wedged pipeline fails the
// probe while the port still accepts. Draining always answers 503 — the
// supervisor should stop routing here — but the handler itself bypasses
// the drain barrier so the probe keeps answering until exit.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sb, hasSQL := s.cfg.Backend.(SQLBackend)
	resp := healthzResponse{
		Status:        "ok",
		Mode:          "shallow",
		InFlight:      s.InFlight(),
		DeepSupported: s.cfg.HealthSQL != "" && hasSQL,
	}
	if s.cfg.ShardEpoch != 0 {
		idx := s.cfg.ShardIndex
		resp.ShardIndex = &idx
		resp.ShardEpoch = s.cfg.ShardEpoch
		w.Header().Set(shard.HeaderShardEpoch, strconv.FormatInt(s.cfg.ShardEpoch, 10))
	}
	if s.Draining() {
		resp.Status = "draining"
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Admission.RetryAfterHint()))
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if r.URL.Query().Get("deep") != "" && resp.DeepSupported {
		resp.Mode = "deep"
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		start := time.Now()
		_, err := sb.AskSQL(ctx, s.cfg.HealthSQL)
		resp.ProbeMs = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			resp.Status = "failing"
			resp.Error = err.Error()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
