package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
)

// TestInternalQueryTypedAnswer: POST /internal/query answers in the
// typed wire form — cells carry tags, and the decoded answer's values
// keep their types instead of the /query route's strings.
func TestInternalQueryTypedAnswer(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Backend: gw})

	rec := post(s, "/internal/query", `{"sql": "SELECT COUNT(*) FROM customer"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	ans, wire, err := resilient.DecodeAnswerJSON(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("response is not a wire answer: %v\n%s", err, rec.Body)
	}
	if v := ans.Result.Rows[0][0]; v.T != sqldata.TypeInt || v.Int() != 3 {
		t.Fatalf("COUNT cell = %v (type %v), want INT 3", v, v.T)
	}
	if len(wire.Trace) == 0 {
		t.Fatal("no server-side trace traveled with the answer")
	}
	// The NL path works too.
	rec = post(s, "/internal/query", `{"question": "customers"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("NL path status %d, body %s", rec.Code, rec.Body)
	}
}

// TestInternalQueryValidation: exactly one of question/sql, POST only,
// and a malformed trace header is rejected rather than mislinked.
func TestInternalQueryValidation(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Backend: gw})

	for _, body := range []string{`{}`, `{"question":"x","sql":"SELECT 1"}`, `not json`} {
		if rec := post(s, "/internal/query", body, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/internal/query", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
	if rec := post(s, "/internal/query", `{"sql":"SELECT 1"}`, map[string]string{"X-Trace-Context": "%%%"}); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed trace header: status %d, want 400", rec.Code)
	}
}

// TestInternalQueryEpochFence: a node declared under shard-map epoch E
// refuses requests stamped with any other epoch — typed 409 carrying the
// node's epoch — before reading the body.
func TestInternalQueryEpochFence(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Backend: gw, ShardEpoch: 5, ShardIndex: 2})

	rec := post(s, "/internal/query", `{"sql":"SELECT COUNT(*) FROM customer"}`, map[string]string{"X-Shard-Epoch": "4"})
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale epoch: status %d, want 409 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Shard-Epoch"); got != "5" {
		t.Fatalf("409 response epoch header = %q, want 5", got)
	}
	resp := decode[map[string]any](t, rec)
	if resp["shard_epoch"] != float64(5) || resp["error"] == "" {
		t.Fatalf("409 body = %v, want error + shard_epoch 5", resp)
	}

	if rec := post(s, "/internal/query", `{"sql":"SELECT COUNT(*) FROM customer"}`, map[string]string{"X-Shard-Epoch": "bogus"}); rec.Code != http.StatusBadRequest {
		t.Errorf("unparseable epoch: status %d, want 400", rec.Code)
	}
	for _, hdr := range []map[string]string{nil, {"X-Shard-Epoch": "5"}} {
		if rec := post(s, "/internal/query", `{"sql":"SELECT COUNT(*) FROM customer"}`, hdr); rec.Code != http.StatusOK {
			t.Errorf("hdr %v: status %d, want 200 (body %s)", hdr, rec.Code, rec.Body)
		}
	}
}

// TestHealthz covers the probe ladder: shallow, deep, deep-failing,
// draining, and the shard identity fields.
func TestHealthz(t *testing.T) {
	db := testDB(t)
	get := func(s *Server, path string) (*httptest.ResponseRecorder, healthzResponse) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec, decode[healthzResponse](t, rec)
	}

	t.Run("shallow and deep ok", func(t *testing.T) {
		gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
		s := New(Config{Backend: gw, HealthSQL: "SELECT COUNT(*) FROM customer", ShardEpoch: 3, ShardIndex: 1})
		rec, resp := get(s, "/healthz")
		if rec.Code != http.StatusOK || resp.Status != "ok" || resp.Mode != "shallow" || !resp.DeepSupported {
			t.Fatalf("shallow: %d %+v", rec.Code, resp)
		}
		if resp.ShardIndex == nil || *resp.ShardIndex != 1 || resp.ShardEpoch != 3 {
			t.Fatalf("shard identity: %+v", resp)
		}
		rec, resp = get(s, "/healthz?deep=1")
		if rec.Code != http.StatusOK || resp.Mode != "deep" || resp.ProbeMs < 0 {
			t.Fatalf("deep: %d %+v", rec.Code, resp)
		}
	})

	t.Run("deep probe failure is a 503", func(t *testing.T) {
		gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
		s := New(Config{Backend: gw, HealthSQL: "SELECT x FROM no_such_table"})
		rec, resp := get(s, "/healthz?deep=1")
		if rec.Code != http.StatusServiceUnavailable || resp.Status != "failing" || resp.Error == "" {
			t.Fatalf("failing deep: %d %+v", rec.Code, resp)
		}
		// Shallow still answers 200: the process is up, the pipeline is not.
		if rec, resp := get(s, "/healthz"); rec.Code != http.StatusOK || resp.Status != "ok" {
			t.Fatalf("shallow after deep failure: %d %+v", rec.Code, resp)
		}
	})

	t.Run("draining answers 503 with retry advice", func(t *testing.T) {
		gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
		s := New(Config{Backend: gw})
		if !s.Drain(time.Second) {
			t.Fatal("idle drain not clean")
		}
		rec, resp := get(s, "/healthz")
		if rec.Code != http.StatusServiceUnavailable || resp.Status != "draining" {
			t.Fatalf("draining: %d %+v", rec.Code, resp)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("draining healthz carries no Retry-After")
		}
	})

	t.Run("post is rejected", func(t *testing.T) {
		gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
		s := New(Config{Backend: gw})
		if rec := post(s, "/healthz", "", nil); rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("POST /healthz: status %d, want 405", rec.Code)
		}
	})
}

// blockingBackend parks every call until release closes (or the call's
// context dies), reporting each call's context so the test can watch
// which ones a drain sweep cancels.
type blockingBackend struct {
	ctxs    chan context.Context
	release chan struct{}
	answer  *resilient.Answer
}

func (b *blockingBackend) serve(ctx context.Context) (*resilient.Answer, error) {
	b.ctxs <- ctx
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.release:
		return b.answer, nil
	}
}

func (b *blockingBackend) Ask(ctx context.Context, q string) (*resilient.Answer, error) {
	return b.serve(ctx)
}

func (b *blockingBackend) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	return b.serve(ctx)
}

func (b *blockingBackend) ServeBatch(ctx context.Context, qs []string) []resilient.BatchResult {
	out := make([]resilient.BatchResult, len(qs))
	for i, q := range qs {
		ans, err := b.serve(ctx)
		out[i] = resilient.BatchResult{Index: i, Question: q, Answer: ans, Err: err}
	}
	return out
}

// TestDrainClassOwnDeadline is the drain-class regression test: when a
// drain overruns its budget, DrainSweep requests (interactive /query)
// are cancelled, but an in-flight /internal/query leg carrying its own
// explicit X-Deadline-Ms keeps the remainder of that budget — the
// coordinator priced the leg upstream, and sweeping it would turn an
// answerable scatter leg into a spurious failure.
func TestDrainClassOwnDeadline(t *testing.T) {
	bb := &blockingBackend{
		ctxs:    make(chan context.Context, 2),
		release: make(chan struct{}),
		answer: &resilient.Answer{
			Engine: "block",
			Result: &sqldata.Result{Columns: []string{"a"}, Rows: []sqldata.Row{{sqldata.NewInt(1)}}},
		},
	}
	s := New(Config{Backend: bb})

	type result struct {
		path string
		code int
	}
	results := make(chan result, 2)
	start := func(path, body string, hdr map[string]string) {
		go func() {
			rec := post(s, path, body, hdr)
			results <- result{path, rec.Code}
		}()
	}
	// The scatter leg: explicit deadline, own-deadline drain class.
	start("/internal/query", `{"sql":"SELECT 1"}`, map[string]string{"X-Deadline-Ms": "10000"})
	legCtx := <-bb.ctxs
	// The interactive query: no explicit deadline, sweep class.
	start("/query", `{"question":"x"}`, nil)
	userCtx := <-bb.ctxs

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(50 * time.Millisecond) }()

	// The drain overruns and sweeps: the interactive request dies...
	select {
	case <-userCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never cancelled the interactive request")
	}
	// ...but the leg with its own deadline is still alive.
	select {
	case <-legCtx.Done():
		t.Fatal("drain sweep cancelled an own-deadline scatter leg")
	case <-time.After(100 * time.Millisecond):
	}

	close(bb.release)
	if <-drained {
		t.Fatal("drain reported clean despite sweeping a straggler")
	}
	for i := 0; i < 2; i++ {
		r := <-results
		switch r.path {
		case "/internal/query":
			if r.code != http.StatusOK {
				t.Errorf("own-deadline leg finished %d, want 200", r.code)
			}
		case "/query":
			if r.code == http.StatusOK {
				t.Error("swept interactive request reported 200")
			}
		}
	}
}

// TestDrainClassRequiresExplicitDeadline: an /internal/query request
// WITHOUT X-Deadline-Ms falls back to the sweep class — otherwise an
// unbounded leg could hold shutdown hostage for the whole DefaultTimeout.
func TestDrainClassRequiresExplicitDeadline(t *testing.T) {
	bb := &blockingBackend{
		ctxs:    make(chan context.Context, 1),
		release: make(chan struct{}),
		answer:  &resilient.Answer{Engine: "block", Result: &sqldata.Result{}},
	}
	s := New(Config{Backend: bb})
	done := make(chan int, 1)
	go func() {
		rec := post(s, "/internal/query", `{"sql":"SELECT 1"}`, nil)
		done <- rec.Code
	}()
	ctx := <-bb.ctxs

	go s.Drain(50 * time.Millisecond)
	select {
	case <-ctx.Done():
		if !strings.Contains(ctx.Err().Error(), "canceled") {
			t.Fatalf("ctx err = %v, want cancellation from the sweep", ctx.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never cancelled the deadline-less internal request")
	}
	close(bb.release)
	<-done
}
