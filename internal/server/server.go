// Package server is the HTTP front door over the resilient gateway. It
// exists to make the paper's interactive-latency requirement survive
// contact with real traffic: every request passes the admission
// controller before it may touch the pipeline, per-client token buckets
// stop any one caller from starving the rest, client deadlines propagate
// from header to context so the pipeline never works on an answer nobody
// is waiting for, and shutdown is a drain — stop accepting, finish what
// is in flight, cancel only the stragglers that outlive the drain budget.
//
// Protocol summary (details in the README's Overload protection section):
//
//	POST /query  {"question": "...", "priority": "interactive|batch"}
//	POST /batch  {"questions": ["...", ...], "priority": "..."}
//
// The X-Deadline-Ms request header carries the client's remaining budget;
// it becomes the request context's deadline (capped by MaxTimeout).
// Overload answers are honest: 429 for a rate-limited client, 503 with
// Retry-After and X-Shed-Reason when admission sheds or the server is
// draining, 504 when the deadline expired mid-pipeline, 422 when every
// engine declined the question.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/session"
	"nlidb/internal/shard"
)

// Mux combines the query API with the observability suite on one
// http.ServeMux: POST /query and /batch go through the Server (and its
// drain barrier), everything else — /metrics, /debug/vars, /debug/pprof,
// /slowlog, plus whatever the options mount (/fleet, /slo, /trace) —
// through the obs handler. The obs routes deliberately bypass the drain
// barrier: a draining server must stay observable, so scrapes and debug
// reads keep answering while query traffic is shed.
func Mux(api *Server, reg *obs.Registry, slow *obs.SlowLog, opts ...obs.HandlerOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/query", api)
	mux.Handle("/batch", api)
	mux.Handle("/session", api)
	mux.Handle("/session/ask", api)
	mux.Handle("/internal/query", api)
	mux.Handle("/healthz", api)
	mux.Handle("/", obs.Handler(reg, slow, opts...))
	return mux
}

// Metric family names the server publishes when Config.Metrics is set.
const (
	// MetricHTTPRequests counts finished requests by route and status code.
	MetricHTTPRequests = "nlidb_http_requests_total"
	// MetricHTTPSeconds is the request latency histogram by route.
	MetricHTTPSeconds = "nlidb_http_request_seconds"
	// MetricHTTPInFlight gauges requests currently inside a handler.
	MetricHTTPInFlight = "nlidb_http_inflight"
)

// Backend answers questions: a single resilient.Gateway or a
// shard.Cluster fronting many of them. Both satisfy it natively.
type Backend interface {
	Ask(ctx context.Context, question string) (*resilient.Answer, error)
	ServeBatch(ctx context.Context, questions []string) []resilient.BatchResult
}

// Config tunes a Server. One of Backend or Gateway is required;
// everything else has a serviceable default.
type Config struct {
	// Backend serves the questions. Takes precedence over Gateway.
	Backend Backend
	// Gateway serves the questions when Backend is nil. Kept as a
	// dedicated field so single-engine callers need no wrapping.
	Gateway *resilient.Gateway
	// Admission gates every request (nil = a default Controller wired to
	// Metrics).
	Admission *admission.Controller
	// RateLimit, when non-nil, is consulted per client before admission.
	RateLimit *admission.RateLimiter
	// Sessions, when non-nil, enables the conversational /session API.
	Sessions *session.Store
	// SessionRateLimit, when non-nil, bounds each conversation's turn
	// rate, layered on the per-client RateLimit. Wire its Forget into the
	// store's OnEvict so ended sessions release their buckets.
	SessionRateLimit *admission.RateLimiter
	// Metrics, when non-nil, receives the server's request counters,
	// latency histograms, and in-flight gauge.
	Metrics *obs.Registry
	// SLO, when non-nil, receives every finished question's latency and
	// availability verdict. This is the one place both signals meet:
	// Partial scatter answers and shard-down refusals count against
	// availability here even though the client saw a 200 or got honest
	// retry advice.
	SLO *obs.SLO
	// DefaultTimeout is the per-request deadline applied when the client
	// sends no X-Deadline-Ms header (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested deadline (default 30s).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// HealthSQL is the probe statement GET /healthz?deep=1 executes
	// through the backend: proof the whole pipeline answers, not just
	// that the process holds the port. Empty disables deep mode.
	HealthSQL string
	// ShardEpoch, when non-zero, declares the shard map epoch this node
	// was configured under: /internal/query requests stamped with a
	// different X-Shard-Epoch are refused typed (409) instead of being
	// answered for a partition this node may no longer own. ShardIndex
	// names the partition served (reported on /healthz).
	ShardEpoch int64
	ShardIndex int
	// DrainClassifier assigns each request a DrainClass (nil: every
	// route gets DrainSweep except /internal/query, which gets
	// DrainOwnDeadline — a coordinator's scatter leg carries a deadline
	// budgeted upstream, and cutting it short at the global drain
	// timeout would turn an answerable leg into a spurious failure).
	DrainClassifier func(*http.Request) DrainClass
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// DrainClass selects how an in-flight request behaves when a drain
// overruns its budget.
type DrainClass int

const (
	// DrainSweep requests are cancelled when Drain's timeout overruns —
	// the default: interactive callers would rather retry elsewhere.
	DrainSweep DrainClass = iota
	// DrainOwnDeadline requests keep the remainder of their own
	// X-Deadline-Ms budget through a drain overrun; Drain waits for
	// them. Requests in this class without an explicit X-Deadline-Ms
	// fall back to DrainSweep — an unbounded straggler must not be able
	// to hold shutdown hostage for the whole DefaultTimeout.
	DrainOwnDeadline
)

// Server is an http.Handler exposing the gateway with overload
// protection. Safe for concurrent use.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// baseCtx is alive until a drain overruns its budget; cancelling it
	// sweeps every straggler's request context.
	baseCtx          context.Context
	cancelStragglers context.CancelFunc

	mu       sync.Mutex
	inflight int
	idle     chan struct{} // non-nil only while a drain waits for inflight==0
	draining bool
}

// New builds a Server. Config zero values are filled with defaults; a nil
// Admission controller gets a default one sharing Config.Metrics.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		if cfg.Gateway == nil {
			panic("server: Config.Backend (or Config.Gateway) is required")
		}
		cfg.Backend = cfg.Gateway
	}
	if cfg.Admission == nil {
		cfg.Admission = admission.New(admission.Config{Metrics: cfg.Metrics})
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, baseCtx: base, cancelStragglers: cancel}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.instrument("/query", s.handleQuery))
	s.mux.HandleFunc("/batch", s.instrument("/batch", s.handleBatch))
	s.mux.HandleFunc("/session", s.instrument("/session", s.handleSession))
	s.mux.HandleFunc("/session/ask", s.instrument("/session/ask", s.handleSessionAsk))
	s.mux.HandleFunc("/internal/query", s.instrument("/internal/query", s.handleInternalQuery))
	// /healthz deliberately skips the instrument drain barrier: a
	// draining server must keep answering probes (with a 503 and an
	// honest "draining" status) so supervisors and LBs see the state
	// change instead of a connection that vanished.
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if m := cfg.Metrics; m != nil {
		m.Gauge(MetricHTTPInFlight).Set(0)
		routes := []string{"/query", "/batch", "/internal/query"}
		if cfg.Sessions != nil {
			routes = append(routes, "/session", "/session/ask")
		}
		for _, route := range routes {
			m.Counter(MetricHTTPRequests, "route", route, "code", "200")
			m.Histogram(MetricHTTPSeconds, "route", route)
		}
	}
	return s
}

// Admission exposes the server's admission controller (for stats, tests,
// and the drain log line).
func (s *Server) Admission() *admission.Controller { return s.cfg.Admission }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with in-flight tracking (the drain barrier)
// and, when metrics are on, the request counter and latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			// Draining: refuse before any work, with honest retry advice.
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Admission.RetryAfterHint()))
			w.Header().Set("X-Shed-Reason", "draining")
			writeError(w, http.StatusServiceUnavailable, "server draining")
			return
		}
		defer s.exit()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		if m := s.cfg.Metrics; m != nil {
			m.Counter(MetricHTTPRequests, "route", route, "code", strconv.Itoa(rec.code)).Inc()
			m.Histogram(MetricHTTPSeconds, "route", route).Observe(time.Since(start).Seconds())
		}
	}
}

// enter books one in-flight request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	if m := s.cfg.Metrics; m != nil {
		m.Gauge(MetricHTTPInFlight).Set(int64(s.inflight))
	}
	return true
}

// exit releases the in-flight slot and wakes a waiting drain at zero.
func (s *Server) exit() {
	s.mu.Lock()
	s.inflight--
	if m := s.cfg.Metrics; m != nil {
		m.Gauge(MetricHTTPInFlight).Set(int64(s.inflight))
	}
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// InFlight reports the number of requests currently inside handlers.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Drain performs graceful shutdown of the serving layer: new requests are
// refused with 503 (and queued admission waiters flushed), requests
// already in flight get up to timeout to finish, and any stragglers still
// running after that are cancelled through their request contexts — then
// Drain waits for them to unwind. Returns true when everything finished
// within the budget, false when stragglers had to be cancelled.
// Idempotent; concurrent calls all block until the drain completes.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.cfg.Admission.StartDrain()
	if s.inflight == 0 {
		s.mu.Unlock()
		return true
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-idle:
		return true
	case <-t.C:
		// Budget overrun: sweep every straggler's context and wait for the
		// handlers to unwind (the pipeline honors cancellation, so this is
		// prompt).
		s.cancelStragglers()
		<-idle
		return false
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// requestContext derives the handler context: the client's X-Deadline-Ms
// budget (capped at MaxTimeout, defaulted to DefaultTimeout) on top of
// the request context. DrainSweep requests are additionally cancelled
// when a drain overruns and sweeps stragglers; DrainOwnDeadline requests
// with an explicit client deadline keep the remainder of it instead.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	explicit := false
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid X-Deadline-Ms %q: want a positive integer of milliseconds", h)
		}
		// Compare in milliseconds: time.Duration(ms)*time.Millisecond
		// overflows int64 for huge budgets, and a negative duration would
		// yield an already-expired context (a confusing 504) instead of
		// the cap.
		if ms > int64(s.cfg.MaxTimeout/time.Millisecond) {
			d = s.cfg.MaxTimeout
		} else {
			d = time.Duration(ms) * time.Millisecond
		}
		explicit = true
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	if explicit && s.drainClass(r) == DrainOwnDeadline {
		// No straggler sweep: this request runs out its own (bounded,
		// explicit) budget even if a drain overruns around it; Drain's
		// final wait covers it.
		return ctx, cancel, nil
	}
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

// drainClass resolves a request's drain class via the configured
// classifier, defaulting coordinator scatter legs to DrainOwnDeadline.
func (s *Server) drainClass(r *http.Request) DrainClass {
	if s.cfg.DrainClassifier != nil {
		return s.cfg.DrainClassifier(r)
	}
	if r.URL.Path == "/internal/query" {
		return DrainOwnDeadline
	}
	return DrainSweep
}

// clientID identifies the caller for rate limiting: the X-Client header
// when present (trusted deployments put an API key or user id there),
// otherwise the remote IP.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// gate runs the pre-pipeline checks shared by both routes: method, rate
// limit, then admission. On success the returned release frees the
// admission slot (call it exactly once). On failure gate has already
// written the response and returns ok=false.
func (s *Server) gate(w http.ResponseWriter, r *http.Request, ctx context.Context, class admission.Priority) (release func(), ok bool) {
	if rl := s.cfg.RateLimit; rl != nil {
		if allowed, retry := rl.Allow(clientID(r)); !allowed {
			if m := s.cfg.Metrics; m != nil {
				m.Counter(admission.MetricShed, "reason", "rate_limit").Inc()
			}
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			w.Header().Set("X-Shed-Reason", "rate_limit")
			writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return nil, false
		}
	}
	release, err := s.cfg.Admission.Acquire(ctx, class)
	if err != nil {
		reason := "canceled"
		switch {
		case errors.Is(err, admission.ErrQueueFull):
			reason = "queue_full"
		case errors.Is(err, admission.ErrDeadline):
			reason = "deadline"
		case errors.Is(err, admission.ErrDraining):
			reason = "draining"
		}
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Admission.RetryAfterHint()))
		w.Header().Set("X-Shed-Reason", reason)
		writeError(w, http.StatusServiceUnavailable, "overloaded: "+err.Error())
		return nil, false
	}
	return release, true
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Question string `json:"question"`
	Priority string `json:"priority,omitempty"`
}

// queryResponse is the POST /query success body.
type queryResponse struct {
	Engine     string     `json:"engine"`
	SQL        string     `json:"sql"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Score      float64    `json:"score"`
	Cached     bool       `json:"cached,omitempty"`
	Simplified bool       `json:"simplified,omitempty"`
	// Partial marks an answer assembled without every shard: correct for
	// the reachable data, incomplete overall. MissingShards lists the
	// shard indexes that did not contribute.
	Partial       bool    `json:"partial,omitempty"`
	MissingShards []int   `json:"missing_shards,omitempty"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	// TraceID names the request's distributed trace; when the trace was
	// retained as an exemplar, GET /trace?id=<TraceID> renders it.
	TraceID string `json:"trace_id,omitempty"`
}

func toQueryResponse(ans *resilient.Answer) queryResponse {
	resp := queryResponse{
		Engine:        ans.Engine,
		SQL:           ans.SQL.String(),
		Columns:       ans.Result.Columns,
		Rows:          make([][]string, len(ans.Result.Rows)),
		Score:         ans.Score,
		Cached:        ans.Cached,
		Simplified:    ans.Simplified,
		Partial:       ans.Partial,
		MissingShards: ans.MissingShards,
		ElapsedMs:     float64(ans.Elapsed) / float64(time.Millisecond),
	}
	if ans.Trace != nil {
		resp.TraceID = string(ans.Trace.ID)
	}
	for i, row := range ans.Result.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		resp.Rows[i] = cells
	}
	return resp
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, "question is required")
		return
	}
	class, err := admission.ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()

	release, ok := s.gate(w, r, ctx, class)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	ans, err := s.cfg.Backend.Ask(ctx, req.Question)
	s.observeSLO(time.Since(start), ans, err)
	if err != nil {
		s.writeAskError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, toQueryResponse(ans))
}

// observeSLO folds one finished question into the SLO engine. The
// availability verdict is stricter than the HTTP status: a Partial
// scatter answer is a 200 to the client but an availability miss here,
// and so are shard-down refusals, timeouts, cancellations, and internal
// errors. Semantic refusals — the chain honestly declined the question
// (ErrExhausted) or its shape cannot be distributed — are full answers
// about the question, not service failures, and stay available.
func (s *Server) observeSLO(elapsed time.Duration, ans *resilient.Answer, err error) {
	if s.cfg.SLO == nil {
		return
	}
	available := err == nil && (ans == nil || !ans.Partial)
	if err != nil &&
		(errors.Is(err, resilient.ErrExhausted) || errors.Is(err, shard.ErrNotDistributable)) &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		available = true
	}
	s.cfg.SLO.Observe(elapsed, available)
}

// batchRequest is the POST /batch body. Batch priority is the default:
// a batch is throughput traffic unless the caller says otherwise.
type batchRequest struct {
	Questions []string `json:"questions"`
	Priority  string   `json:"priority,omitempty"`
}

// batchItem is one element of the POST /batch response. Shed marks a
// question the pipeline never started (safe to retry as-is).
type batchItem struct {
	Index    int            `json:"index"`
	Question string         `json:"question"`
	Answer   *queryResponse `json:"answer,omitempty"`
	Error    string         `json:"error,omitempty"`
	Shed     bool           `json:"shed,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Questions) == 0 {
		writeError(w, http.StatusBadRequest, "questions is required")
		return
	}
	class := admission.Batch
	if req.Priority != "" {
		var err error
		if class, err = admission.ParsePriority(req.Priority); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()

	// One admission slot per batch: the batch's internal worker pool is the
	// gateway's concern; admission prices the batch as one unit of load in
	// the class that sheds first.
	release, ok := s.gate(w, r, ctx, class)
	if !ok {
		return
	}
	defer release()

	results := s.cfg.Backend.ServeBatch(ctx, req.Questions)
	items := make([]batchItem, len(results))
	for i, res := range results {
		item := batchItem{Index: res.Index, Question: res.Question}
		var itemElapsed time.Duration
		if res.Answer != nil {
			itemElapsed = res.Answer.Elapsed
		}
		s.observeSLO(itemElapsed, res.Answer, res.Err)
		if res.Err != nil {
			item.Error = res.Err.Error()
			item.Shed = errors.Is(res.Err, resilient.ErrShed)
		} else {
			resp := toQueryResponse(res.Answer)
			item.Answer = &resp
		}
		items[i] = item
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

// writeAskError maps a backend failure to an honest status code: the
// deadline died (504), the work was cancelled out from under us (503 —
// retry elsewhere), no engine could answer or the query shape cannot be
// distributed (422 — retrying the same question is pointless), every
// replica of the owning shard is down (503 — retry after the probe
// window), anything else is a 500. The request context is consulted too:
// a chain exhausted *because* the deadline expired mid-attempt is a
// timeout, not an unanswerable question.
func (s *Server) writeAskError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Admission.RetryAfterHint()))
		writeError(w, http.StatusServiceUnavailable, "canceled: "+err.Error())
	case errors.Is(err, shard.ErrShardDown):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Admission.RetryAfterHint()))
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, resilient.ErrExhausted) || errors.Is(err, shard.ErrNotDistributable):
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
