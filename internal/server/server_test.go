package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// fakeInterp is a scriptable interpreter for server tests.
type fakeInterp struct {
	name string
	fn   func(q string) ([]nlq.Interpretation, error)
}

func (f *fakeInterp) Name() string                                     { return f.name }
func (f *fakeInterp) Interpret(q string) ([]nlq.Interpretation, error) { return f.fn(q) }

func answering(name, sql string) *fakeInterp {
	return &fakeInterp{name: name, fn: func(q string) ([]nlq.Interpretation, error) {
		return []nlq.Interpretation{{SQL: sqlparse.MustParse(sql), Score: 0.9}}, nil
	}}
}

// testDB builds the tiny customers table the fake interpreters query.
func testDB(t *testing.T) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("test")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "customer", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range [][2]string{{"ann", "Berlin"}, {"bob", "Munich"}, {"carol", "Berlin"}} {
		tbl.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(row[0]), sqldata.NewText(row[1]))
	}
	return db
}

// post sends a JSON body to the server and returns the recorder.
func post(s *Server, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.RemoteAddr = "192.0.2.1:4242"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// promText renders the registry in Prometheus text format.
func promText(reg *obs.Registry) string {
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	return sb.String()
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON response %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestQueryEndToEnd(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")}, resilient.Config{})
	s := New(Config{Gateway: gw})

	rec := post(s, "/query", `{"question": "customers in Berlin"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	resp := decode[queryResponse](t, rec)
	if resp.Engine != "a" || len(resp.Rows) != 2 || len(resp.Columns) != 1 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.SQL == "" || resp.ElapsedMs < 0 {
		t.Fatalf("missing sql/elapsed: %+v", resp)
	}
}

func TestQueryRejectsBadRequests(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Gateway: gw})

	for name, tc := range map[string]struct {
		path, body string
		hdr        map[string]string
		want       int
	}{
		"empty question":  {"/query", `{"question": ""}`, nil, http.StatusBadRequest},
		"bad json":        {"/query", `{`, nil, http.StatusBadRequest},
		"bad priority":    {"/query", `{"question": "x", "priority": "vip"}`, nil, http.StatusBadRequest},
		"bad deadline":    {"/query", `{"question": "x"}`, map[string]string{"X-Deadline-Ms": "soon"}, http.StatusBadRequest},
		"empty batch":     {"/batch", `{"questions": []}`, nil, http.StatusBadRequest},
		"get not allowed": {"/query", "", nil, http.StatusMethodNotAllowed},
	} {
		var rec *httptest.ResponseRecorder
		if name == "get not allowed" {
			req := httptest.NewRequest(http.MethodGet, tc.path, nil)
			rec = httptest.NewRecorder()
			s.ServeHTTP(rec, req)
		} else {
			rec = post(s, tc.path, tc.body, tc.hdr)
		}
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", name, rec.Code, tc.want, rec.Body)
		}
	}
}

// TestDeadlineHeaderPropagates pins client deadline propagation: a tight
// X-Deadline-Ms budget must cut the pipeline short and come back 504 —
// long before the engine's injected slowness would have finished.
func TestDeadlineHeaderPropagates(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("slow", "SELECT name FROM customer")}, resilient.Config{
		NoRetry: true,
		Hook: func(site resilient.Site, engine string) resilient.Fault {
			if site == resilient.SiteExecute {
				return resilient.Fault{Delay: 5 * time.Second}
			}
			return resilient.Fault{}
		},
	})
	s := New(Config{Gateway: gw})

	start := time.Now()
	rec := post(s, "/query", `{"question": "customers"}`, map[string]string{"X-Deadline-Ms": "50"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("50ms deadline took %v to enforce", elapsed)
	}
}

// TestDeadlineHeaderEdgeCases pins the X-Deadline-Ms validation
// boundary: non-positive and malformed budgets are 400s with a clear
// message, while a huge budget must clamp to MaxTimeout rather than
// overflow time.Duration into an already-expired context (which
// surfaced as a baffling 504 on an instant query).
func TestDeadlineHeaderEdgeCases(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Gateway: gw})

	for _, h := range []string{"0", "-100", "soon", "1e9"} {
		rec := post(s, "/query", `{"question": "customers"}`, map[string]string{"X-Deadline-Ms": h})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms %q: status %d, want 400 (body %s)", h, rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "X-Deadline-Ms") {
			t.Errorf("X-Deadline-Ms %q: error does not name the header: %s", h, rec.Body)
		}
	}

	// MaxInt64 milliseconds overflows time.Duration; it must behave like
	// any over-cap budget and answer instantly.
	rec := post(s, "/query", `{"question": "customers"}`, map[string]string{"X-Deadline-Ms": "9223372036854775807"})
	if rec.Code != http.StatusOK {
		t.Fatalf("huge deadline: status %d, want 200 (body %s)", rec.Code, rec.Body)
	}
}

func TestRateLimitPerClient(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	reg := obs.NewRegistry()
	s := New(Config{
		Gateway:   gw,
		Metrics:   reg,
		RateLimit: admission.NewRateLimiter(admission.RateConfig{RPS: 0.001, Burst: 1}),
	})

	alice := map[string]string{"X-Client": "alice"}
	if rec := post(s, "/query", `{"question": "customers"}`, alice); rec.Code != http.StatusOK {
		t.Fatalf("first request: status %d (body %s)", rec.Code, rec.Body)
	}
	rec := post(s, "/query", `{"question": "customers"}`, alice)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" || rec.Header().Get("X-Shed-Reason") != "rate_limit" {
		t.Fatalf("429 missing retry advice: headers %v", rec.Header())
	}
	// A different client is unaffected.
	if rec := post(s, "/query", `{"question": "customers"}`, map[string]string{"X-Client": "bob"}); rec.Code != http.StatusOK {
		t.Fatalf("other client: status %d", rec.Code)
	}
	if text := promText(reg); !strings.Contains(text, `nlidb_admission_shed_total{reason="rate_limit"} 1`) {
		t.Fatalf("rate_limit shed not counted:\n%s", text)
	}
}

// parkedServer builds a server whose interpreter parks every pipeline run
// until release is closed (or the request context dies), over a
// 1-slot/1-queue admission controller — the smallest saturable system.
func parkedServer(t *testing.T, extra Config) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	db := testDB(t)
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	eng := &fakeInterp{name: "parked", fn: func(q string) ([]nlq.Interpretation, error) {
		started <- struct{}{}
		<-release
		return []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT name FROM customer"), Score: 0.9}}, nil
	}}
	gw := resilient.New(db, []nlq.Interpreter{eng}, resilient.Config{NoRetry: true})
	cfg := extra
	cfg.Gateway = gw
	if cfg.Admission == nil {
		cfg.Admission = admission.New(admission.Config{
			MaxInFlight: 1, MaxQueue: 1, BatchQueue: 1, NoAdapt: true, Metrics: cfg.Metrics,
		})
	}
	return New(cfg), started, release
}

// TestOverloadSheds503WithRetryAfter saturates the 1-slot controller and
// asserts the honest rejection: 503, Retry-After, X-Shed-Reason.
func TestOverloadSheds503WithRetryAfter(t *testing.T) {
	s, started, release := parkedServer(t, Config{})

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(s, "/query", `{"question": "customers"}`, nil)
			codes[i] = rec.Code
		}(i)
	}
	<-started // one request holds the slot; the other is queued or about to be
	// Wait until the second request is actually queued behind the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Admission().Stats().Queued[admission.Interactive] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Queue full: the third concurrent request is shed immediately.
	rec := post(s, "/query", `{"question": "customers"}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := rec.Header().Get("X-Shed-Reason"); got != "queue_full" {
		t.Fatalf("X-Shed-Reason %q, want queue_full", got)
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d finished %d, want 200 after release", i, code)
		}
	}
}

// TestDrainFinishesInFlight is the graceful half of drain: the in-flight
// request completes with 200, new requests get 503 + Retry-After, and
// Drain returns true (no stragglers cancelled).
func TestDrainFinishesInFlight(t *testing.T) {
	s, started, release := parkedServer(t, Config{})

	var inflightCode int
	done := make(chan struct{})
	go func() {
		defer close(done)
		inflightCode = post(s, "/query", `{"question": "customers"}`, nil).Code
	}()
	<-started

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(10 * time.Second) }()
	// The drain flips refusal on before it waits; poll until visible.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// New work is refused while the drain waits.
	rec := post(s, "/query", `{"question": "customers"}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" || rec.Header().Get("X-Shed-Reason") != "draining" {
		t.Fatalf("draining 503 missing advice: %v", rec.Header())
	}

	// The in-flight request finishes normally.
	close(release)
	<-done
	if inflightCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", inflightCode)
	}
	if !<-drained {
		t.Fatal("drain reported stragglers despite the in-flight request finishing in time")
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight count %d after drain", s.InFlight())
	}
}

// TestDrainTimeoutCancelsStragglers is the forceful half: a request that
// outlives the drain budget is cancelled through its context, the drain
// returns false, and the handler still unwinds with an error response.
func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	db := testDB(t)
	started := make(chan struct{}, 4)
	// The straggler: an hour-long injected stall at the execute site. The
	// guard's delay honors the request context, so the drain's straggler
	// sweep — which cancels exactly that context — is the only way out.
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{
		NoRetry: true,
		Hook: func(site resilient.Site, engine string) resilient.Fault {
			if site == resilient.SiteExecute {
				select {
				case started <- struct{}{}:
				default:
				}
				return resilient.Fault{Delay: time.Hour}
			}
			return resilient.Fault{}
		},
	})
	s := New(Config{Gateway: gw})

	code := make(chan int, 1)
	go func() {
		code <- post(s, "/query", `{"question": "customers"}`, nil).Code
	}()
	<-started

	start := time.Now()
	if s.Drain(50 * time.Millisecond) {
		t.Fatal("drain reported clean finish; the straggler cannot have finished")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain with a 50ms budget took %v", elapsed)
	}
	// The handler unwound with an error (the context died under it).
	if c := <-code; c == http.StatusOK {
		t.Fatalf("cancelled straggler answered %d, want an error status", c)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight count %d after forced drain", s.InFlight())
	}
}

// TestDrainIdempotentWhenIdle covers the trivial path: draining an idle
// server finishes immediately and stays drained.
func TestDrainIdempotentWhenIdle(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Gateway: gw})
	if !s.Drain(time.Second) {
		t.Fatal("idle drain must finish cleanly")
	}
	if !s.Drain(time.Second) {
		t.Fatal("second drain must remain clean")
	}
	if rec := post(s, "/query", `{"question": "customers"}`, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained server answered %d, want 503", rec.Code)
	}
}

// TestBatchEndToEndAndShedMarking runs a batch whose deadline expires
// midway: early questions answer, the unserved tail is marked shed so the
// caller can retry exactly those.
func TestBatchEndToEndAndShedMarking(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{
		NoRetry: true,
		Workers: 1,
		Hook: func(site resilient.Site, engine string) resilient.Fault {
			if site == resilient.SiteExecute {
				return resilient.Fault{Delay: 30 * time.Millisecond}
			}
			return resilient.Fault{}
		},
	})
	s := New(Config{Gateway: gw})

	questions := make([]string, 10)
	for i := range questions {
		questions[i] = fmt.Sprintf(`"q %d"`, i)
	}
	body := fmt.Sprintf(`{"questions": [%s]}`, strings.Join(questions, ","))
	rec := post(s, "/batch", body, map[string]string{"X-Deadline-Ms": "150"})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d (body %s)", rec.Code, rec.Body)
	}
	resp := decode[struct {
		Results []batchItem `json:"results"`
	}](t, rec)
	if len(resp.Results) != 10 {
		t.Fatalf("%d results, want 10", len(resp.Results))
	}
	answered, shed := 0, 0
	for _, item := range resp.Results {
		switch {
		case item.Answer != nil:
			answered++
		case item.Shed:
			shed++
		}
	}
	if answered == 0 {
		t.Fatalf("no question answered before the deadline: %+v", resp.Results)
	}
	if shed == 0 {
		t.Fatalf("deadline expiry left no shed items (answered=%d): %+v", answered, resp.Results)
	}
}

// TestBatchDefaultsToBatchPriority pins that /batch traffic lands in the
// batch admission class (the one that sheds first) unless overridden.
func TestBatchDefaultsToBatchPriority(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	ctrl := admission.New(admission.Config{MaxInFlight: 4, NoAdapt: true})
	s := New(Config{Gateway: gw, Admission: ctrl})
	if rec := post(s, "/batch", `{"questions": ["customers"]}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("batch status %d (body %s)", rec.Code, rec.Body)
	}
	st := ctrl.Stats()
	if st.Admitted != 1 {
		t.Fatalf("admitted %d, want 1", st.Admitted)
	}
}

// TestHTTPMetricsRecorded spot-checks the server's own metric families.
func TestHTTPMetricsRecorded(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	reg := obs.NewRegistry()
	s := New(Config{Gateway: gw, Metrics: reg})
	post(s, "/query", `{"question": "customers"}`, nil)
	text := promText(reg)
	for _, want := range []string{
		`nlidb_http_requests_total{code="200",route="/query"} 1`,
		"nlidb_http_request_seconds",
		"nlidb_http_inflight 0",
		"nlidb_admission_inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
