package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/session"
)

// Session API protocol:
//
//	POST   /session              → 200 {"session_id": "...", "ttl_ms": N}
//	POST   /session/ask          {"utterance": "..."} + X-Session-ID header
//	DELETE /session              + X-Session-ID header → 204
//
// The session ID travels in the X-Session-ID header (create echoes it
// there too; /session/ask also accepts a session_id body field for
// clients that cannot set headers). An unknown ID is a 404; an ID that
// existed but expired, was evicted, or was ended is a 410 Gone — the
// client must open a new session and rebuild context. Turns pass the
// same rate-limit + admission gate as stateless queries, plus a
// per-session token bucket so one runaway conversation cannot starve
// the rest of a client's traffic.

// sessionCreateResponse is the POST /session success body.
type sessionCreateResponse struct {
	SessionID string `json:"session_id"`
	TTLMs     int64  `json:"ttl_ms"`
}

// sessionAskRequest is the POST /session/ask body.
type sessionAskRequest struct {
	Utterance string `json:"utterance"`
	SessionID string `json:"session_id,omitempty"`
	Priority  string `json:"priority,omitempty"`
}

// sessionAskResponse is the POST /session/ask success body: the resolved
// turn plus the standard query-answer surface (absent for conversational
// turns like greetings that execute nothing).
type sessionAskResponse struct {
	SessionID string `json:"session_id"`
	Turn      int    `json:"turn"`
	Intent    string `json:"intent"`
	// ContextResolved marks a turn that resolved against tracked dialogue
	// context (a follow-up), as opposed to a self-contained question.
	ContextResolved bool   `json:"context_resolved"`
	Cached          bool   `json:"cached,omitempty"`
	Message         string `json:"message,omitempty"`

	Engine    string     `json:"engine,omitempty"`
	SQL       string     `json:"sql,omitempty"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	ElapsedMs float64    `json:"elapsed_ms"`
	TraceID   string     `json:"trace_id,omitempty"`
}

// handleSession serves POST /session (create) and DELETE /session (end).
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Sessions
	if st == nil {
		writeError(w, http.StatusNotImplemented, "conversational serving not enabled")
		return
	}
	switch r.Method {
	case http.MethodPost:
		id := st.Create()
		w.Header().Set("X-Session-ID", id)
		writeJSON(w, http.StatusOK, sessionCreateResponse{
			SessionID: id,
			TTLMs:     int64(st.TTL() / time.Millisecond),
		})
	case http.MethodDelete:
		id := r.Header.Get("X-Session-ID")
		if id == "" {
			writeError(w, http.StatusBadRequest, "X-Session-ID header is required")
			return
		}
		if err := st.End(id); err != nil {
			s.writeSessionError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "POST or DELETE only")
	}
}

// handleSessionAsk serves one conversational turn.
func (s *Server) handleSessionAsk(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Sessions
	if st == nil {
		writeError(w, http.StatusNotImplemented, "conversational serving not enabled")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req sessionAskRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	id := r.Header.Get("X-Session-ID")
	if id == "" {
		id = req.SessionID
	}
	if id == "" {
		writeError(w, http.StatusBadRequest, "X-Session-ID header (or session_id field) is required")
		return
	}
	if req.Utterance == "" {
		writeError(w, http.StatusBadRequest, "utterance is required")
		return
	}
	class := admission.Interactive
	if req.Priority != "" {
		var err error
		if class, err = admission.ParsePriority(req.Priority); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	// The per-session bucket layers on the per-client one inside gate:
	// X-Client bounds a caller's total traffic, this bounds one
	// conversation's share of it.
	if rl := s.cfg.SessionRateLimit; rl != nil {
		if allowed, retry := rl.Allow(id); !allowed {
			if m := s.cfg.Metrics; m != nil {
				m.Counter(admission.MetricShed, "reason", "session_rate_limit").Inc()
			}
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			w.Header().Set("X-Shed-Reason", "session_rate_limit")
			writeError(w, http.StatusTooManyRequests, "session rate limit exceeded")
			return
		}
	}

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()

	release, ok := s.gate(w, r, ctx, class)
	if !ok {
		return
	}
	defer release()

	turn, err := st.Ask(ctx, id, req.Utterance)
	if turn != nil {
		s.observeSLO(turn.Elapsed, turn.Resp.Answer, err)
	}
	if err != nil {
		if errors.Is(err, session.ErrNotFound) || errors.Is(err, session.ErrExpired) {
			s.writeSessionError(w, err)
			return
		}
		// The turn reached the pipeline and failed there; answer like
		// /query would, so clients share error handling across modes.
		s.writeAskError(w, ctx, err)
		return
	}

	resp := sessionAskResponse{
		SessionID:       id,
		Turn:            turn.N,
		Intent:          turn.Intent.String(),
		ContextResolved: turn.ContextFP != 0,
		Cached:          turn.Cached,
		Message:         turn.Resp.Message,
		ElapsedMs:       float64(turn.Elapsed) / float64(time.Millisecond),
		TraceID:         string(turn.TraceID),
	}
	if turn.Resp.SQL != nil {
		resp.SQL = turn.Resp.SQL.String()
	}
	if a := turn.Resp.Answer; a != nil {
		resp.Engine = a.Engine
	}
	if res := turn.Resp.Result; res != nil {
		resp.Columns = res.Columns
		resp.Rows = make([][]string, len(res.Rows))
		for i, row := range res.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			resp.Rows[i] = cells
		}
	}
	w.Header().Set("X-Session-ID", id)
	writeJSON(w, http.StatusOK, resp)
}

// writeSessionError maps store lookups onto the documented statuses: 404
// for an ID never issued, 410 Gone for one that expired, was evicted, or
// was ended.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown session")
	case errors.Is(err, session.ErrExpired):
		writeError(w, http.StatusGone, "session expired or ended; create a new one")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
