package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/session"
)

// sessionServer builds a server with conversational serving enabled over
// the tiny test database: the fake interpreter answers the Berlin query,
// follow-ups resolve through the real dialogue machinery.
func sessionServer(t *testing.T) (*Server, *session.Store) {
	t.Helper()
	db := testDB(t)
	lex := lexicon.New()
	interp := answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")
	exec := resilient.New(db, []nlq.Interpreter{interp}, resilient.Config{NoTrace: true})
	st, err := session.New(session.Config{
		Responder: dialogue.NewAgent(db, interp, lex, exec),
		DB:        db,
		NoTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Gateway: exec, Sessions: st}
	return New(cfg), st
}

// do sends a request with the given method, echoing post()'s conventions.
func do(s *Server, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.RemoteAddr = "192.0.2.1:4242"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestSessionCreateAskFollowUpEnd(t *testing.T) {
	s, _ := sessionServer(t)

	rec := post(s, "/session", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	created := decode[sessionCreateResponse](t, rec)
	if created.SessionID == "" || created.TTLMs <= 0 {
		t.Fatalf("create response %+v", created)
	}
	if rec.Header().Get("X-Session-ID") != created.SessionID {
		t.Fatal("create did not echo X-Session-ID")
	}
	hdr := map[string]string{"X-Session-ID": created.SessionID}

	rec = post(s, "/session/ask", `{"utterance": "customers in Berlin"}`, hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask: %d %s", rec.Code, rec.Body)
	}
	turn1 := decode[sessionAskResponse](t, rec)
	if turn1.Turn != 1 || turn1.ContextResolved || len(turn1.Rows) != 2 {
		t.Fatalf("turn 1: %+v", turn1)
	}
	if rec.Header().Get("X-Session-ID") != created.SessionID {
		t.Fatal("ask did not echo X-Session-ID")
	}

	rec = post(s, "/session/ask", `{"utterance": "how many are there"}`, hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up: %d %s", rec.Code, rec.Body)
	}
	turn2 := decode[sessionAskResponse](t, rec)
	if turn2.Turn != 2 || !turn2.ContextResolved || turn2.Intent != "aggregate" {
		t.Fatalf("turn 2: %+v", turn2)
	}
	if len(turn2.Rows) != 1 || turn2.Rows[0][0] != "2" {
		t.Fatalf("follow-up rows %v, want [[2]]", turn2.Rows)
	}

	rec = do(s, http.MethodDelete, "/session", "", hdr)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("end: %d %s", rec.Code, rec.Body)
	}
	// Asking an ended session is 410 Gone, not 404: the ID did exist.
	rec = post(s, "/session/ask", `{"utterance": "how many are there"}`, hdr)
	if rec.Code != http.StatusGone {
		t.Fatalf("ask after end: %d, want 410", rec.Code)
	}
}

func TestSessionAskBodySessionID(t *testing.T) {
	s, st := sessionServer(t)
	id := st.Create()
	rec := post(s, `/session/ask`, `{"utterance": "customers in Berlin", "session_id": "`+id+`"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("body session_id: %d %s", rec.Code, rec.Body)
	}
}

func TestSessionErrors(t *testing.T) {
	s, _ := sessionServer(t)
	hdrUnknown := map[string]string{"X-Session-ID": "deadbeefdeadbeefdeadbeefdeadbeef"}

	for name, tc := range map[string]struct {
		method, path, body string
		hdr                map[string]string
		want               int
	}{
		"unknown session ask":  {http.MethodPost, "/session/ask", `{"utterance": "x"}`, hdrUnknown, http.StatusNotFound},
		"unknown session end":  {http.MethodDelete, "/session", "", hdrUnknown, http.StatusNotFound},
		"missing id":           {http.MethodPost, "/session/ask", `{"utterance": "x"}`, nil, http.StatusBadRequest},
		"missing utterance":    {http.MethodPost, "/session/ask", `{}`, hdrUnknown, http.StatusBadRequest},
		"bad json":             {http.MethodPost, "/session/ask", `{`, hdrUnknown, http.StatusBadRequest},
		"bad priority":         {http.MethodPost, "/session/ask", `{"utterance": "x", "priority": "vip"}`, hdrUnknown, http.StatusBadRequest},
		"end without id":       {http.MethodDelete, "/session", "", nil, http.StatusBadRequest},
		"get session":          {http.MethodGet, "/session", "", nil, http.StatusMethodNotAllowed},
		"get ask":              {http.MethodGet, "/session/ask", "", nil, http.StatusMethodNotAllowed},
	} {
		rec := do(s, tc.method, tc.path, tc.body, tc.hdr)
		if rec.Code != tc.want {
			t.Errorf("%s: %d, want %d (%s)", name, rec.Code, tc.want, rec.Body)
		}
	}
}

func TestSessionDisabled(t *testing.T) {
	db := testDB(t)
	gw := resilient.New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, resilient.Config{})
	s := New(Config{Gateway: gw})
	if rec := post(s, "/session", "", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("create with sessions off: %d, want 501", rec.Code)
	}
	if rec := post(s, "/session/ask", `{"utterance": "x", "session_id": "y"}`, nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("ask with sessions off: %d, want 501", rec.Code)
	}
}

func TestSessionRateLimitSheds(t *testing.T) {
	db := testDB(t)
	lex := lexicon.New()
	interp := answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")
	exec := resilient.New(db, []nlq.Interpreter{interp}, resilient.Config{NoTrace: true})
	st, err := session.New(session.Config{
		Responder: dialogue.NewAgent(db, interp, lex, exec),
		DB:        db,
		NoTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rl := admission.NewRateLimiter(admission.RateConfig{RPS: 0.001, Burst: 1})
	s := New(Config{Gateway: exec, Sessions: st, SessionRateLimit: rl, Metrics: reg})

	id := st.Create()
	hdr := map[string]string{"X-Session-ID": id}
	if rec := post(s, "/session/ask", `{"utterance": "customers in Berlin"}`, hdr); rec.Code != http.StatusOK {
		t.Fatalf("first turn: %d %s", rec.Code, rec.Body)
	}
	rec := post(s, "/session/ask", `{"utterance": "how many are there"}`, hdr)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second turn: %d, want 429", rec.Code)
	}
	if rec.Header().Get("X-Shed-Reason") != "session_rate_limit" {
		t.Fatalf("shed reason %q", rec.Header().Get("X-Shed-Reason"))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if reg.Counter(admission.MetricShed, "reason", "session_rate_limit").Value() != 1 {
		t.Fatal("session shed not counted")
	}

	// A different session on the same server is unaffected: the bucket is
	// per conversation.
	id2 := st.Create()
	if rec := post(s, "/session/ask", `{"utterance": "customers in Berlin"}`, map[string]string{"X-Session-ID": id2}); rec.Code != http.StatusOK {
		t.Fatalf("second session throttled by the first: %d", rec.Code)
	}
}

func TestSessionExpiryIs410(t *testing.T) {
	db := testDB(t)
	lex := lexicon.New()
	interp := answering("a", "SELECT name FROM customer WHERE city = 'Berlin'")
	exec := resilient.New(db, []nlq.Interpreter{interp}, resilient.Config{NoTrace: true})
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := &clock
	st, err := session.New(session.Config{
		Responder: dialogue.NewAgent(db, interp, lex, exec),
		DB:        db,
		NoTrace:   true,
		TTL:       time.Minute,
		Now:       func() time.Time { return *now },
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Gateway: exec, Sessions: st})
	id := st.Create()
	clock = clock.Add(2 * time.Minute)
	rec := post(s, "/session/ask", `{"utterance": "customers in Berlin"}`, map[string]string{"X-Session-ID": id})
	if rec.Code != http.StatusGone {
		t.Fatalf("expired session: %d, want 410 (%s)", rec.Code, rec.Body)
	}
}
