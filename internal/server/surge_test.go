package server

// Seeded surge chaos: a burst of concurrent clients several times larger
// than the admit limit hits a server whose pipeline is misbehaving under
// fault injection (panics, errors, slowness — replayable from one seed).
// The invariants under test are the serving layer's whole contract:
// every request gets exactly one well-formed HTTP answer from the known
// status set, nothing panics through, overload is shed honestly with
// retry advice, and after the storm the server still drains clean.

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/resilient/faultinject"
)

func TestSurgeChaosUnderOverload(t *testing.T) {
	db := testDB(t)
	inj := faultinject.New(0xC0FFEE)
	inj.PanicRate = 0.05
	inj.ErrorRate = 0.10
	inj.SlowRate = 0.20
	inj.SlowBy = 2 * time.Millisecond

	reg := obs.NewRegistry()
	gw := resilient.New(db, []nlq.Interpreter{
		answering("primary", "SELECT name, city FROM customer"),
		answering("fallback", "SELECT name FROM customer"),
	}, resilient.Config{
		NoRetry:          true,
		Hook:             inj.Hook(),
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Metrics:          reg,
	})
	ctrl := admission.New(admission.Config{
		MaxInFlight: 4,
		MaxQueue:    8,
		BatchQueue:  2,
		Metrics:     reg,
	})
	s := New(Config{
		Gateway:        gw,
		Admission:      ctrl,
		Metrics:        reg,
		DefaultTimeout: 2 * time.Second,
		RateLimit:      admission.NewRateLimiter(admission.RateConfig{RPS: 500, Burst: 50}),
	})

	// 3 waves of clients, each wave several times the admit limit, mixing
	// interactive queries, batch requests, and tight client deadlines.
	const wave, waves = 24, 3
	var (
		wg       sync.WaitGroup
		statuses sync.Map // status code -> *atomic.Int64
		total    atomic.Int64
	)
	count := func(code int) {
		v, _ := statuses.LoadOrStore(code, &atomic.Int64{})
		v.(*atomic.Int64).Add(1)
		total.Add(1)
	}
	for w := 0; w < waves; w++ {
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				hdr := map[string]string{"X-Client": fmt.Sprintf("c%d", i%8)}
				var rec interface{ Result() *http.Response }
				switch i % 4 {
				case 0: // interactive query
					rec = post(s, "/query", fmt.Sprintf(`{"question": "customers wave %d %d"}`, w, i), hdr)
				case 1: // tight deadline
					hdr["X-Deadline-Ms"] = "30"
					rec = post(s, "/query", `{"question": "customers in Berlin"}`, hdr)
				case 2: // batch
					rec = post(s, "/batch", `{"questions": ["customers", "cities"]}`, hdr)
				default: // explicit batch-class single query
					rec = post(s, "/query", `{"question": "customers", "priority": "batch"}`, hdr)
				}
				res := rec.Result()
				count(res.StatusCode)
				switch res.StatusCode {
				case http.StatusOK, http.StatusGatewayTimeout,
					http.StatusUnprocessableEntity, http.StatusInternalServerError:
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					if res.Header.Get("Retry-After") == "" {
						t.Errorf("%d response without Retry-After", res.StatusCode)
					}
				default:
					t.Errorf("unexpected status %d", res.StatusCode)
				}
			}(w, i)
		}
		wg.Wait() // wave barrier: let breakers and the limit adapt between waves
	}

	if got := total.Load(); got != wave*waves {
		t.Fatalf("%d responses for %d requests; every request must be answered exactly once", got, wave*waves)
	}
	okCount := int64(0)
	if v, ok := statuses.Load(http.StatusOK); ok {
		okCount = v.(*atomic.Int64).Load()
	}
	if okCount == 0 {
		t.Fatal("surge produced zero successful answers; the fallback chain should still serve some traffic")
	}

	// The storm is over: the server must still drain clean, and the
	// admission books must balance (nothing leaked a slot).
	if !s.Drain(5 * time.Second) {
		t.Fatal("post-surge drain had to cancel stragglers")
	}
	st := ctrl.Stats()
	if st.InFlight != 0 || st.Queued[admission.Interactive] != 0 || st.Queued[admission.Batch] != 0 {
		t.Fatalf("admission books unbalanced after drain: %+v", st)
	}
	if s.InFlight() != 0 {
		t.Fatalf("http in-flight %d after drain", s.InFlight())
	}
	if counts := inj.Counts(); counts["panic"] == 0 && counts["error"] == 0 {
		t.Fatalf("chaos injected nothing (counts %v); the seed should produce faults", counts)
	}
}
