// Package session makes conversational querying a serving workload.
//
// The source paper names multi-turn dialogue — follow-ups, ellipsis,
// context tracking — as a headline open challenge for NLIDBs, and the
// dialogue managers in internal/dialogue resolve those follow-ups. What
// was missing is everything that makes a workload servable: this package
// holds thousands of live conversations behind opaque session IDs in a
// sharded store with TTL eviction and a hard memory budget (LRU under
// pressure), serializes turns within a conversation while letting
// different conversations proceed in parallel over one shared dialogue
// manager, answers repeated turns from a context-keyed cache (the same
// utterance under different dialogue context is never conflated), and
// reports itself through the standard observability surface
// (nlidb_session_* metrics, session/turn span attributes, slow-log
// session tags).
//
// All methods are safe for concurrent use.
package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/dialogue"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Metric family names the store publishes when Config.Metrics is set.
const (
	// MetricLive gauges the number of live sessions.
	MetricLive = "nlidb_session_live"
	// MetricCreated counts sessions created.
	MetricCreated = "nlidb_session_created_total"
	// MetricEnded counts sessions ended explicitly by the client.
	MetricEnded = "nlidb_session_ended_total"
	// MetricEvictions counts sessions removed by the store, labeled by
	// reason ("ttl" or "memory").
	MetricEvictions = "nlidb_session_evictions_total"
	// MetricTurns counts resolved turns, labeled by intent.
	MetricTurns = "nlidb_session_turns_total"
	// MetricFollowups counts context-dependent turns (refine, aggregate,
	// shift), labeled by resolution outcome ("resolved" or "failed").
	MetricFollowups = "nlidb_session_followups_total"
	// MetricContextHits counts turn answers served from the context-keyed
	// cache.
	MetricContextHits = "nlidb_session_context_hits_total"
	// MetricContextMisses counts context-bearing turns that had to run the
	// full resolve+execute path.
	MetricContextMisses = "nlidb_session_context_misses_total"
	// MetricTurnSeconds is the turn-latency histogram.
	MetricTurnSeconds = "nlidb_session_turn_seconds"
	// MetricMemory gauges the accounted memory cost of live sessions.
	MetricMemory = "nlidb_session_memory_bytes"
)

var (
	// ErrNotFound means the session ID was never issued (or its tombstone
	// has aged out).
	ErrNotFound = errors.New("session: not found")
	// ErrExpired means the session existed but is gone: TTL expiry, memory
	// eviction, or an explicit End. HTTP maps it to 410 Gone.
	ErrExpired = errors.New("session: expired")
)

// Responder resolves one utterance against a caller-owned conversation
// context. *dialogue.Agent and *dialogue.Frame satisfy it; the store
// serializes turns per conversation, so one shared Responder (its indexes
// immutable after construction) serves every live session.
type Responder interface {
	RespondWith(ctx context.Context, conv *dialogue.Context, utterance string) (*dialogue.Response, error)
}

// Config tunes a Store. Responder and DB are required; zero values
// elsewhere get defaults.
type Config struct {
	// Responder resolves utterances (required).
	Responder Responder
	// DB is the served database; its fingerprint keys the turn cache so
	// data mutations invalidate cached turns (required).
	DB *sqldata.Database
	// TTL is the sliding idle lifetime of a session (default 15m). Every
	// turn slides the expiry forward.
	TTL time.Duration
	// MaxSessions caps live sessions (default 65536). At the cap, the
	// least-recently-used session is evicted (reason "memory").
	MaxSessions int
	// MemoryBudget bounds the accounted memory cost of live sessions in
	// bytes (default 64 MiB). Over budget, least-recently-used sessions
	// are evicted (reason "memory").
	MemoryBudget int64
	// Shards is the lock-striping factor (default 16, minimum 1).
	Shards int
	// CacheSize is the turn cache's entry cap (default 4096; negative
	// disables the cache).
	CacheSize int
	// CacheTTL bounds turn-cache entry lifetime (0 = forever).
	CacheTTL time.Duration
	// Metrics, when non-nil, receives the nlidb_session_* families.
	Metrics *obs.Registry
	// SlowLog, when non-nil, records slow turns tagged with the session ID.
	SlowLog *obs.SlowLog
	// Traces, when non-nil, retains turn traces.
	Traces *obs.TraceStore
	// NoTrace disables per-turn trace construction.
	NoTrace bool
	// OnEvict, when non-nil, is called (outside store locks) with the ID
	// and reason ("ttl", "memory", "ended") whenever a session is removed —
	// the hook that releases per-session rate-limiter state.
	OnEvict func(id, reason string)
	// Now is the clock, injectable for TTL tests (default time.Now).
	Now func() time.Time
}

// Stats is a point-in-time view of the store.
type Stats struct {
	Live        int
	Created     int64
	Ended       int64
	EvictedTTL  int64
	EvictedMem  int64
	Turns       int64
	ContextHits int64
	Memory      int64
}

// sessionBaseCost approximates the fixed per-session overhead (maps, LRU
// node, struct, ID strings) charged against the memory budget on top of
// the tracked SQL text.
const sessionBaseCost = 512

// sess is one live conversation. The turn lock serializes utterances
// within the conversation; bookkeeping fields (expiry, LRU position,
// accounted cost) are guarded by the owning shard's lock.
type sess struct {
	id string

	mu   sync.Mutex // serializes turns
	conv *dialogue.Context

	// Guarded by the owning shard's lock:
	expires time.Time
	cost    int64
	prev    *sess
	next    *sess
	gone    bool // removed from the shard while a turn was in flight
}

// tombstoneCap bounds remembered dead-session IDs per shard, so "did this
// ID ever exist" (404 vs 410) stays answerable without unbounded growth.
const tombstoneCap = 256

// storeShard is one lock stripe: live sessions plus an intrusive LRU list
// (head = most recently used) and a bounded tombstone ring.
type storeShard struct {
	mu       sync.Mutex
	sessions map[string]*sess
	head     *sess
	tail     *sess
	mem      int64
	tombs    map[string]struct{}
	tombRing []string
	tombNext int
}

// Store holds live conversations. Build one per served database.
type Store struct {
	cfg    Config
	shards []*storeShard
	cache  *qcache.Cache

	created  obsCounter
	ended    obsCounter
	evTTL    obsCounter
	evMem    obsCounter
	turns    obsCounter
	ctxHits  obsCounter
	ctxMiss  obsCounter
	resolved obsCounter
	failed   obsCounter
}

// obsCounter is a local counter optionally mirrored to a metrics family.
type obsCounter struct {
	local atomic.Int64
	prom  *obs.Counter
}

func (c *obsCounter) inc() {
	c.local.Add(1)
	if c.prom != nil {
		c.prom.Inc()
	}
}

// New builds a session store. Config zero values are filled with defaults.
func New(cfg Config) (*Store, error) {
	if cfg.Responder == nil {
		return nil, fmt.Errorf("session: Config.Responder is required")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("session: Config.DB is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = 64 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Shards > cfg.MaxSessions {
		cfg.Shards = cfg.MaxSessions
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{cfg: cfg, shards: make([]*storeShard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &storeShard{
			sessions: map[string]*sess{},
			tombs:    map[string]struct{}{},
			tombRing: make([]string, tombstoneCap),
		}
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = 4096
		}
		// The turn cache holds session-shaped entries, so it must not be
		// the gateway's answer cache (whose entries are *resilient.Answer)
		// — and it publishes no nlidb_cache_* families of its own, to keep
		// the gateway cache's counters meaningful. Session-level counters
		// below cover it.
		s.cache = qcache.New(qcache.Config{MaxEntries: size, TTL: cfg.CacheTTL, Now: cfg.Now})
	}
	if m := cfg.Metrics; m != nil {
		m.Gauge(MetricLive).Set(0)
		m.Gauge(MetricMemory).Set(0)
		s.created.prom = m.Counter(MetricCreated)
		s.ended.prom = m.Counter(MetricEnded)
		s.evTTL.prom = m.Counter(MetricEvictions, "reason", "ttl")
		s.evMem.prom = m.Counter(MetricEvictions, "reason", "memory")
		s.ctxHits.prom = m.Counter(MetricContextHits)
		s.ctxMiss.prom = m.Counter(MetricContextMisses)
		s.resolved.prom = m.Counter(MetricFollowups, "outcome", "resolved")
		s.failed.prom = m.Counter(MetricFollowups, "outcome", "failed")
		// Pre-register the per-turn families so scrapes see them before
		// the first turn.
		m.Counter(MetricTurns, "intent", dialogue.IntentQuery.String())
		m.Histogram(MetricTurnSeconds)
	}
	return s, nil
}

// newID returns a 32-hex-char cryptographically random session ID.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// shardFor picks the shard owning a session ID.
func (s *Store) shardFor(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// TTL returns the configured session lifetime.
func (s *Store) TTL() time.Duration { return s.cfg.TTL }

// Create opens a new conversation and returns its ID.
func (s *Store) Create() string {
	id := newID()
	se := &sess{id: id, conv: &dialogue.Context{}, cost: sessionBaseCost}
	sh := s.shardFor(id)
	now := s.cfg.Now()
	sh.mu.Lock()
	se.expires = now.Add(s.cfg.TTL)
	sh.sessions[id] = se
	sh.lruPush(se)
	sh.mem += se.cost
	evicted := s.reclaimLocked(sh, now, se)
	sh.mu.Unlock()
	s.created.inc()
	s.publishGauges()
	s.notifyEvicted(evicted)
	return id
}

// lruPush inserts se at the head (most recently used). Shard lock held.
func (sh *storeShard) lruPush(se *sess) {
	se.prev = nil
	se.next = sh.head
	if sh.head != nil {
		sh.head.prev = se
	}
	sh.head = se
	if sh.tail == nil {
		sh.tail = se
	}
}

// lruRemove unlinks se. Shard lock held.
func (sh *storeShard) lruRemove(se *sess) {
	if se.prev != nil {
		se.prev.next = se.next
	} else {
		sh.head = se.next
	}
	if se.next != nil {
		se.next.prev = se.prev
	} else {
		sh.tail = se.prev
	}
	se.prev, se.next = nil, nil
}

// lruTouch moves se to the head. Shard lock held.
func (sh *storeShard) lruTouch(se *sess) {
	if sh.head == se {
		return
	}
	sh.lruRemove(se)
	sh.lruPush(se)
}

// removeLocked deletes se from the shard and tombstones its ID. Shard lock
// held; the caller reports metrics and runs OnEvict outside the lock.
func (sh *storeShard) removeLocked(se *sess) {
	delete(sh.sessions, se.id)
	sh.lruRemove(se)
	sh.mem -= se.cost
	se.gone = true
	if old := sh.tombRing[sh.tombNext]; old != "" {
		delete(sh.tombs, old)
	}
	sh.tombRing[sh.tombNext] = se.id
	sh.tombs[se.id] = struct{}{}
	sh.tombNext = (sh.tombNext + 1) % len(sh.tombRing)
}

// evicted pairs a removed session ID with its reason, for the OnEvict
// callback deferred to outside the locks.
type evicted struct{ id, reason string }

// reclaimLocked enforces TTL, the session cap, and the memory budget on
// one shard, never evicting keep. Shard lock held. Caps and budgets are
// divided evenly across shards — session IDs are uniformly random, so the
// stripes stay balanced.
func (s *Store) reclaimLocked(sh *storeShard, now time.Time, keep *sess) []evicted {
	var out []evicted
	// TTL first: expired sessions go regardless of pressure.
	for se := sh.tail; se != nil; {
		prev := se.prev
		if se != keep && now.After(se.expires) {
			sh.removeLocked(se)
			s.evTTL.inc()
			out = append(out, evicted{se.id, "ttl"})
		}
		se = prev
	}
	maxPerShard := s.cfg.MaxSessions / len(s.shards)
	if maxPerShard < 1 {
		maxPerShard = 1
	}
	memPerShard := s.cfg.MemoryBudget / int64(len(s.shards))
	for se := sh.tail; se != nil && (len(sh.sessions) > maxPerShard || sh.mem > memPerShard); {
		prev := se.prev
		if se != keep {
			sh.removeLocked(se)
			s.evMem.inc()
			out = append(out, evicted{se.id, "memory"})
		}
		se = prev
	}
	return out
}

// notifyEvicted runs the OnEvict hook for each removed session.
func (s *Store) notifyEvicted(evs []evicted) {
	if s.cfg.OnEvict == nil {
		return
	}
	for _, e := range evs {
		s.cfg.OnEvict(e.id, e.reason)
	}
}

// publishGauges refreshes the live-session and memory gauges.
func (s *Store) publishGauges() {
	if s.cfg.Metrics == nil {
		return
	}
	var live int64
	var mem int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		live += int64(len(sh.sessions))
		mem += sh.mem
		sh.mu.Unlock()
	}
	s.cfg.Metrics.Gauge(MetricLive).Set(live)
	s.cfg.Metrics.Gauge(MetricMemory).Set(mem)
}

// lookup finds a live session, expiring it lazily if its TTL passed, and
// slides its expiry forward on success.
func (s *Store) lookup(id string) (*sess, error) {
	sh := s.shardFor(id)
	now := s.cfg.Now()
	sh.mu.Lock()
	se, ok := sh.sessions[id]
	if !ok {
		_, dead := sh.tombs[id]
		sh.mu.Unlock()
		if dead {
			return nil, ErrExpired
		}
		return nil, ErrNotFound
	}
	if now.After(se.expires) {
		sh.removeLocked(se)
		sh.mu.Unlock()
		s.evTTL.inc()
		s.publishGauges()
		s.notifyEvicted([]evicted{{id, "ttl"}})
		return nil, ErrExpired
	}
	se.expires = now.Add(s.cfg.TTL)
	sh.lruTouch(se)
	sh.mu.Unlock()
	return se, nil
}

// End closes a session explicitly. Asking it again returns ErrExpired.
func (s *Store) End(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	se, ok := sh.sessions[id]
	if !ok {
		_, dead := sh.tombs[id]
		sh.mu.Unlock()
		if dead {
			return ErrExpired
		}
		return ErrNotFound
	}
	sh.removeLocked(se)
	sh.mu.Unlock()
	s.ended.inc()
	s.publishGauges()
	s.notifyEvicted([]evicted{{id, "ended"}})
	return nil
}

// Len returns the number of live sessions.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Created:     s.created.local.Load(),
		Ended:       s.ended.local.Load(),
		EvictedTTL:  s.evTTL.local.Load(),
		EvictedMem:  s.evMem.local.Load(),
		Turns:       s.turns.local.Load(),
		ContextHits: s.ctxHits.local.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Live += len(sh.sessions)
		st.Memory += sh.mem
		sh.mu.Unlock()
	}
	return st
}

// costOf estimates a session's accounted memory cost: fixed overhead plus
// the tracked SQL text.
func costOf(conv *dialogue.Context) int64 {
	c := int64(sessionBaseCost)
	if conv.LastSQL != nil {
		c += int64(len(conv.LastSQL.String()))
	}
	if conv.BeforeAggregate != nil {
		c += int64(len(conv.BeforeAggregate.String()))
	}
	return c
}

// Snapshot is the serializable state of one session: restore it into the
// same or another store (e.g. across a process restart) with Restore.
type Snapshot struct {
	ID      string            `json:"id"`
	Context dialogue.Snapshot `json:"context"`
}

// Snapshot captures a live session's conversational state. The turn lock
// is taken, so a snapshot never observes a half-applied turn.
func (s *Store) Snapshot(id string) (Snapshot, error) {
	se, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	se.mu.Lock()
	snap := Snapshot{ID: id, Context: se.conv.Snapshot()}
	se.mu.Unlock()
	return snap, nil
}

// Restore recreates a session from a snapshot under its original ID,
// replacing any live session with that ID.
func (s *Store) Restore(snap Snapshot) error {
	if len(snap.ID) == 0 {
		return fmt.Errorf("session: restore: empty id")
	}
	conv, err := dialogue.RestoreContext(snap.Context)
	if err != nil {
		return fmt.Errorf("session: restore %s: %w", snap.ID, err)
	}
	se := &sess{id: snap.ID, conv: conv, cost: costOf(conv)}
	sh := s.shardFor(snap.ID)
	now := s.cfg.Now()
	sh.mu.Lock()
	if old, ok := sh.sessions[snap.ID]; ok {
		sh.lruRemove(old)
		sh.mem -= old.cost
		old.gone = true
		delete(sh.sessions, snap.ID)
	}
	delete(sh.tombs, snap.ID)
	se.expires = now.Add(s.cfg.TTL)
	sh.sessions[snap.ID] = se
	sh.lruPush(se)
	sh.mem += se.cost
	evs := s.reclaimLocked(sh, now, se)
	sh.mu.Unlock()
	s.publishGauges()
	s.notifyEvicted(evs)
	return nil
}

// parse is a helper for cached-turn replay; stored SQL always came from a
// stmt's own String, so failure means a store bug, not user input.
func parseStored(sql string) (*sqlparse.SelectStmt, error) {
	if sql == "" {
		return nil, nil
	}
	return sqlparse.Parse(sql)
}
