package session

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
)

// fakeClock is a hand-advanced clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testStore builds a store over the sales domain with a real agent
// responder executing through a chain-less gateway. Overrides tweak the
// default config before construction.
func testStore(t testing.TB, overrides func(*Config)) *Store {
	t.Helper()
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	exec := resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
	cfg := Config{
		Responder: dialogue.NewAgent(d.DB, interp, lex, exec),
		DB:        d.DB,
		NoTrace:   true,
	}
	if overrides != nil {
		overrides(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRequiresResponderAndDB(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty config")
	}
	d := benchdata.Sales(60)
	if _, err := New(Config{DB: d.DB}); err == nil {
		t.Fatal("New accepted a config without a responder")
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := testStore(t, nil)
	id := s.Create()
	if len(id) != 32 {
		t.Fatalf("session id %q, want 32 hex chars", id)
	}

	r1, err := s.Ask(context.Background(), id, "show customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if r1.N != 1 || r1.ContextFP != 0 {
		t.Fatalf("first turn: N=%d fp=%x, want N=1 fp=0", r1.N, r1.ContextFP)
	}

	r2, err := s.Ask(context.Background(), id, "how many are there")
	if err != nil {
		t.Fatal(err)
	}
	if r2.N != 2 || r2.ContextFP == 0 {
		t.Fatalf("follow-up: N=%d fp=%x, want N=2 and nonzero fp", r2.N, r2.ContextFP)
	}
	if got, want := r2.Resp.Result.Rows[0][0].Int(), int64(len(r1.Resp.Result.Rows)); got != want {
		t.Fatalf("follow-up count %d != first turn rows %d", got, want)
	}

	if err := s.End(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), id, "how many are there"); !errors.Is(err, ErrExpired) {
		t.Fatalf("ask after End: err = %v, want ErrExpired", err)
	}
	if err := s.End(id); !errors.Is(err, ErrExpired) {
		t.Fatalf("double End: err = %v, want ErrExpired", err)
	}
	if _, err := s.Ask(context.Background(), "deadbeefdeadbeefdeadbeefdeadbeef", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrNotFound", err)
	}

	st := s.Stats()
	if st.Created != 1 || st.Ended != 1 || st.Turns != 2 || st.Live != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSessionTTLSlidesAndExpires(t *testing.T) {
	clock := newFakeClock()
	s := testStore(t, func(c *Config) {
		c.TTL = time.Minute
		c.Now = clock.Now
	})
	id := s.Create()

	// Each turn slides the expiry: three turns 40s apart span well past
	// the one-minute TTL without expiring.
	for i := 0; i < 3; i++ {
		clock.Advance(40 * time.Second)
		if _, err := s.Ask(context.Background(), id, "show customers with city Berlin"); err != nil {
			t.Fatalf("turn %d after slide: %v", i, err)
		}
	}

	clock.Advance(61 * time.Second)
	if _, err := s.Ask(context.Background(), id, "how many are there"); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired session: err = %v, want ErrExpired", err)
	}
	if st := s.Stats(); st.EvictedTTL != 1 || st.Live != 0 {
		t.Fatalf("stats %+v, want one TTL eviction", st)
	}
}

func TestSessionCapEvictsLRU(t *testing.T) {
	var evictedIDs []string
	var evictedReasons []string
	var mu sync.Mutex
	s := testStore(t, func(c *Config) {
		c.MaxSessions = 4
		c.Shards = 1
		c.OnEvict = func(id, reason string) {
			mu.Lock()
			evictedIDs = append(evictedIDs, id)
			evictedReasons = append(evictedReasons, reason)
			mu.Unlock()
		}
	})
	first := s.Create()
	var rest []string
	for i := 0; i < 4; i++ {
		rest = append(rest, s.Create())
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("live %d, want cap 4", got)
	}
	// The first (least recently used) session is the one that went.
	if _, err := s.Ask(context.Background(), first, "x"); !errors.Is(err, ErrExpired) {
		t.Fatalf("evicted session: err = %v, want ErrExpired (410)", err)
	}
	for _, id := range rest {
		if _, err := s.Snapshot(id); err != nil {
			t.Fatalf("survivor %s gone: %v", id, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evictedIDs) != 1 || evictedIDs[0] != first || evictedReasons[0] != "memory" {
		t.Fatalf("OnEvict ids=%v reasons=%v, want [%s] [memory]", evictedIDs, evictedReasons, first)
	}
}

func TestSessionMemoryBudgetEvictsUnderPressure(t *testing.T) {
	s := testStore(t, func(c *Config) {
		c.Shards = 1
		// Room for roughly two idle sessions plus change: the third create
		// must push the oldest out.
		c.MemoryBudget = 2*sessionBaseCost + sessionBaseCost/2
	})
	a := s.Create()
	s.Create()
	s.Create()
	if got := s.Len(); got > 2 {
		t.Fatalf("live %d over a two-session budget", got)
	}
	if _, err := s.Ask(context.Background(), a, "x"); !errors.Is(err, ErrExpired) {
		t.Fatalf("budget-evicted session: err = %v, want ErrExpired", err)
	}
	if st := s.Stats(); st.EvictedMem == 0 {
		t.Fatalf("stats %+v, want memory evictions", st)
	}
	if st := s.Stats(); st.Memory > s.cfg.MemoryBudget {
		t.Fatalf("accounted memory %d over budget %d", st.Memory, s.cfg.MemoryBudget)
	}
}

// TestTurnCacheIsContextKeyed is the byte-level correctness check: the
// same utterance under different dialogue contexts must never be
// conflated, while a replayed conversation is served from cache with a
// byte-identical result.
func TestTurnCacheIsContextKeyed(t *testing.T) {
	s := testStore(t, nil)
	ask := func(id, u string) *Turn {
		t.Helper()
		turn, err := s.Ask(context.Background(), id, u)
		if err != nil {
			t.Fatalf("ask(%s, %q): %v", id, u, err)
		}
		return turn
	}
	render := func(turn *Turn) string {
		var sb strings.Builder
		res := turn.Resp.Result
		fmt.Fprintf(&sb, "%v\n", res.Columns)
		for _, row := range res.Rows {
			for _, v := range row {
				sb.WriteString(v.String())
				sb.WriteByte('\x00')
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	berlin := s.Create()
	munich := s.Create()
	bRows := ask(berlin, "show customers with city Berlin")
	mRows := ask(munich, "show customers with city Munich")
	bCount := ask(berlin, "how many are there")
	mCount := ask(munich, "how many are there")

	// Identical utterance, different contexts: each count matches its own
	// conversation, byte for byte.
	if got, want := bCount.Resp.Result.Rows[0][0].Int(), int64(len(bRows.Resp.Result.Rows)); got != want {
		t.Fatalf("Berlin count %d != %d", got, want)
	}
	if got, want := mCount.Resp.Result.Rows[0][0].Int(), int64(len(mRows.Resp.Result.Rows)); got != want {
		t.Fatalf("Munich count %d != %d", got, want)
	}
	if len(bRows.Resp.Result.Rows) == len(mRows.Resp.Result.Rows) {
		t.Fatal("test domain degenerate: Berlin and Munich have equal counts; pick different filters")
	}
	if render(bCount) == render(mCount) {
		t.Fatal("context-keyed cache conflated the same utterance under different contexts")
	}

	// A third conversation replaying Berlin's turns is answered from the
	// turn cache — same bytes, Cached set, context advanced identically.
	replay := s.Create()
	r1 := ask(replay, "show customers with city Berlin")
	if !r1.Cached {
		t.Fatal("replayed opening turn not served from cache")
	}
	if render(r1) != render(bRows) {
		t.Fatal("cached opening turn differs byte-for-byte from the live one")
	}
	r2 := ask(replay, "how many are there")
	if !r2.Cached {
		t.Fatal("replayed follow-up not served from cache")
	}
	if r2.ContextFP != bCount.ContextFP {
		t.Fatalf("replayed context fp %016x != original %016x", r2.ContextFP, bCount.ContextFP)
	}
	if render(r2) != render(bCount) {
		t.Fatal("cached follow-up differs byte-for-byte from the live one")
	}
	if st := s.Stats(); st.ContextHits < 2 {
		t.Fatalf("stats %+v, want >=2 context hits", st)
	}
}

func TestTurnCacheDisabled(t *testing.T) {
	s := testStore(t, func(c *Config) { c.CacheSize = -1 })
	id := s.Create()
	if _, err := s.Ask(context.Background(), id, "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	id2 := s.Create()
	turn, err := s.Ask(context.Background(), id2, "show customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	if turn.Cached {
		t.Fatal("cache disabled but turn served from cache")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := testStore(t, nil)
	id := s.Create()
	r1, err := s.Ask(context.Background(), id, "show customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || snap.Context.LastSQL == "" || snap.Context.Turns != 1 {
		t.Fatalf("snapshot %+v", snap)
	}

	// Restore into a fresh store (a process restart) and continue the
	// conversation: the follow-up must resolve against the restored context.
	s2 := testStore(t, nil)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Ask(context.Background(), id, "how many are there")
	if err != nil {
		t.Fatal(err)
	}
	if r2.ContextFP == 0 {
		t.Fatal("restored session lost its context")
	}
	if got, want := r2.Resp.Result.Rows[0][0].Int(), int64(len(r1.Resp.Result.Rows)); got != want {
		t.Fatalf("restored follow-up count %d != original rows %d", got, want)
	}

	if err := s2.Restore(Snapshot{}); err == nil {
		t.Fatal("Restore accepted an empty snapshot")
	}
}

func TestSessionMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	s := testStore(t, func(c *Config) { c.Metrics = reg })
	id := s.Create()
	if _, err := s.Ask(context.Background(), id, "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), id, "how many are there"); err != nil {
		t.Fatal(err)
	}
	if err := s.End(id); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, fam := range []string{
		MetricLive, MetricCreated, MetricEnded, MetricTurns,
		MetricFollowups, MetricContextMisses, MetricTurnSeconds, MetricMemory,
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("metric family %s missing from scrape", fam)
		}
	}
	if reg.Counter(MetricCreated).Value() != 1 || reg.Counter(MetricEnded).Value() != 1 {
		t.Fatal("created/ended counters wrong")
	}
	if reg.Counter(MetricFollowups, "outcome", "resolved").Value() != 1 {
		t.Fatal("follow-up resolution not counted")
	}
	if reg.Gauge(MetricLive).Value() != 0 {
		t.Fatal("live gauge not zero after End")
	}
}

// TestConcurrentSessions interleaves thousands of turns across many live
// conversations under the race detector: creates, turns, follow-ups,
// expiries, and explicit ends all proceed in parallel over one shared
// responder, and no conversation may observe another's context.
func TestConcurrentSessions(t *testing.T) {
	s := testStore(t, nil)
	cities := []string{"Berlin", "Munich", "Hamburg"}
	workers := 16
	convPerWorker := 8
	if testing.Short() {
		workers = 8
		convPerWorker = 4
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < convPerWorker; c++ {
				city := cities[(w+c)%len(cities)]
				id := s.Create()
				r1, err := s.Ask(context.Background(), id, "show customers with city "+city)
				if err != nil {
					t.Error(err)
					return
				}
				r2, err := s.Ask(context.Background(), id, "how many are there")
				if err != nil {
					t.Error(err)
					return
				}
				if got, want := r2.Resp.Result.Rows[0][0].Int(), int64(len(r1.Resp.Result.Rows)); got != want {
					t.Errorf("worker %d conv %d (%s): count %d != own rows %d — cross-session context bleed", w, c, city, got, want)
					return
				}
				if c%2 == 0 {
					if err := s.End(id); err != nil {
						t.Errorf("end: %v", err)
					}
				}
			}
		}(w)
	}
	// Churn alongside the conversations: create-and-abandon sessions so
	// eviction paths run concurrently with live turns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Create()
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Turns != int64(workers*convPerWorker*2) {
		t.Fatalf("turns %d, want %d", st.Turns, workers*convPerWorker*2)
	}
}

// TestConcurrentTurnsOneSessionSerialize pins the per-session turn lock:
// parallel asks on one session must interleave as whole turns, so the
// turn numbers that come back are a permutation of 1..N.
func TestConcurrentTurnsOneSessionSerialize(t *testing.T) {
	s := testStore(t, nil)
	id := s.Create()
	const n = 8
	got := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			turn, err := s.Ask(context.Background(), id, "show customers with city Berlin")
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = turn.N
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, n2 := range got {
		if n2 < 1 || n2 > n || seen[n2] {
			t.Fatalf("turn numbers %v are not a permutation of 1..%d", got, n)
		}
		seen[n2] = true
	}
}
