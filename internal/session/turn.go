package session

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"nlidb/internal/dialogue"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/sqldata"
)

// Turn is the outcome of one utterance resolved inside a session.
type Turn struct {
	// Session is the conversation's ID.
	Session string
	// N is the 1-based turn number within the conversation.
	N int
	// Intent is the classified intent the utterance resolved under.
	Intent dialogue.Intent
	// ContextFP fingerprints the dialogue context the utterance resolved
	// against (0 = empty context, i.e. a context-free turn).
	ContextFP uint64
	// Cached marks a turn answered from the context-keyed turn cache.
	Cached bool
	// Resp is the dialogue response (always non-nil, even on error).
	Resp *dialogue.Response
	// Elapsed is the turn's wall-clock time.
	Elapsed time.Duration
	// TraceID names the turn's trace ("" when tracing is off). Every turn
	// of a conversation carries the session attribute, so /trace shows
	// whole conversations.
	TraceID obs.TraceID
}

// cacheEntry is one cached turn: the post-turn context as SQL text (so a
// hit replays the context advance exactly) plus the response surface. The
// Result is shared read-only across goroutines — the same contract the
// gateway's answer cache established.
type cacheEntry struct {
	lastSQL   string
	beforeAgg string
	message   string
	engine    string
	result    *sqldata.Result
}

// Ask resolves one utterance in the identified session. Turns within a
// session are serialized (a second Ask on the same ID blocks until the
// first finishes); turns on different sessions proceed in parallel over
// the shared Responder. The session's idle TTL slides forward on every
// turn. Returns ErrNotFound for an ID never issued, ErrExpired for one
// that ended, expired, or was evicted.
func (s *Store) Ask(ctx context.Context, id, utterance string) (*Turn, error) {
	se, err := s.lookup(id)
	if err != nil {
		return nil, err
	}

	se.mu.Lock()
	defer se.mu.Unlock()

	start := s.cfg.Now()
	turn := &Turn{Session: id, N: se.conv.Turns + 1}

	var qt *obs.QueryTrace
	if !s.cfg.NoTrace {
		ctx, qt = obs.NewQueryTrace(ctx, utterance)
		qt.Root.SetAttr("session", id)
		qt.Root.SetAttr("turn", strconv.Itoa(turn.N))
	}

	turn.Intent = dialogue.ClassifyIntent(utterance, se.conv.LastSQL != nil)
	turn.ContextFP = se.conv.Fingerprint()
	if qt != nil {
		qt.Root.SetAttr("intent", turn.Intent.String())
		if turn.ContextFP != 0 {
			qt.Root.SetAttr("context_fp", fmt.Sprintf("%016x", turn.ContextFP))
		}
	}

	key := qcache.WithContext(turn.ContextFP,
		qcache.WithFingerprint(s.cfg.DB.Fingerprint(), qcache.Key(utterance)))

	resp, rerr := s.serveTurn(ctx, se, key, utterance, turn, qt)
	turn.Resp = resp
	turn.Elapsed = s.cfg.Now().Sub(start)

	s.finishTurnObs(turn, utterance, rerr, qt)

	if rerr == nil {
		s.recost(se)
	}
	return turn, rerr
}

// serveTurn answers the utterance from the turn cache when possible,
// otherwise through the Responder, caching successful executed turns.
// Called with the session's turn lock held.
func (s *Store) serveTurn(ctx context.Context, se *sess, key, utterance string, turn *Turn, qt *obs.QueryTrace) (*dialogue.Response, error) {
	followup := turn.ContextFP != 0
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			ent := v.(*cacheEntry)
			resp, err := s.replayCached(se, ent)
			if err == nil {
				turn.Cached = true
				s.ctxHits.inc()
				if followup {
					s.resolved.inc()
				}
				if qt != nil {
					qt.Root.SetAttr("cached", "true")
				}
				return resp, nil
			}
			// A stored turn that no longer replays (parse drift) falls
			// through to the live path.
		}
	}
	s.ctxMiss.inc()

	resp, err := s.cfg.Responder.RespondWith(ctx, se.conv, utterance)
	if resp == nil {
		resp = &dialogue.Response{Message: "The request failed."}
	}
	if followup {
		if err != nil {
			s.failed.inc()
		} else {
			s.resolved.inc()
		}
	}
	if err == nil && s.cache != nil && resp.SQL != nil && resp.Result != nil &&
		(resp.Answer == nil || !resp.Answer.Partial) {
		ent := &cacheEntry{
			lastSQL: resp.SQL.String(),
			message: resp.Message,
			result:  resp.Result,
		}
		if se.conv.BeforeAggregate != nil {
			ent.beforeAgg = se.conv.BeforeAggregate.String()
		}
		if resp.Answer != nil {
			ent.engine = resp.Answer.Engine
		}
		s.cache.Put(key, ent)
	}
	return resp, err
}

// replayCached advances the conversation exactly as the live turn did —
// the entry stores the post-turn context as SQL text — and rebuilds the
// response. Called with the session's turn lock held.
func (s *Store) replayCached(se *sess, ent *cacheEntry) (*dialogue.Response, error) {
	stmt, err := parseStored(ent.lastSQL)
	if err != nil || stmt == nil {
		return nil, fmt.Errorf("session: cached turn does not replay: %v", err)
	}
	before, err := parseStored(ent.beforeAgg)
	if err != nil {
		return nil, fmt.Errorf("session: cached turn does not replay: %v", err)
	}
	se.conv.BeforeAggregate = before
	se.conv.Remember(stmt)
	return &dialogue.Response{SQL: stmt, Result: ent.result, Message: ent.message}, nil
}

// finishTurnObs closes the turn's trace, offers it for retention, feeds
// the slow log, and bumps the turn counters.
func (s *Store) finishTurnObs(turn *Turn, utterance string, rerr error, qt *obs.QueryTrace) {
	s.turns.inc()
	outcome := "ok"
	if rerr != nil {
		outcome = "error"
	}
	engine := ""
	partial := false
	if a := turn.Resp.Answer; a != nil {
		engine = a.Engine
		partial = a.Partial
	}
	if m := s.cfg.Metrics; m != nil {
		m.Counter(MetricTurns, "intent", turn.Intent.String()).Inc()
		m.Histogram(MetricTurnSeconds).Observe(turn.Elapsed.Seconds())
	}
	if qt != nil {
		turn.TraceID = qt.ID
		qt.Root.SetAttr("outcome", outcome)
		qt.Root.End()
		s.cfg.Traces.Offer(qt, outcome, turn.Elapsed, partial)
		s.cfg.SlowLog.Observe(obs.SlowEntry{
			Question:     utterance,
			Engine:       engine,
			Outcome:      outcome,
			Duration:     turn.Elapsed,
			When:         s.cfg.Now(),
			Trace:        qt,
			TraceID:      qt.ID,
			Partial:      partial,
			DroppedSpans: qt.DroppedTotal(),
			Session:      turn.Session,
		})
	} else {
		s.cfg.SlowLog.Observe(obs.SlowEntry{
			Question: utterance,
			Engine:   engine,
			Outcome:  outcome,
			Duration: turn.Elapsed,
			When:     s.cfg.Now(),
			Partial:  partial,
			Session:  turn.Session,
		})
	}
}

// recost re-accounts the session's memory cost after a turn mutated its
// context, enforcing the budget against other sessions (never the one
// that just spoke). Skipped if the session was evicted mid-turn.
func (s *Store) recost(se *sess) {
	c := costOf(se.conv)
	sh := s.shardFor(se.id)
	now := s.cfg.Now()
	sh.mu.Lock()
	if se.gone {
		sh.mu.Unlock()
		return
	}
	sh.mem += c - se.cost
	se.cost = c
	evs := s.reclaimLocked(sh, now, se)
	sh.mu.Unlock()
	s.publishGauges()
	s.notifyEvicted(evs)
}
