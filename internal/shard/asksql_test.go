package shard

import (
	"context"
	"testing"

	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
)

// TestAskSQLMatchesUnsharded pins the coordinator's trusted-SQL entry
// point (the one conversational sessions execute through): for every
// routable shape — home-routed point lookups, pruned scans, scatter
// aggregates — AskSQL must return exactly what the unsharded engine does.
func TestAskSQLMatchesUnsharded(t *testing.T) {
	db := fleetDB(t)
	single := resilient.New(db, []nlq.Interpreter{sqlInterp{}}, resilient.Config{NoRetry: true})
	cl := testCluster(t, db, 3, Config{Replicas: 2, Seed: 7})

	ctx := context.Background()
	for _, sql := range []string{
		"SELECT * FROM customers WHERE id = 7",                     // pruned to one shard
		"SELECT name FROM customers WHERE city = 'Berlin'",         // scatter scan
		"SELECT COUNT(*) FROM customers",                           // scatter aggregate
		"SELECT city, COUNT(*), AVG(credit) FROM customers GROUP BY city",
		"SELECT name FROM customers ORDER BY name LIMIT 5",
	} {
		want, err := single.AskSQL(ctx, sql)
		if err != nil {
			t.Fatalf("unsharded %q: %v", sql, err)
		}
		got, err := cl.AskSQL(ctx, sql)
		if err != nil {
			t.Fatalf("sharded %q: %v", sql, err)
		}
		if got.Engine != resilient.SQLEngine {
			t.Errorf("%q: engine %q, want %q", sql, got.Engine, resilient.SQLEngine)
		}
		if got.Partial {
			t.Errorf("%q: Partial with every shard healthy", sql)
		}
		if !got.Result.EqualUnordered(want.Result) {
			t.Errorf("%q:\nsharded:\n%s\nunsharded:\n%s", sql, got.Result, want.Result)
		}
	}
}

// TestAskSQLRejectsBadSQL: the statement arrives pre-resolved, so a parse
// failure is an input error, not a fallback opportunity.
func TestAskSQLRejectsBadSQL(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 3, Config{Replicas: 1})
	if _, err := cl.AskSQL(context.Background(), "SELEC nonsense"); err == nil {
		t.Fatal("AskSQL accepted unparseable SQL")
	}
}

// TestAskSQLSurvivesReplicaLoss: with one replica of every shard killed,
// trusted-SQL statements fail over to survivors exactly like NL questions.
func TestAskSQLSurvivesReplicaLoss(t *testing.T) {
	cl, nodes, _ := chaosCluster(t, 0xA5C)
	for s := range nodes {
		nodes[s][0].Kill()
	}
	ans, err := cl.AskSQL(context.Background(), "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatalf("AskSQL with one replica down per shard: %v", err)
	}
	if ans.Partial {
		t.Fatal("answer partial despite healthy survivors")
	}
	if got := ans.Result.Rows[0][0].Int(); got != 40 {
		t.Fatalf("count %d, want 40", got)
	}
}
