package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/resilient/faultinject"
	"nlidb/internal/sqldata"
)

// chaosCluster builds a 3-shard, 2-replica cluster whose every node is
// wrapped in a ChaosNode, with fast breaker cooldowns so recovery is
// observable inside a test, plus seeded latency fault injection in the
// underlying gateways to keep the hedging path busy.
func chaosCluster(t testing.TB, seed int64) (*Cluster, [][]*ChaosNode, *obs.Registry) {
	t.Helper()
	db := fleetDB(t)
	reg := obs.NewRegistry()
	inj := faultinject.New(seed)
	inj.SlowRate = 0.1
	inj.SlowBy = 2 * time.Millisecond

	nodes := make([][]*ChaosNode, 3)
	cl := testCluster(t, db, 3, Config{
		Replicas:         2,
		Gateway:          resilient.Config{NoRetry: true, NoTrace: true, Hook: inj.Hook()},
		ShardTimeout:     500 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		ReplicaThreshold: 3,
		ReplicaCooldown:  40 * time.Millisecond,
		CacheSize:        -1, // every ask must exercise routing
		Seed:             seed,
		Metrics:          reg,
		WrapNode: func(s, r int, n Node) Node {
			cn := &ChaosNode{Inner: n}
			nodes[s] = append(nodes[s], cn)
			return cn
		},
	})
	return cl, nodes, reg
}

// prunedByShard buckets single-shard questions by the shard that owns
// their answer, using the same Owner routing the cluster uses.
func prunedByShard(cl *Cluster) map[int][]string {
	out := map[int][]string{}
	for id := int64(1); id <= 40; id++ {
		sh, _ := cl.Partitioning().Owner("customers", sqldata.NewInt(id))
		out[sh] = append(out[sh], fmt.Sprintf("SELECT name FROM customers WHERE id = %d", id))
	}
	return out
}

type waveStats struct {
	ok       int
	failed   int
	partial  int
	firstErr error
}

// runWave fires the given questions concurrently (8 workers) and tallies
// outcomes. wrong collects answers that are present but incorrect —
// the "never silently wrong" invariant.
func runWave(t *testing.T, cl *Cluster, questions []string, check func(q string, a *resilient.Answer) error) waveStats {
	t.Helper()
	var (
		mu    sync.Mutex
		stats waveStats
		wg    sync.WaitGroup
	)
	sem := make(chan struct{}, 8)
	for _, q := range questions {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ans, err := cl.Ask(context.Background(), q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				stats.failed++
				if stats.firstErr == nil {
					stats.firstErr = fmt.Errorf("%s: %w", q, err)
				}
				return
			}
			stats.ok++
			if ans.Partial {
				stats.partial++
			}
			if check != nil {
				if cerr := check(q, ans); cerr != nil {
					t.Errorf("wrong answer for %q: %v", q, cerr)
				}
			}
		}(q)
	}
	wg.Wait()
	return stats
}

// TestChaosReplicaKill: with one replica of one shard killed mid-load,
// every shard still has a healthy replica, so there must be zero failed
// answers and zero partial answers — the router absorbs the kill.
func TestChaosReplicaKill(t *testing.T) {
	cl, nodes, _ := chaosCluster(t, 0xC0FFEE)
	scatter := "SELECT COUNT(*) FROM customers"
	var questions []string
	for _, qs := range prunedByShard(cl) {
		questions = append(questions, qs...)
	}
	for i := 0; i < 20; i++ {
		questions = append(questions, scatter)
	}

	// Warm-up wave with everything healthy.
	if s := runWave(t, cl, questions, nil); s.failed > 0 {
		t.Fatalf("healthy wave: %d failures, first: %v", s.failed, s.firstErr)
	}

	nodes[0][1].Kill()
	check := func(q string, a *resilient.Answer) error {
		if q == scatter {
			if got := a.Result.Rows[0][0]; got.Int() != 40 {
				return fmt.Errorf("COUNT(*) = %s, want 40", got)
			}
		}
		return nil
	}
	for wave := 0; wave < 3; wave++ {
		s := runWave(t, cl, questions, check)
		if s.failed > 0 {
			t.Fatalf("wave %d with one replica down: %d failures, first: %v", wave, s.failed, s.firstErr)
		}
		if s.partial > 0 {
			t.Fatalf("wave %d with one replica down: %d partial answers; all shards are still reachable", wave, s.partial)
		}
	}
}

// TestChaosShardKillAndRestore is the acceptance harness: kill every
// replica of one shard mid-load, then assert (a) questions owned by the
// other shards keep succeeding, (b) questions owned by the dead shard
// fail loudly with ErrShardDown, (c) scatter-gather answers degrade to
// Partial with the dead shard listed and a correct partial value — never
// a silently wrong total — and (d) after restore, goodput returns to
// complete answers within the breaker probe window.
func TestChaosShardKillAndRestore(t *testing.T) {
	cl, nodes, reg := chaosCluster(t, 0xBEEF)
	byShard := prunedByShard(cl)
	scatter := "SELECT COUNT(*) FROM customers"

	// Expected partial count once a shard dies: customers on the two
	// surviving shards.
	onShard := map[int]int{}
	for sh, qs := range byShard {
		onShard[sh] = len(qs)
	}

	var all []string
	for _, qs := range byShard {
		all = append(all, qs...)
	}
	all = append(all, scatter, scatter, scatter, scatter)
	if s := runWave(t, cl, all, nil); s.failed > 0 {
		t.Fatalf("healthy wave: %d failures, first: %v", s.failed, s.firstErr)
	}

	const dead = 1
	for _, n := range nodes[dead] {
		n.Kill()
	}

	// (a)+(b): pruned questions split cleanly by owner.
	for sh, qs := range byShard {
		s := runWave(t, cl, qs, nil)
		if sh == dead {
			if s.ok > 0 {
				t.Fatalf("shard %d is dead but %d of its questions succeeded", sh, s.ok)
			}
			if !errors.Is(s.firstErr, ErrShardDown) {
				t.Fatalf("dead-shard question error = %v, want ErrShardDown", s.firstErr)
			}
			var sde *ShardDownError
			if !errors.As(s.firstErr, &sde) || sde.Shard != dead {
				t.Fatalf("dead-shard error = %v, want ShardDownError{Shard: %d}", s.firstErr, dead)
			}
		} else if s.failed > 0 {
			t.Fatalf("shard %d is healthy but %d of its questions failed, first: %v", sh, s.failed, s.firstErr)
		}
	}

	// (c): scatter-gather degrades honestly.
	wantPartial := int64(40 - onShard[dead])
	checkPartial := func(q string, a *resilient.Answer) error {
		if !a.Partial {
			return errors.New("scatter answer not marked Partial with a shard down")
		}
		if len(a.MissingShards) != 1 || a.MissingShards[0] != dead {
			return fmt.Errorf("MissingShards = %v, want [%d]", a.MissingShards, dead)
		}
		if got := a.Result.Rows[0][0]; got.Int() != wantPartial {
			return fmt.Errorf("partial COUNT(*) = %s, want %d", got, wantPartial)
		}
		return nil
	}
	var scatters []string
	for i := 0; i < 12; i++ {
		scatters = append(scatters, scatter)
	}
	s := runWave(t, cl, scatters, checkPartial)
	if s.failed > 0 {
		t.Fatalf("scatter wave with shard down: %d failures, first: %v", s.failed, s.firstErr)
	}
	if s.partial != s.ok {
		t.Fatalf("scatter wave with shard down: %d of %d answers marked Partial, want all", s.partial, s.ok)
	}

	// (d): restore and wait for recovery within the probe window. The
	// breakers for the dead replicas cool down in 40ms (+ jitter); poll
	// well past that but fail if completeness never returns.
	for _, n := range nodes[dead] {
		n.Restore()
	}
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		ans, err := cl.Ask(context.Background(), scatter)
		if err == nil && !ans.Partial {
			if got := ans.Result.Rows[0][0]; got.Int() != 40 {
				t.Fatalf("recovered COUNT(*) = %s, want 40", got)
			}
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("cluster did not recover complete answers within 5s of restore")
	}
	// Full goodput: a whole wave with zero failures and zero partials.
	s = runWave(t, cl, all, nil)
	if s.failed > 0 || s.partial > 0 {
		t.Fatalf("post-restore wave: %d failures (%v), %d partial", s.failed, s.firstErr, s.partial)
	}

	// The metric family must have recorded the incident.
	snap := reg.Snapshot()
	for _, name := range []string{MetricPartial, MetricShardDown, MetricRetries} {
		if !metricPresent(snap, name) {
			t.Errorf("metric %s not recorded during chaos run", name)
		}
	}
}

// metricPresent reports whether any series in the named family has a
// positive value in a Registry snapshot.
func metricPresent(snap map[string]any, name string) bool {
	fam, ok := snap[name].(map[string]any)
	if !ok {
		return false
	}
	for _, v := range fam {
		switch n := v.(type) {
		case int64:
			if n > 0 {
				return true
			}
		case float64:
			if n > 0 {
				return true
			}
		}
	}
	return false
}

// TestPartialAnswersNeverCached: a Partial answer produced while a shard
// is down must not be served from the fleet cache after the shard heals.
func TestPartialAnswersNeverCached(t *testing.T) {
	db := fleetDB(t)
	nodes := make([][]*ChaosNode, 2)
	cl := testCluster(t, db, 2, Config{
		Replicas:         1,
		ShardTimeout:     300 * time.Millisecond,
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		ReplicaThreshold: 2,
		ReplicaCooldown:  30 * time.Millisecond,
		Seed:             3,
		WrapNode: func(s, r int, n Node) Node {
			cn := &ChaosNode{Inner: n}
			nodes[s] = append(nodes[s], cn)
			return cn
		},
	})
	const q = "SELECT COUNT(*) FROM customers"
	nodes[1][0].Kill()

	ans, err := cl.Ask(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Partial {
		t.Fatal("expected Partial answer with shard 1 down")
	}
	nodes[1][0].Restore()

	deadline := time.Now().Add(5 * time.Second)
	for {
		ans, err = cl.Ask(context.Background(), q)
		if err == nil && !ans.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw a complete answer after restore — was the Partial answer cached?")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ans.Cached {
		t.Fatal("first complete answer came from cache; the Partial answer must not have been stored")
	}
	if got := ans.Result.Rows[0][0]; got.Int() != 40 {
		t.Fatalf("recovered COUNT(*) = %s, want 40", got)
	}
	// And the complete answer is cached from here on.
	again, err := cl.Ask(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Partial {
		t.Fatalf("follow-up ask: Cached=%v Partial=%v, want cached complete answer", again.Cached, again.Partial)
	}
}
