package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// Config tunes a Cluster. The zero value is serviceable: 1 replica per
// shard, 2s per-shard timeout, 2 retries with 2ms jittered exponential
// backoff, hedging at the shard's p95 clamped to [1ms, 50ms], a 4096-entry
// fleet-wide answer cache, and replica breakers opening after 3
// consecutive failures with a 1s jittered cooldown.
type Config struct {
	// Replicas is the replication factor R: every shard's partition is
	// served by R identical gateways (default 1).
	Replicas int
	// Chain is the interpreter fallback chain shared by every replica.
	// Build it over the FULL source database, not a partition: value
	// vocabularies then match fleet-wide, so every replica interprets a
	// question to the same SQL and routing is deterministic.
	Chain []nlq.Interpreter
	// Gateway is the per-replica gateway template. Cache, PlanCache, and
	// Metrics are overridden per replica (the cluster caches fleet-wide
	// and owns the metric namespace); everything else is passed through.
	Gateway resilient.Config

	// Timeout bounds one whole Ask, fan-out included (0 = none).
	Timeout time.Duration
	// ShardTimeout bounds each per-shard leg, so one stuck shard cannot
	// consume the whole deadline (default 2s).
	ShardTimeout time.Duration
	// Retries is how many times a failed shard leg is retried against
	// other replicas (default 2).
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between leg retries (default 2ms).
	RetryBackoff time.Duration

	// HedgeQuantile is the shard-latency percentile after which a second
	// replica is hedged (default 0.95).
	HedgeQuantile float64
	// HedgeMin / HedgeMax clamp the hedge delay (defaults 1ms / 50ms).
	// Until a shard has enough samples the delay is HedgeMax.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// NoHedge disables hedged requests (failover on failure still works).
	NoHedge bool

	// ReplicaThreshold / ReplicaCooldown tune each replica's circuit
	// breaker (defaults 3 and 1s; cooldowns carry jitter derived from
	// Seed so replicas never probe in lockstep).
	ReplicaThreshold int
	ReplicaCooldown  time.Duration

	// CacheSize bounds the fleet-wide answer cache (default 4096;
	// negative disables caching). Partial answers are never cached.
	CacheSize int
	// CacheTTL expires cached answers (0 = forever).
	CacheTTL time.Duration
	// PlanCacheSize bounds each replica's plan cache (default 256;
	// negative disables). Plan caches are strictly per-replica: plans
	// bind to one partition's tables and must never cross shards.
	PlanCacheSize int

	// Metrics receives the nlidb_shard_* families.
	Metrics *obs.Registry
	// NoTrace disables coordinator span collection. When tracing is on
	// (the default) every Ask that misses the cache builds one QueryTrace
	// spanning classify → route → per-replica attempts → merge, with the
	// replica gateways' own traces nested beneath the attempt spans.
	NoTrace bool
	// SlowLog, when non-nil, records fleet-level slow queries with
	// route/shard/partial/hedge attribution. The cluster owns slow
	// logging: any SlowLog on the Gateway template is nil'd per replica so
	// one slow query logs once, at the coordinator.
	SlowLog *obs.SlowLog
	// Traces, when non-nil, retains exemplar traces tail-sampled at the
	// coordinator (slow/failed/partial always, the rest probabilistically).
	// Like SlowLog, it is cluster-owned and nil'd on replica gateways.
	Traces *obs.TraceStore
	// BreakerHook, when non-nil, observes every replica breaker transition
	// as (shard, replica, from, to). Called outside breaker locks; must be
	// safe for concurrent calls.
	BreakerHook func(shard, replica int, from, to string)
	// Seed makes retry jitter and breaker-probe jitter replayable
	// (default 1).
	Seed int64
	// Workers bounds ServeBatch's worker pool (default GOMAXPROCS).
	Workers int

	// WrapNode, when non-nil, wraps every replica node at build time —
	// the chaos harness uses it to interpose ChaosNode kill switches.
	WrapNode func(shard, replica int, n Node) Node

	// Now is the breaker clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// Cluster is the sharded serving fleet: N shards × R replicas behind one
// Ask/ServeBatch façade with health-checked, load-aware, hedged routing
// and graceful degradation. Safe for concurrent use.
type Cluster struct {
	cfg   Config
	n     int
	part  *Partitioning
	dbs   []*sqldata.Database
	reps  [][]*replica
	hists []*obs.Histogram // per-shard latency reservoirs driving hedge delays
	cache *qcache.Cache
	fp    uint64

	flight qcache.Flight

	// stats are the always-on fleet rollup counters (independent of
	// cfg.Metrics): per-shard in stats, cluster-wide below. They cost one
	// atomic add each on the paths they count, and feed /fleet and the
	// scrape-time WriteProm families.
	stats        []shardStats
	routeHome    atomic.Int64
	routePruned  atomic.Int64
	routeScatter atomic.Int64
	partials     atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// shardStats is one shard's always-on rollup counters.
type shardStats struct {
	requests  atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	retries   atomic.Int64
	downLegs  atomic.Int64
}

// reqStats accumulates one Ask's fleet-level facts for the slow log and
// the trace root. Fields written during fan-out are atomic; route is set
// once in the single-goroutine classify phase.
type reqStats struct {
	route   string
	shards  atomic.Int64
	hedged  atomic.Int64
	retries atomic.Int64
}

// New splits db across n shards and builds the replica fleet. The
// interpreter chain in cfg.Chain should be built over db itself (see
// Config.Chain); the shard databases only ever execute SQL.
func New(db *sqldata.Database, n int, cfg Config) (*Cluster, error) {
	return newCluster(db, n, cfg, func(s, r int, dbs []*sqldata.Database) Node {
		gwCfg := cfg.Gateway
		gwCfg.Cache = nil // the cluster caches fleet-wide
		gwCfg.Metrics = nil
		gwCfg.SlowLog = nil // the coordinator slow-logs once, with routing context
		gwCfg.Traces = nil  // likewise: exemplars retained at the coordinator
		if cfg.PlanCacheSize >= 0 {
			size := cfg.PlanCacheSize
			if size == 0 {
				size = 256
			}
			gwCfg.PlanCache = qcache.New(qcache.Config{MaxEntries: size})
		} else {
			gwCfg.PlanCache = nil
		}
		return &LocalNode{GW: resilient.New(dbs[s], cfg.Chain, gwCfg)}
	})
}

// newCluster is the shared fleet constructor behind New (in-process
// replicas) and NewRemote (out-of-process replicas over HTTP): split the
// source database for the partitioning map and fingerprint, then build
// the replica grid with nodeFor supplying each endpoint.
func newCluster(db *sqldata.Database, n int, cfg Config, nodeFor func(s, r int, dbs []*sqldata.Database) Node) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile > 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = time.Millisecond
	}
	if cfg.HedgeMax < cfg.HedgeMin {
		cfg.HedgeMax = 50 * time.Millisecond
		if cfg.HedgeMax < cfg.HedgeMin {
			cfg.HedgeMax = cfg.HedgeMin
		}
	}
	if cfg.ReplicaThreshold <= 0 {
		cfg.ReplicaThreshold = 3
	}
	if cfg.ReplicaCooldown <= 0 {
		cfg.ReplicaCooldown = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	dbs, part, err := Split(db, n)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		n:     n,
		part:  part,
		dbs:   dbs,
		reps:  make([][]*replica, n),
		hists: make([]*obs.Histogram, n),
		stats: make([]shardStats, n),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	h := fnv.New64a()
	for _, d := range dbs {
		var buf [8]byte
		fp := d.Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	c.fp = h.Sum64()

	if cfg.CacheSize >= 0 {
		c.cache = qcache.New(qcache.Config{MaxEntries: cfg.CacheSize, TTL: cfg.CacheTTL, Metrics: cfg.Metrics})
	}

	for s := 0; s < n; s++ {
		c.hists[s] = obs.NewHistogram()
		c.reps[s] = make([]*replica, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			node := nodeFor(s, r, dbs)
			if cfg.WrapNode != nil {
				node = cfg.WrapNode(s, r, node)
			}
			br := resilient.NewBreaker(cfg.ReplicaThreshold, cfg.ReplicaCooldown, cfg.Now)
			br.SetJitter(resilient.DefaultBreakerJitter(cfg.ReplicaCooldown), cfg.Seed+int64(s*cfg.Replicas+r))
			rep := &replica{shard: s, idx: r, node: node, br: br}
			var g *obs.Gauge
			if m := cfg.Metrics; m != nil {
				g = m.Gauge(MetricReplicaState, "shard", strconv.Itoa(s), "replica", strconv.Itoa(r))
				g.Set(resilient.StateValue("closed"))
			}
			if g != nil || cfg.BreakerHook != nil {
				shardIdx, replIdx := s, r
				br.OnTransition(func(from, to string) {
					if g != nil {
						g.Set(resilient.StateValue(to))
					}
					if cfg.BreakerHook != nil {
						cfg.BreakerHook(shardIdx, replIdx, from, to)
					}
				})
			}
			c.reps[s][r] = rep
		}
	}
	c.preregisterMetrics()
	return c, nil
}

func (c *Cluster) preregisterMetrics() {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter(MetricPartial)
	for _, route := range []string{"home", "pruned", "scatter"} {
		m.Counter(MetricRoutes, "route", route)
	}
	for s := 0; s < c.n; s++ {
		sl := strconv.Itoa(s)
		m.Counter(MetricRequests, "shard", sl, "outcome", "ok")
		m.Histogram(MetricReplicaSeconds, "shard", sl)
		m.Counter(MetricHedges, "shard", sl)
		m.Counter(MetricRetries, "shard", sl)
		m.Counter(MetricShardDown, "shard", sl)
	}
}

// ShardCount returns N.
func (c *Cluster) ShardCount() int { return c.n }

// ReplicaCount returns R.
func (c *Cluster) ReplicaCount() int { return c.cfg.Replicas }

// Partitioning exposes the row-placement map for introspection.
func (c *Cluster) Partitioning() *Partitioning { return c.part }

// ReplicaStates reports every replica breaker's state, indexed
// [shard][replica].
func (c *Cluster) ReplicaStates() [][]string {
	out := make([][]string, c.n)
	for s := range c.reps {
		out[s] = make([]string, len(c.reps[s]))
		for r, rep := range c.reps[s] {
			out[s][r] = rep.br.State()
		}
	}
	return out
}

// Ask answers one natural-language question over the sharded fleet: the
// question routes consistent-hash to a home replica for interpretation
// (and, when the data allows, the complete answer); the interpreted SQL
// is then pruned to its owner shard or scatter-gathered across all shards
// with partial aggregates merged. Degradation is explicit: a dead shard
// fails pruned questions for that shard with ErrShardDown, while
// scatter-gather answers come back with Partial set and MissingShards
// naming what is absent — never silently wrong. Answers route through a
// fleet-wide cache keyed like the gateway's, with concurrent identical
// misses collapsed.
func (c *Cluster) Ask(ctx context.Context, question string) (*resilient.Answer, error) {
	start := time.Now()
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}

	if c.cache == nil {
		ans, err := c.askRoot(ctx, question)
		if ans != nil {
			ans.Elapsed = time.Since(start)
		}
		return ans, err
	}

	key := qcache.WithFingerprint(c.fp, qcache.Key(question))
	if v, ok := c.cache.Get(key); ok {
		hit := *(v.(*resilient.Answer)) // shallow copy; SQL/Result shared read-only
		hit.Cached = true
		hit.Elapsed = time.Since(start)
		return &hit, nil
	}
	var mine *resilient.Answer
	v, err, shared := c.flight.Do(ctx, key, func() (any, error) {
		a, e := c.askRoot(ctx, question)
		mine = a
		if e != nil {
			return nil, e
		}
		sh := &resilient.Answer{
			Engine: a.Engine, SQL: a.SQL, Result: a.Result, Score: a.Score,
			Simplified: a.Simplified, Usage: a.Usage,
			Partial: a.Partial, MissingShards: a.MissingShards,
		}
		if !a.Partial {
			c.cache.Put(key, sh)
		}
		return sh, nil
	})
	var ans *resilient.Answer
	switch {
	case !shared:
		ans = mine // leader (or a follower canceled while waiting: nil)
	case err == nil:
		hit := *(v.(*resilient.Answer))
		hit.Cached = true
		ans = &hit
	}
	if ans != nil {
		ans.Elapsed = time.Since(start)
	}
	return ans, err
}

// askRoot wraps one uncached ask with the coordinator's observability:
// the fleet-level QueryTrace (unless NoTrace), tail-sampled exemplar
// retention, and the route/shard/hedge-annotated slow-log entry. Cache
// hits never reach here — a hit has no fan-out worth tracing.
func (c *Cluster) askRoot(ctx context.Context, question string) (*resilient.Answer, error) {
	start := time.Now()
	var trace *obs.QueryTrace
	if !c.cfg.NoTrace {
		ctx, trace = obs.NewQueryTrace(ctx, question)
	}
	st := &reqStats{}
	ans, err := c.ask(ctx, question, st)
	elapsed := time.Since(start)
	outcome := askOutcome(err)
	partial := ans != nil && ans.Partial
	engine := "none"
	if ans != nil && ans.Engine != "" {
		engine = ans.Engine
	}
	var tid obs.TraceID
	if trace != nil {
		tid = trace.ID
		root := trace.Root
		if st.route != "" {
			root.SetAttr("route", st.route)
		}
		root.SetAttr("outcome", outcome)
		if partial {
			root.SetAttr("partial", "true")
		}
		root.End()
		if ans != nil {
			ans.Trace = trace
		}
		c.cfg.Traces.Offer(trace, outcome, elapsed, partial)
	}
	c.cfg.SlowLog.Observe(obs.SlowEntry{
		Question: question, Engine: engine, Outcome: outcome,
		Duration: elapsed, When: time.Now(), Trace: trace,
		TraceID: tid, Route: st.route, Shards: int(st.shards.Load()),
		Partial: partial, Hedged: int(st.hedged.Load()),
		Retries: int(st.retries.Load()), DroppedSpans: trace.DroppedTotal(),
	})
	return ans, err
}

// AskSQL executes one trusted SQL statement over the fleet, mirroring the
// single-gateway AskSQL contract: no NL chain, no answer cache — just
// classification and routed execution with the coordinator's full
// deadline, retry, hedging, and telemetry treatment. It is how dialogue
// turns execute when serving is sharded: the session layer resolves a
// follow-up to SQL, and that SQL routes exactly like any distributed
// statement (pruned to its owner shard, or scatter-gathered with partial
// aggregates merged).
func (c *Cluster) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	start := time.Now()
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	var trace *obs.QueryTrace
	if !c.cfg.NoTrace {
		ctx, trace = obs.NewQueryTrace(ctx, sql)
	}
	st := &reqStats{}
	ans, err := c.askSQL(ctx, sql, st)
	elapsed := time.Since(start)
	outcome := askOutcome(err)
	partial := ans != nil && ans.Partial
	if trace != nil {
		root := trace.Root
		root.SetAttr("engine", resilient.SQLEngine)
		if st.route != "" {
			root.SetAttr("route", st.route)
		}
		root.SetAttr("outcome", outcome)
		if partial {
			root.SetAttr("partial", "true")
		}
		root.End()
		if ans != nil {
			ans.Trace = trace
		}
		c.cfg.Traces.Offer(trace, outcome, elapsed, partial)
	}
	var tid obs.TraceID
	if trace != nil {
		tid = trace.ID
	}
	c.cfg.SlowLog.Observe(obs.SlowEntry{
		Question: sql, Engine: resilient.SQLEngine, Outcome: outcome,
		Duration: elapsed, When: time.Now(), Trace: trace,
		TraceID: tid, Route: st.route, Shards: int(st.shards.Load()),
		Partial: partial, Hedged: int(st.hedged.Load()),
		Retries: int(st.retries.Load()), DroppedSpans: trace.DroppedTotal(),
	})
	if ans != nil {
		ans.Elapsed = elapsed
	}
	return ans, err
}

// askSQL is AskSQL minus deadline and trace-root wrapping: parse,
// classify, route.
func (c *Cluster) askSQL(ctx context.Context, sql string, st *reqStats) (*resilient.Answer, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	_, csp := childSpan(ctx, "classify")
	rt, cerr := classify(stmt, c.part)
	if cerr != nil {
		csp.SetAttr("error", cerr.Error())
		csp.End()
		return nil, cerr
	}
	switch rt.kind {
	case routeHome:
		csp.SetAttr("route", "home")
	case routePruned:
		csp.SetAttr("route", "pruned")
		csp.SetAttr("shard", strconv.Itoa(rt.shard))
	default:
		csp.SetAttr("route", "scatter")
	}
	csp.End()

	switch rt.kind {
	case routeHome:
		// Any shard can answer (no partitioned table involved): run it on
		// the rendezvous-home shard, failing over like interpretation does.
		c.countRoute("home", st)
		var ans *resilient.Answer
		for _, s := range c.rendezvous(sql) {
			ans, err = c.askShard(ctx, s, sql, false, st)
			if err == nil {
				return ans, nil
			}
			if ctx.Err() != nil || !errors.Is(err, ErrShardDown) {
				return nil, err
			}
		}
		return nil, err // every shard down
	case routePruned:
		c.countRoute("pruned", st)
		return c.askShard(ctx, rt.shard, sql, false, st)
	default:
		c.countRoute("scatter", st)
		phase1 := &resilient.Answer{Engine: resilient.SQLEngine, SQL: stmt, Score: 1}
		return c.scatter(ctx, phase1, rt, st)
	}
}

// askOutcome maps an Ask error to its outcome label.
func askOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrShardDown):
		return "shard_down"
	case errors.Is(err, ErrNotDistributable):
		return "not_distributable"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, resilient.ErrExhausted):
		return "exhausted"
	default:
		return "error"
	}
}

// childSpan starts a span under the coordinator trace, or no-ops (nil
// span, unchanged ctx) when tracing is off for this request — keeping the
// NoTrace hot path allocation-free.
func childSpan(ctx context.Context, name string) (context.Context, *obs.Span) {
	if obs.FromContext(ctx) == nil {
		return ctx, nil
	}
	return obs.StartSpan(ctx, name)
}

// childSpanf is childSpan with a formatted name, formatted only when a
// trace is live.
func childSpanf(ctx context.Context, format string, args ...any) (context.Context, *obs.Span) {
	if obs.FromContext(ctx) == nil {
		return ctx, nil
	}
	return obs.StartSpan(ctx, fmt.Sprintf(format, args...))
}

// ask is Ask minus deadline, cache, and trace-root wrapping.
func (c *Cluster) ask(ctx context.Context, question string, st *reqStats) (*resilient.Answer, error) {
	// Phase 1: interpret (and execute locally) on the home replica, with
	// failover to the next rendezvous shard when a whole shard is down —
	// interpretation only needs the shared chain, so any shard can do it.
	order := c.rendezvous(question)
	ictx, isp := childSpan(ctx, "interpret")
	var ans *resilient.Answer
	var err error
	home := -1
	for _, s := range order {
		ans, err = c.askShard(ictx, s, question, true, st)
		if err == nil {
			home = s
			break
		}
		if ctx.Err() != nil || !errors.Is(err, ErrShardDown) {
			// Interpretation failures repeat identically on every shard
			// (the chain is shared); only shard-down errors fail over.
			isp.End()
			return nil, err
		}
	}
	if err != nil {
		isp.End()
		return nil, err // every shard down
	}
	isp.SetAttr("home", strconv.Itoa(home))
	isp.End()
	if c.n == 1 {
		c.countRoute("home", st)
		return ans, nil
	}
	if ans.SQL == nil {
		st.route = "home" // no SQL to distribute; the home answer stands
		return ans, nil
	}

	_, csp := childSpan(ctx, "classify")
	rt, cerr := classify(ans.SQL, c.part)
	if cerr != nil {
		csp.SetAttr("error", cerr.Error())
		csp.End()
		return nil, cerr
	}
	switch rt.kind {
	case routeHome:
		csp.SetAttr("route", "home")
	case routePruned:
		csp.SetAttr("route", "pruned")
		csp.SetAttr("shard", strconv.Itoa(rt.shard))
	default:
		csp.SetAttr("route", "scatter")
	}
	csp.End()

	switch rt.kind {
	case routeHome:
		c.countRoute("home", st)
		return ans, nil
	case routePruned:
		c.countRoute("pruned", st)
		if rt.shard == home {
			return ans, nil // interpreted where the rows live: already complete
		}
		sqlAns, serr := c.askShard(ctx, rt.shard, ans.SQL.String(), false, st)
		if serr != nil {
			return nil, serr
		}
		out := *ans
		out.Result = sqlAns.Result
		out.Usage = sqlAns.Usage
		return &out, nil
	default:
		c.countRoute("scatter", st)
		return c.scatter(ctx, ans, rt, st)
	}
}

// scatter fans the partial statement out to every shard, merges what
// comes back, and annotates what could not.
func (c *Cluster) scatter(ctx context.Context, phase1 *resilient.Answer, rt *route, st *reqStats) (*resilient.Answer, error) {
	ctx, ssp := childSpan(ctx, "scatter")
	defer ssp.End()
	ssp.Add("shards", int64(c.n))
	type leg struct {
		idx int
		ans *resilient.Answer
		err error
	}
	ch := make(chan leg, c.n)
	for s := 0; s < c.n; s++ {
		go func(s int) {
			a, e := c.askShard(ctx, s, rt.partialSQL, false, st)
			ch <- leg{idx: s, ans: a, err: e}
		}(s)
	}
	partials := make([]*sqldata.Result, c.n)
	var missing []int
	var firstErr error
	var usage sqlexec.Usage
	got := 0
	for i := 0; i < c.n; i++ {
		l := <-ch
		if l.err != nil {
			if firstErr == nil {
				firstErr = l.err
			}
			missing = append(missing, l.idx)
			if m := c.cfg.Metrics; m != nil {
				m.Counter(MetricShardDown, "shard", strconv.Itoa(l.idx)).Inc()
			}
			continue
		}
		partials[l.idx] = l.ans.Result
		usage.Rows += l.ans.Usage.Rows
		usage.JoinRows += l.ans.Usage.JoinRows
		usage.Subqueries += l.ans.Usage.Subqueries
		got++
	}
	if got == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("shard: scatter produced no results")
	}
	_, msp := childSpan(ctx, "merge")
	msp.Add("merged", int64(got))
	res, err := rt.merge.merge(partials)
	if err != nil {
		msp.SetAttr("error", err.Error())
		msp.End()
		return nil, err
	}
	if res != nil {
		msp.Add("rows", int64(len(res.Rows)))
	}
	sort.Ints(missing)
	out := *phase1
	out.Result = res
	out.Usage = usage
	out.Partial = len(missing) > 0
	out.MissingShards = missing
	if out.Partial {
		msp.SetAttr("missing", fmt.Sprint(missing))
		c.partials.Add(1)
		if m := c.cfg.Metrics; m != nil {
			m.Counter(MetricPartial).Inc()
		}
	}
	msp.End()
	return &out, nil
}

// askShard runs one statement (NL question or SQL) on shard s: pick the
// least-loaded healthy replica, hedge to a second after the latency-
// percentile delay, and retry with jittered backoff against replicas not
// yet tried. Failures that would repeat identically on any replica (the
// chain has no reading of the question) return as-is; infrastructure
// failures exhaust into a *ShardDownError.
func (c *Cluster) askShard(ctx context.Context, s int, q string, nl bool, st *reqStats) (*resilient.Answer, error) {
	ctx, sp := childSpanf(ctx, "shard %d", s)
	defer sp.End()
	if nl {
		sp.SetAttr("stmt", "nl")
	} else {
		sp.SetAttr("stmt", "sql")
	}
	st.shards.Add(1)
	tried := map[*replica]bool{}
	var lastErr error
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		lctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		ans, err := c.legOnce(lctx, s, q, nl, tried, st)
		cancel()
		if err == nil {
			return ans, nil
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return nil, err
		}
		if !errors.Is(err, ErrShardDown) && !replicaCountable(err) && !errors.Is(err, ErrBackpressure) {
			// Semantic and protocol failures repeat identically on every
			// replica: return as-is. Backpressure is the exception among
			// non-countable errors — the replica shed under load, so the
			// leg is worth retrying elsewhere.
			return nil, err
		}
		lastErr = err
		if try >= c.cfg.Retries {
			break
		}
		sp.Add("retries", 1)
		st.retries.Add(1)
		c.stats[s].retries.Add(1)
		if m := c.cfg.Metrics; m != nil {
			m.Counter(MetricRetries, "shard", strconv.Itoa(s)).Inc()
		}
		delay := c.backoff(try)
		if len(tried) >= len(c.reps[s]) {
			// Every replica has had a direct attempt this leg; let the
			// next round reconsider all of them. When the whole replica
			// set shed (backpressure), honor the server's Retry-After —
			// capped so a scatter leg never parks for a whole advisory
			// second inside a 2s budget.
			clear(tried)
			if ra := retryAfterHint(lastErr); ra > delay {
				if ra > 250*time.Millisecond {
					ra = 250 * time.Millisecond
				}
				delay = ra
			}
		}
		if !c.sleep(ctx, delay) {
			break
		}
	}
	sp.SetAttr("outcome", "shard_down")
	c.stats[s].downLegs.Add(1)
	return nil, &ShardDownError{Shard: s, Err: lastErr}
}

// backoff is the jittered exponential retry delay for attempt number try
// (0-based): base<<try, plus up to 50% random jitter.
func (c *Cluster) backoff(try int) time.Duration {
	d := c.cfg.RetryBackoff << uint(try)
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + j
}

func (c *Cluster) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// legOnce makes one hedged attempt on shard s: the best untried healthy
// replica leads; if it fails fast the second-best takes over immediately,
// and if it is merely slow the second-best is hedged in after the
// latency-percentile delay, first answer wins.
func (c *Cluster) legOnce(ctx context.Context, s int, q string, nl bool, tried map[*replica]bool, st *reqStats) (*resilient.Answer, error) {
	prim, alt := c.pick(s, tried)
	if prim == nil {
		return nil, &ShardDownError{Shard: s}
	}
	tried[prim] = true
	if alt == nil || c.cfg.NoHedge {
		ans, err := c.call(ctx, prim, q, nl, "primary")
		if err == nil || alt == nil {
			return ans, err
		}
		tried[alt] = true
		return c.call(ctx, alt, q, nl, "failover")
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type rres struct {
		from *replica
		ans  *resilient.Answer
		err  error
	}
	ch := make(chan rres, 2)
	launch := func(r *replica, kind string) {
		go func() {
			a, e := c.call(cctx, r, q, nl, kind)
			ch <- rres{from: r, ans: a, err: e}
		}()
	}
	launch(prim, "primary")
	pending := 1
	hedged := false     // alt has been launched, for any reason
	hedgeFired := false // alt was launched by the hedge timer specifically
	timer := time.NewTimer(c.hedgeDelay(s))
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if hedgeFired && r.from == alt {
					// The hedge beat (or outlived) the primary: the fleet's
					// tail-latency insurance paid out.
					c.stats[s].hedgeWins.Add(1)
					obs.FromContext(ctx).SetAttr("hedge_win", "r"+strconv.Itoa(alt.idx))
				}
				return r.ans, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedged {
				// The primary failed before the hedge delay elapsed:
				// fail over immediately instead of waiting.
				timer.Stop()
				hedged = true
				tried[alt] = true
				launch(alt, "failover")
				pending++
				continue
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			hedged = true
			hedgeFired = true
			tried[alt] = true
			st.hedged.Add(1)
			c.stats[s].hedges.Add(1)
			if m := c.cfg.Metrics; m != nil {
				m.Counter(MetricHedges, "shard", strconv.Itoa(s)).Inc()
			}
			launch(alt, "hedge")
			pending++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// pick returns the two best (lowest-load) healthy replicas of shard s not
// in exclude. healthy() admits half-open probes, so a cooling breaker
// gets its single probe through here.
func (c *Cluster) pick(s int, exclude map[*replica]bool) (best, second *replica) {
	for _, r := range c.reps[s] {
		if exclude[r] || !r.healthy() {
			continue
		}
		switch {
		case best == nil || r.load() < best.load():
			second = best
			best = r
		case second == nil || r.load() < second.load():
			second = r
		}
	}
	return best, second
}

// hedgeDelay is how long shard s's primary gets before a hedge launches:
// the shard's HedgeQuantile latency, clamped to [HedgeMin, HedgeMax];
// HedgeMax until the reservoir has enough samples to trust.
func (c *Cluster) hedgeDelay(s int) time.Duration {
	h := c.hists[s]
	if h.Count() < 16 {
		return c.cfg.HedgeMax
	}
	d := time.Duration(h.Quantile(c.cfg.HedgeQuantile) * float64(time.Second))
	if d < c.cfg.HedgeMin {
		return c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		return c.cfg.HedgeMax
	}
	return d
}

// call sends one request to one replica and folds the outcome into its
// health state and the shard's latency reservoir. kind labels why this
// attempt exists ("primary", "failover", "hedge") on its trace span; the
// replica's own gateway trace nests beneath the span, so one coordinator
// tree shows the whole cross-node story.
func (c *Cluster) call(ctx context.Context, r *replica, q string, nl bool, kind string) (*resilient.Answer, error) {
	ctx, sp := childSpan(ctx, "attempt")
	sp.SetAttr("replica", strconv.Itoa(r.idx))
	sp.SetAttr("kind", kind)
	sp.SetAttr("breaker", r.br.State())
	r.inflight.Add(1)
	c.stats[r.shard].requests.Add(1)
	t0 := time.Now()
	var ans *resilient.Answer
	var err error
	if nl {
		ans, err = r.node.Ask(ctx, q)
	} else {
		ans, err = r.node.AskSQL(ctx, q)
	}
	elapsed := time.Since(t0)
	r.inflight.Add(-1)
	r.observe(err, elapsed)
	c.hists[r.shard].Observe(elapsed.Seconds())
	outcome := callOutcome(err)
	sp.SetAttr("outcome", outcome)
	sp.End()
	if m := c.cfg.Metrics; m != nil {
		sl := strconv.Itoa(r.shard)
		m.Counter(MetricRequests, "shard", sl, "outcome", outcome).Inc()
		m.Histogram(MetricReplicaSeconds, "shard", sl).Observe(elapsed.Seconds())
	}
	return ans, err
}

// callOutcome maps a replica-call error to its metric label.
func callOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNodeDown):
		return "down"
	case errors.Is(err, ErrBackpressure):
		return "backpressure"
	case errors.Is(err, ErrStaleEpoch):
		return "stale_epoch"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

func (c *Cluster) countRoute(route string, st *reqStats) {
	st.route = route
	switch route {
	case "home":
		c.routeHome.Add(1)
	case "pruned":
		c.routePruned.Add(1)
	case "scatter":
		c.routeScatter.Add(1)
	}
	if m := c.cfg.Metrics; m != nil {
		m.Counter(MetricRoutes, "route", route).Inc()
	}
}

// rendezvous orders shards by highest-random-weight for the question's
// normalized cache key: element 0 is the home shard, the rest the
// failover order. Every process computing this over the same N gets the
// same order, which is what lets a fleet interpret and cache each
// question exactly once.
func (c *Cluster) rendezvous(question string) []int {
	key := qcache.Key(question)
	type sw struct {
		s int
		w uint64
	}
	ws := make([]sw, c.n)
	for s := 0; s < c.n; s++ {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{'#', byte(s), byte(s >> 8)})
		ws[s] = sw{s: s, w: h.Sum64()}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].s < ws[j].s
	})
	out := make([]int, c.n)
	for i, w := range ws {
		out[i] = w.s
	}
	return out
}

// ServeBatch answers every question using a bounded worker pool and
// returns results in input order, mirroring the single-gateway
// ServeBatch contract: questions not started when ctx ends fail with
// resilient.ErrShed, so callers can resubmit exactly the unserved tail.
func (c *Cluster) ServeBatch(ctx context.Context, questions []string) []resilient.BatchResult {
	out := make([]resilient.BatchResult, len(questions))
	if len(questions) == 0 {
		return out
	}
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(questions) {
		workers = len(questions)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(questions) {
					return
				}
				q := questions[i]
				if err := ctx.Err(); err != nil {
					out[i] = resilient.BatchResult{Index: i, Question: q, Err: fmt.Errorf("%w: %w", resilient.ErrShed, err)}
					continue
				}
				ans, err := c.Ask(ctx, q)
				out[i] = resilient.BatchResult{Index: i, Question: q, Answer: ans, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
