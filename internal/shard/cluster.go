package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

// Config tunes a Cluster. The zero value is serviceable: 1 replica per
// shard, 2s per-shard timeout, 2 retries with 2ms jittered exponential
// backoff, hedging at the shard's p95 clamped to [1ms, 50ms], a 4096-entry
// fleet-wide answer cache, and replica breakers opening after 3
// consecutive failures with a 1s jittered cooldown.
type Config struct {
	// Replicas is the replication factor R: every shard's partition is
	// served by R identical gateways (default 1).
	Replicas int
	// Chain is the interpreter fallback chain shared by every replica.
	// Build it over the FULL source database, not a partition: value
	// vocabularies then match fleet-wide, so every replica interprets a
	// question to the same SQL and routing is deterministic.
	Chain []nlq.Interpreter
	// Gateway is the per-replica gateway template. Cache, PlanCache, and
	// Metrics are overridden per replica (the cluster caches fleet-wide
	// and owns the metric namespace); everything else is passed through.
	Gateway resilient.Config

	// Timeout bounds one whole Ask, fan-out included (0 = none).
	Timeout time.Duration
	// ShardTimeout bounds each per-shard leg, so one stuck shard cannot
	// consume the whole deadline (default 2s).
	ShardTimeout time.Duration
	// Retries is how many times a failed shard leg is retried against
	// other replicas (default 2).
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between leg retries (default 2ms).
	RetryBackoff time.Duration

	// HedgeQuantile is the shard-latency percentile after which a second
	// replica is hedged (default 0.95).
	HedgeQuantile float64
	// HedgeMin / HedgeMax clamp the hedge delay (defaults 1ms / 50ms).
	// Until a shard has enough samples the delay is HedgeMax.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// NoHedge disables hedged requests (failover on failure still works).
	NoHedge bool

	// ReplicaThreshold / ReplicaCooldown tune each replica's circuit
	// breaker (defaults 3 and 1s; cooldowns carry jitter derived from
	// Seed so replicas never probe in lockstep).
	ReplicaThreshold int
	ReplicaCooldown  time.Duration

	// CacheSize bounds the fleet-wide answer cache (default 4096;
	// negative disables caching). Partial answers are never cached.
	CacheSize int
	// CacheTTL expires cached answers (0 = forever).
	CacheTTL time.Duration
	// PlanCacheSize bounds each replica's plan cache (default 256;
	// negative disables). Plan caches are strictly per-replica: plans
	// bind to one partition's tables and must never cross shards.
	PlanCacheSize int

	// Metrics receives the nlidb_shard_* families.
	Metrics *obs.Registry
	// Seed makes retry jitter and breaker-probe jitter replayable
	// (default 1).
	Seed int64
	// Workers bounds ServeBatch's worker pool (default GOMAXPROCS).
	Workers int

	// WrapNode, when non-nil, wraps every replica node at build time —
	// the chaos harness uses it to interpose ChaosNode kill switches.
	WrapNode func(shard, replica int, n Node) Node

	// Now is the breaker clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// Cluster is the sharded serving fleet: N shards × R replicas behind one
// Ask/ServeBatch façade with health-checked, load-aware, hedged routing
// and graceful degradation. Safe for concurrent use.
type Cluster struct {
	cfg   Config
	n     int
	part  *Partitioning
	dbs   []*sqldata.Database
	reps  [][]*replica
	hists []*obs.Histogram // per-shard latency reservoirs driving hedge delays
	cache *qcache.Cache
	fp    uint64

	flight qcache.Flight

	mu  sync.Mutex
	rng *rand.Rand
}

// New splits db across n shards and builds the replica fleet. The
// interpreter chain in cfg.Chain should be built over db itself (see
// Config.Chain); the shard databases only ever execute SQL.
func New(db *sqldata.Database, n int, cfg Config) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile > 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = time.Millisecond
	}
	if cfg.HedgeMax < cfg.HedgeMin {
		cfg.HedgeMax = 50 * time.Millisecond
		if cfg.HedgeMax < cfg.HedgeMin {
			cfg.HedgeMax = cfg.HedgeMin
		}
	}
	if cfg.ReplicaThreshold <= 0 {
		cfg.ReplicaThreshold = 3
	}
	if cfg.ReplicaCooldown <= 0 {
		cfg.ReplicaCooldown = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	dbs, part, err := Split(db, n)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		n:     n,
		part:  part,
		dbs:   dbs,
		reps:  make([][]*replica, n),
		hists: make([]*obs.Histogram, n),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	h := fnv.New64a()
	for _, d := range dbs {
		var buf [8]byte
		fp := d.Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	c.fp = h.Sum64()

	if cfg.CacheSize >= 0 {
		c.cache = qcache.New(qcache.Config{MaxEntries: cfg.CacheSize, TTL: cfg.CacheTTL, Metrics: cfg.Metrics})
	}

	for s := 0; s < n; s++ {
		c.hists[s] = obs.NewHistogram()
		c.reps[s] = make([]*replica, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			gwCfg := cfg.Gateway
			gwCfg.Cache = nil // the cluster caches fleet-wide
			gwCfg.Metrics = nil
			if cfg.PlanCacheSize >= 0 {
				size := cfg.PlanCacheSize
				if size == 0 {
					size = 256
				}
				gwCfg.PlanCache = qcache.New(qcache.Config{MaxEntries: size})
			} else {
				gwCfg.PlanCache = nil
			}
			var node Node = &LocalNode{GW: resilient.New(dbs[s], cfg.Chain, gwCfg)}
			if cfg.WrapNode != nil {
				node = cfg.WrapNode(s, r, node)
			}
			br := resilient.NewBreaker(cfg.ReplicaThreshold, cfg.ReplicaCooldown, cfg.Now)
			br.SetJitter(resilient.DefaultBreakerJitter(cfg.ReplicaCooldown), cfg.Seed+int64(s*cfg.Replicas+r))
			rep := &replica{shard: s, idx: r, node: node, br: br}
			if m := cfg.Metrics; m != nil {
				sl, rl := strconv.Itoa(s), strconv.Itoa(r)
				g := m.Gauge(MetricReplicaState, "shard", sl, "replica", rl)
				g.Set(resilient.StateValue("closed"))
				br.OnTransition(func(from, to string) { g.Set(resilient.StateValue(to)) })
			}
			c.reps[s][r] = rep
		}
	}
	c.preregisterMetrics()
	return c, nil
}

func (c *Cluster) preregisterMetrics() {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter(MetricPartial)
	for _, route := range []string{"home", "pruned", "scatter"} {
		m.Counter(MetricRoutes, "route", route)
	}
	for s := 0; s < c.n; s++ {
		sl := strconv.Itoa(s)
		m.Counter(MetricRequests, "shard", sl, "outcome", "ok")
		m.Histogram(MetricReplicaSeconds, "shard", sl)
		m.Counter(MetricHedges, "shard", sl)
		m.Counter(MetricRetries, "shard", sl)
		m.Counter(MetricShardDown, "shard", sl)
	}
}

// ShardCount returns N.
func (c *Cluster) ShardCount() int { return c.n }

// ReplicaCount returns R.
func (c *Cluster) ReplicaCount() int { return c.cfg.Replicas }

// Partitioning exposes the row-placement map for introspection.
func (c *Cluster) Partitioning() *Partitioning { return c.part }

// ReplicaStates reports every replica breaker's state, indexed
// [shard][replica].
func (c *Cluster) ReplicaStates() [][]string {
	out := make([][]string, c.n)
	for s := range c.reps {
		out[s] = make([]string, len(c.reps[s]))
		for r, rep := range c.reps[s] {
			out[s][r] = rep.br.State()
		}
	}
	return out
}

// Ask answers one natural-language question over the sharded fleet: the
// question routes consistent-hash to a home replica for interpretation
// (and, when the data allows, the complete answer); the interpreted SQL
// is then pruned to its owner shard or scatter-gathered across all shards
// with partial aggregates merged. Degradation is explicit: a dead shard
// fails pruned questions for that shard with ErrShardDown, while
// scatter-gather answers come back with Partial set and MissingShards
// naming what is absent — never silently wrong. Answers route through a
// fleet-wide cache keyed like the gateway's, with concurrent identical
// misses collapsed.
func (c *Cluster) Ask(ctx context.Context, question string) (*resilient.Answer, error) {
	start := time.Now()
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}

	if c.cache == nil {
		ans, err := c.ask(ctx, question)
		if ans != nil {
			ans.Elapsed = time.Since(start)
		}
		return ans, err
	}

	key := qcache.WithFingerprint(c.fp, qcache.Key(question))
	if v, ok := c.cache.Get(key); ok {
		hit := *(v.(*resilient.Answer)) // shallow copy; SQL/Result shared read-only
		hit.Cached = true
		hit.Elapsed = time.Since(start)
		return &hit, nil
	}
	var mine *resilient.Answer
	v, err, shared := c.flight.Do(ctx, key, func() (any, error) {
		a, e := c.ask(ctx, question)
		mine = a
		if e != nil {
			return nil, e
		}
		sh := &resilient.Answer{
			Engine: a.Engine, SQL: a.SQL, Result: a.Result, Score: a.Score,
			Simplified: a.Simplified, Usage: a.Usage,
			Partial: a.Partial, MissingShards: a.MissingShards,
		}
		if !a.Partial {
			c.cache.Put(key, sh)
		}
		return sh, nil
	})
	var ans *resilient.Answer
	switch {
	case !shared:
		ans = mine // leader (or a follower canceled while waiting: nil)
	case err == nil:
		hit := *(v.(*resilient.Answer))
		hit.Cached = true
		ans = &hit
	}
	if ans != nil {
		ans.Elapsed = time.Since(start)
	}
	return ans, err
}

// ask is Ask minus deadline and cache wrapping.
func (c *Cluster) ask(ctx context.Context, question string) (*resilient.Answer, error) {
	// Phase 1: interpret (and execute locally) on the home replica, with
	// failover to the next rendezvous shard when a whole shard is down —
	// interpretation only needs the shared chain, so any shard can do it.
	order := c.rendezvous(question)
	var ans *resilient.Answer
	var err error
	home := -1
	for _, s := range order {
		ans, err = c.askShard(ctx, s, question, true)
		if err == nil {
			home = s
			break
		}
		if ctx.Err() != nil || !errors.Is(err, ErrShardDown) {
			// Interpretation failures repeat identically on every shard
			// (the chain is shared); only shard-down errors fail over.
			return nil, err
		}
	}
	if err != nil {
		return nil, err // every shard down
	}
	if c.n == 1 {
		c.countRoute("home")
		return ans, nil
	}
	if ans.SQL == nil {
		return ans, nil
	}

	rt, cerr := classify(ans.SQL, c.part)
	if cerr != nil {
		return nil, cerr
	}
	switch rt.kind {
	case routeHome:
		c.countRoute("home")
		return ans, nil
	case routePruned:
		c.countRoute("pruned")
		if rt.shard == home {
			return ans, nil // interpreted where the rows live: already complete
		}
		sqlAns, serr := c.askShard(ctx, rt.shard, ans.SQL.String(), false)
		if serr != nil {
			return nil, serr
		}
		out := *ans
		out.Result = sqlAns.Result
		out.Usage = sqlAns.Usage
		return &out, nil
	default:
		c.countRoute("scatter")
		return c.scatter(ctx, ans, rt)
	}
}

// scatter fans the partial statement out to every shard, merges what
// comes back, and annotates what could not.
func (c *Cluster) scatter(ctx context.Context, phase1 *resilient.Answer, rt *route) (*resilient.Answer, error) {
	type leg struct {
		idx int
		ans *resilient.Answer
		err error
	}
	ch := make(chan leg, c.n)
	for s := 0; s < c.n; s++ {
		go func(s int) {
			a, e := c.askShard(ctx, s, rt.partialSQL, false)
			ch <- leg{idx: s, ans: a, err: e}
		}(s)
	}
	partials := make([]*sqldata.Result, c.n)
	var missing []int
	var firstErr error
	var usage sqlexec.Usage
	got := 0
	for i := 0; i < c.n; i++ {
		l := <-ch
		if l.err != nil {
			if firstErr == nil {
				firstErr = l.err
			}
			missing = append(missing, l.idx)
			if m := c.cfg.Metrics; m != nil {
				m.Counter(MetricShardDown, "shard", strconv.Itoa(l.idx)).Inc()
			}
			continue
		}
		partials[l.idx] = l.ans.Result
		usage.Rows += l.ans.Usage.Rows
		usage.JoinRows += l.ans.Usage.JoinRows
		usage.Subqueries += l.ans.Usage.Subqueries
		got++
	}
	if got == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("shard: scatter produced no results")
	}
	res, err := rt.merge.merge(partials)
	if err != nil {
		return nil, err
	}
	sort.Ints(missing)
	out := *phase1
	out.Result = res
	out.Usage = usage
	out.Partial = len(missing) > 0
	out.MissingShards = missing
	if out.Partial {
		if m := c.cfg.Metrics; m != nil {
			m.Counter(MetricPartial).Inc()
		}
	}
	return &out, nil
}

// askShard runs one statement (NL question or SQL) on shard s: pick the
// least-loaded healthy replica, hedge to a second after the latency-
// percentile delay, and retry with jittered backoff against replicas not
// yet tried. Failures that would repeat identically on any replica (the
// chain has no reading of the question) return as-is; infrastructure
// failures exhaust into a *ShardDownError.
func (c *Cluster) askShard(ctx context.Context, s int, q string, nl bool) (*resilient.Answer, error) {
	tried := map[*replica]bool{}
	var lastErr error
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		lctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		ans, err := c.legOnce(lctx, s, q, nl, tried)
		cancel()
		if err == nil {
			return ans, nil
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return nil, err
		}
		if !errors.Is(err, ErrShardDown) && !replicaCountable(err) {
			return nil, err // semantic failure: identical on every replica
		}
		lastErr = err
		if try >= c.cfg.Retries {
			break
		}
		if m := c.cfg.Metrics; m != nil {
			m.Counter(MetricRetries, "shard", strconv.Itoa(s)).Inc()
		}
		if len(tried) >= len(c.reps[s]) {
			// Every replica has had a direct attempt this leg; let the
			// next round reconsider all of them.
			clear(tried)
		}
		if !c.sleep(ctx, c.backoff(try)) {
			break
		}
	}
	return nil, &ShardDownError{Shard: s, Err: lastErr}
}

// backoff is the jittered exponential retry delay for attempt number try
// (0-based): base<<try, plus up to 50% random jitter.
func (c *Cluster) backoff(try int) time.Duration {
	d := c.cfg.RetryBackoff << uint(try)
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + j
}

func (c *Cluster) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// legOnce makes one hedged attempt on shard s: the best untried healthy
// replica leads; if it fails fast the second-best takes over immediately,
// and if it is merely slow the second-best is hedged in after the
// latency-percentile delay, first answer wins.
func (c *Cluster) legOnce(ctx context.Context, s int, q string, nl bool, tried map[*replica]bool) (*resilient.Answer, error) {
	prim, alt := c.pick(s, tried)
	if prim == nil {
		return nil, &ShardDownError{Shard: s}
	}
	tried[prim] = true
	if alt == nil || c.cfg.NoHedge {
		ans, err := c.call(ctx, prim, q, nl)
		if err == nil || alt == nil {
			return ans, err
		}
		tried[alt] = true
		return c.call(ctx, alt, q, nl)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type rres struct {
		ans *resilient.Answer
		err error
	}
	ch := make(chan rres, 2)
	launch := func(r *replica) {
		go func() {
			a, e := c.call(cctx, r, q, nl)
			ch <- rres{ans: a, err: e}
		}()
	}
	launch(prim)
	pending := 1
	hedged := false
	timer := time.NewTimer(c.hedgeDelay(s))
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.ans, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedged {
				// The primary failed before the hedge delay elapsed:
				// fail over immediately instead of waiting.
				timer.Stop()
				hedged = true
				tried[alt] = true
				launch(alt)
				pending++
				continue
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			hedged = true
			tried[alt] = true
			if m := c.cfg.Metrics; m != nil {
				m.Counter(MetricHedges, "shard", strconv.Itoa(s)).Inc()
			}
			launch(alt)
			pending++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// pick returns the two best (lowest-load) healthy replicas of shard s not
// in exclude. healthy() admits half-open probes, so a cooling breaker
// gets its single probe through here.
func (c *Cluster) pick(s int, exclude map[*replica]bool) (best, second *replica) {
	for _, r := range c.reps[s] {
		if exclude[r] || !r.healthy() {
			continue
		}
		switch {
		case best == nil || r.load() < best.load():
			second = best
			best = r
		case second == nil || r.load() < second.load():
			second = r
		}
	}
	return best, second
}

// hedgeDelay is how long shard s's primary gets before a hedge launches:
// the shard's HedgeQuantile latency, clamped to [HedgeMin, HedgeMax];
// HedgeMax until the reservoir has enough samples to trust.
func (c *Cluster) hedgeDelay(s int) time.Duration {
	h := c.hists[s]
	if h.Count() < 16 {
		return c.cfg.HedgeMax
	}
	d := time.Duration(h.Quantile(c.cfg.HedgeQuantile) * float64(time.Second))
	if d < c.cfg.HedgeMin {
		return c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		return c.cfg.HedgeMax
	}
	return d
}

// call sends one request to one replica and folds the outcome into its
// health state and the shard's latency reservoir.
func (c *Cluster) call(ctx context.Context, r *replica, q string, nl bool) (*resilient.Answer, error) {
	r.inflight.Add(1)
	t0 := time.Now()
	var ans *resilient.Answer
	var err error
	if nl {
		ans, err = r.node.Ask(ctx, q)
	} else {
		ans, err = r.node.AskSQL(ctx, q)
	}
	elapsed := time.Since(t0)
	r.inflight.Add(-1)
	r.observe(err, elapsed)
	c.hists[r.shard].Observe(elapsed.Seconds())
	if m := c.cfg.Metrics; m != nil {
		sl := strconv.Itoa(r.shard)
		m.Counter(MetricRequests, "shard", sl, "outcome", callOutcome(err)).Inc()
		m.Histogram(MetricReplicaSeconds, "shard", sl).Observe(elapsed.Seconds())
	}
	return ans, err
}

// callOutcome maps a replica-call error to its metric label.
func callOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNodeDown):
		return "down"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

func (c *Cluster) countRoute(route string) {
	if m := c.cfg.Metrics; m != nil {
		m.Counter(MetricRoutes, "route", route).Inc()
	}
}

// rendezvous orders shards by highest-random-weight for the question's
// normalized cache key: element 0 is the home shard, the rest the
// failover order. Every process computing this over the same N gets the
// same order, which is what lets a fleet interpret and cache each
// question exactly once.
func (c *Cluster) rendezvous(question string) []int {
	key := qcache.Key(question)
	type sw struct {
		s int
		w uint64
	}
	ws := make([]sw, c.n)
	for s := 0; s < c.n; s++ {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{'#', byte(s), byte(s >> 8)})
		ws[s] = sw{s: s, w: h.Sum64()}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].s < ws[j].s
	})
	out := make([]int, c.n)
	for i, w := range ws {
		out[i] = w.s
	}
	return out
}

// ServeBatch answers every question using a bounded worker pool and
// returns results in input order, mirroring the single-gateway
// ServeBatch contract: questions not started when ctx ends fail with
// resilient.ErrShed, so callers can resubmit exactly the unserved tail.
func (c *Cluster) ServeBatch(ctx context.Context, questions []string) []resilient.BatchResult {
	out := make([]resilient.BatchResult, len(questions))
	if len(questions) == 0 {
		return out
	}
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(questions) {
		workers = len(questions)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(questions) {
					return
				}
				q := questions[i]
				if err := ctx.Err(); err != nil {
					out[i] = resilient.BatchResult{Index: i, Question: q, Err: fmt.Errorf("%w: %w", resilient.ErrShed, err)}
					continue
				}
				ans, err := c.Ask(ctx, q)
				out[i] = resilient.BatchResult{Index: i, Question: q, Answer: ans, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
