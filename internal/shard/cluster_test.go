package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// sqlInterp treats the question text as SQL, which lets tests drive the
// full cluster routing machinery with precise statements while still
// exercising the real NL pipeline (interpret → parse → plan → execute).
type sqlInterp struct{}

func (sqlInterp) Name() string { return "sqlecho" }

func (sqlInterp) Interpret(q string) ([]nlq.Interpretation, error) {
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", nlq.ErrNoInterpretation, err)
	}
	return []nlq.Interpretation{{SQL: stmt, Score: 1}}, nil
}

// fleetDB builds the two-table FK dataset the shard tests run on:
// customers (hash root on id) and orders (co-located on customer_id).
func fleetDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("fleet")
	cust, err := db.CreateTable(&sqldata.Schema{Name: "customers", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
		{Name: "credit", Type: sqldata.TypeFloat},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"Berlin", "Munich", "Paris", "Oslo"}
	for i := 0; i < 40; i++ {
		cust.MustInsert(
			sqldata.NewInt(int64(i+1)),
			sqldata.NewText(fmt.Sprintf("cust%02d", i)),
			sqldata.NewText(cities[i%len(cities)]),
			sqldata.NewFloat(float64(i%7)*10.5),
		)
	}
	ord, err := db.CreateTable(&sqldata.Schema{
		Name: "orders",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: sqldata.TypeInt},
			{Name: "amount", Type: sqldata.TypeInt},
		},
		ForeignKeys: []sqldata.ForeignKey{{Column: "customer_id", RefTable: "customers", RefColumn: "id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 120; j++ {
		ord.MustInsert(
			sqldata.NewInt(int64(j+1)),
			sqldata.NewInt(int64(j%40)+1),
			sqldata.NewInt(int64((j*13)%97)),
		)
	}
	return db
}

func testCluster(t testing.TB, db *sqldata.Database, n int, cfg Config) *Cluster {
	t.Helper()
	if cfg.Chain == nil {
		cfg.Chain = []nlq.Interpreter{sqlInterp{}}
	}
	cl, err := New(db, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestShardedAnswersMatchUnsharded is the core correctness contract: for
// every distributable query shape, an N-shard R-replica cluster must
// return exactly what the unsharded engine returns.
func TestShardedAnswersMatchUnsharded(t *testing.T) {
	db := fleetDB(t)
	single := resilient.New(db, []nlq.Interpreter{sqlInterp{}}, resilient.Config{NoRetry: true})
	cl := testCluster(t, db, 3, Config{Replicas: 2, Seed: 11})

	queries := []struct {
		sql     string
		ordered bool
	}{
		{sql: "SELECT name, city FROM customers"},
		{sql: "SELECT * FROM customers WHERE id = 7"},
		{sql: "SELECT * FROM customers WHERE id = 999"},
		{sql: "SELECT name FROM customers WHERE city = 'Berlin'"},
		{sql: "SELECT COUNT(*) FROM customers"},
		{sql: "SELECT COUNT(*) FROM customers WHERE city = 'Berlin'"},
		{sql: "SELECT AVG(credit) FROM customers"},
		{sql: "SELECT SUM(amount), MIN(amount), MAX(amount), COUNT(amount) FROM orders"},
		{sql: "SELECT city, COUNT(*), AVG(credit) FROM customers GROUP BY city"},
		{sql: "SELECT city, COUNT(*) FROM customers GROUP BY city ORDER BY city", ordered: true},
		{sql: "SELECT DISTINCT city FROM customers"},
		{sql: "SELECT name FROM customers ORDER BY name LIMIT 5", ordered: true},
		{sql: "SELECT name FROM customers ORDER BY name DESC LIMIT 3", ordered: true},
		{sql: "SELECT customers.name, orders.amount FROM customers JOIN orders ON orders.customer_id = customers.id"},
		{sql: "SELECT customers.city, SUM(orders.amount) FROM customers JOIN orders ON orders.customer_id = customers.id GROUP BY customers.city"},
		{sql: "SELECT COUNT(*), SUM(credit) FROM customers WHERE city = 'Nowhere'"},
		{sql: "SELECT city, MIN(credit), MAX(credit) FROM customers GROUP BY city"},
	}
	ctx := context.Background()
	for _, q := range queries {
		want, err := single.Ask(ctx, q.sql)
		if err != nil {
			t.Fatalf("unsharded %q: %v", q.sql, err)
		}
		got, err := cl.Ask(ctx, q.sql)
		if err != nil {
			t.Fatalf("sharded %q: %v", q.sql, err)
		}
		if got.Partial {
			t.Errorf("%q: Partial answer with every shard healthy", q.sql)
		}
		if len(got.Result.Columns) != len(want.Result.Columns) {
			t.Fatalf("%q: columns %v, want %v", q.sql, got.Result.Columns, want.Result.Columns)
		}
		for i := range want.Result.Columns {
			if got.Result.Columns[i] != want.Result.Columns[i] {
				t.Fatalf("%q: columns %v, want %v", q.sql, got.Result.Columns, want.Result.Columns)
			}
		}
		equal := got.Result.EqualUnordered(want.Result)
		if q.ordered {
			equal = got.Result.EqualOrdered(want.Result)
		}
		if !equal {
			t.Errorf("%q:\nsharded:\n%s\nunsharded:\n%s", q.sql, got.Result, want.Result)
		}
	}
}

// TestNotDistributableIsHonest: queries the coordinator cannot merge
// correctly must fail with ErrNotDistributable — not return wrong rows.
func TestNotDistributableIsHonest(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 3, Config{Replicas: 1})
	ctx := context.Background()
	for _, sql := range []string{
		"SELECT name FROM customers WHERE credit > (SELECT AVG(credit) FROM customers)",
		"SELECT city FROM customers GROUP BY city HAVING COUNT(*) > 1",
		"SELECT COUNT(DISTINCT city) FROM customers",
		"SELECT COUNT(*) + 1 FROM customers",
		"SELECT customers.name FROM customers JOIN orders ON customers.id = orders.id",
		"SELECT name FROM customers ORDER BY credit",
	} {
		_, err := cl.Ask(ctx, sql)
		if !errors.Is(err, ErrNotDistributable) {
			t.Errorf("%q: err = %v, want ErrNotDistributable", sql, err)
		}
	}
}

// TestSingleShardClusterAnswersEverything: with N=1 nothing is
// distributed, so even non-distributable shapes must answer.
func TestSingleShardClusterAnswersEverything(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 1, Config{Replicas: 2})
	ctx := context.Background()
	for _, sql := range []string{
		"SELECT city FROM customers GROUP BY city HAVING COUNT(*) > 1",
		"SELECT COUNT(DISTINCT city) FROM customers",
	} {
		ans, err := cl.Ask(ctx, sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if ans.Partial {
			t.Errorf("%q: Partial on a single-shard cluster", sql)
		}
	}
}

// TestClusterCachesOnce: the fleet-wide cache serves the second identical
// question without re-routing, and the flight collapses the first.
func TestClusterCachesOnce(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 3, Config{Replicas: 1})
	ctx := context.Background()
	first, err := cl.Ask(ctx, "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first ask must not be cached")
	}
	second, err := cl.Ask(ctx, "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical ask should hit the fleet-wide cache")
	}
	if !second.Result.EqualUnordered(first.Result) {
		t.Fatal("cached answer differs from original")
	}
}

// TestHedgeRescuesSlowReplica: a replica that turns slow must not drag
// the query with it — the hedge launches the second replica after the
// clamped percentile delay and its answer wins.
func TestHedgeRescuesSlowReplica(t *testing.T) {
	db := fleetDB(t)
	var nodes [][]*ChaosNode
	cl := testCluster(t, db, 1, Config{
		Replicas: 2,
		HedgeMin: time.Millisecond,
		HedgeMax: 2 * time.Millisecond,
		Seed:     5,
		WrapNode: func(s, r int, n Node) Node {
			for len(nodes) <= s {
				nodes = append(nodes, nil)
			}
			cn := &ChaosNode{Inner: n}
			nodes[s] = append(nodes[s], cn)
			return cn
		},
	})
	nodes[0][0].SetDelay(150 * time.Millisecond)
	nodes[0][1].SetDelay(0)

	ctx := context.Background()
	start := time.Now()
	ans, err := cl.Ask(ctx, "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Partial {
		t.Fatal("unexpected partial answer")
	}
	// Whichever replica was primary, the answer must arrive well before
	// the slow replica's 150ms delay: either the fast one was primary, or
	// the hedge rescued the call at ~2ms.
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("ask took %v; hedging should have rescued the slow replica", elapsed)
	}
}
