package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReplicaStatus is one replica's live health as routing sees it.
type ReplicaStatus struct {
	Replica int `json:"replica"`
	// State is the breaker state: "closed", "open", or "half-open".
	State string `json:"state"`
	// EWMAMicros is the smoothed call latency in microseconds (0 before
	// the first sample).
	EWMAMicros int64 `json:"ewma_micros"`
	// Inflight is the number of calls on the wire right now.
	Inflight int64 `json:"inflight"`
}

// ShardStatus is one shard's rollup: request totals, hedge economics,
// latency percentiles from the reservoir that drives hedge delays, and
// every replica's health.
type ShardStatus struct {
	Shard     int   `json:"shard"`
	Requests  int64 `json:"requests"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Retries   int64 `json:"retries"`
	// DownLegs counts legs that exhausted every replica and retry.
	DownLegs int64 `json:"down_legs"`
	// P50MS / P99MS are replica-call latency percentiles in milliseconds
	// (0 until the shard has samples).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// QPS is the request rate since the previous /fleet scrape (0 on the
	// first scrape; only set by the HTTP handler, not FleetStatus).
	QPS      float64         `json:"qps"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// FleetStatus is the whole cluster's health at a glance — the JSON body
// of the /fleet endpoint.
type FleetStatus struct {
	Shards           int              `json:"shards"`
	ReplicasPerShard int              `json:"replicas_per_shard"`
	Routes           map[string]int64 `json:"routes"`
	// Partials counts scatter answers returned degraded; PartialRate is
	// Partials over scatter-routed questions.
	Partials    int64         `json:"partials"`
	PartialRate float64       `json:"partial_rate"`
	PerShard    []ShardStatus `json:"per_shard"`
}

// FleetStatus snapshots the cluster's rollup counters and replica health.
func (c *Cluster) FleetStatus() FleetStatus {
	fs := FleetStatus{
		Shards:           c.n,
		ReplicasPerShard: c.cfg.Replicas,
		Routes: map[string]int64{
			"home":    c.routeHome.Load(),
			"pruned":  c.routePruned.Load(),
			"scatter": c.routeScatter.Load(),
		},
		Partials: c.partials.Load(),
	}
	if sc := fs.Routes["scatter"]; sc > 0 {
		fs.PartialRate = float64(fs.Partials) / float64(sc)
	}
	for s := 0; s < c.n; s++ {
		st := &c.stats[s]
		sh := ShardStatus{
			Shard:     s,
			Requests:  st.requests.Load(),
			Hedges:    st.hedges.Load(),
			HedgeWins: st.hedgeWins.Load(),
			Retries:   st.retries.Load(),
			DownLegs:  st.downLegs.Load(),
		}
		if h := c.hists[s]; h.Count() > 0 {
			sh.P50MS = h.Quantile(0.50) * 1e3
			sh.P99MS = h.Quantile(0.99) * 1e3
		}
		for r, rep := range c.reps[s] {
			sh.Replicas = append(sh.Replicas, ReplicaStatus{
				Replica:    r,
				State:      rep.br.State(),
				EWMAMicros: rep.ewmaMicros.Load(),
				Inflight:   rep.inflight.Load(),
			})
		}
		fs.PerShard = append(fs.PerShard, sh)
	}
	return fs
}

// FleetHandler serves FleetStatus as JSON at /fleet. Per-shard QPS is the
// request-count delta over wall time since the handler's previous scrape,
// so the fleet view carries its own rate without any per-request cost.
func (c *Cluster) FleetHandler() http.Handler {
	var mu sync.Mutex
	var lastAt time.Time
	lastReq := make([]int64, c.n)
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fs := c.FleetStatus()
		mu.Lock()
		now := time.Now()
		if dt := now.Sub(lastAt).Seconds(); !lastAt.IsZero() && dt > 0 {
			for i := range fs.PerShard {
				fs.PerShard[i].QPS = float64(fs.PerShard[i].Requests-lastReq[i]) / dt
			}
		}
		for i := range fs.PerShard {
			lastReq[i] = fs.PerShard[i].Requests
		}
		lastAt = now
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fs)
	})
}

// WriteProm appends the scrape-time fleet rollups in Prometheus text
// format — families computed from live replica state rather than
// accumulated in the registry, wired onto /metrics via obs.WithProm.
// Registry-backed nlidb_shard_* families (requests, latency histograms,
// breaker-state gauges, hedge/retry counters) are NOT repeated here.
func (c *Cluster) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE nlidb_shard_replica_ewma_micros gauge\n# TYPE nlidb_shard_replica_inflight gauge\n")
	for s := 0; s < c.n; s++ {
		for r, rep := range c.reps[s] {
			fmt.Fprintf(w, "nlidb_shard_replica_ewma_micros{shard=\"%d\",replica=\"%d\"} %d\n", s, r, rep.ewmaMicros.Load())
			fmt.Fprintf(w, "nlidb_shard_replica_inflight{shard=\"%d\",replica=\"%d\"} %d\n", s, r, rep.inflight.Load())
		}
	}
	fmt.Fprintf(w, "# TYPE nlidb_shard_latency_ms gauge\n")
	for s := 0; s < c.n; s++ {
		if h := c.hists[s]; h.Count() > 0 {
			fmt.Fprintf(w, "nlidb_shard_latency_ms{shard=\"%d\",quantile=\"0.5\"} %g\n", s, h.Quantile(0.50)*1e3)
			fmt.Fprintf(w, "nlidb_shard_latency_ms{shard=\"%d\",quantile=\"0.99\"} %g\n", s, h.Quantile(0.99)*1e3)
		}
	}
	fmt.Fprintf(w, "# TYPE nlidb_shard_hedge_wins_total counter\n")
	for s := 0; s < c.n; s++ {
		fmt.Fprintf(w, "nlidb_shard_hedge_wins_total{shard=\"%d\"} %d\n", s, c.stats[s].hedgeWins.Load())
	}
	partials, scatters := c.partials.Load(), c.routeScatter.Load()
	rate := 0.0
	if scatters > 0 {
		rate = float64(partials) / float64(scatters)
	}
	fmt.Fprintf(w, "# TYPE nlidb_shard_partial_rate gauge\nnlidb_shard_partial_rate %g\n", rate)
}
