package shard

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// routeKind classifies where an interpreted statement can run.
type routeKind int

const (
	// routeHome: the statement needs no table data (or references unknown
	// tables); the interpreting replica's answer is already complete.
	routeHome routeKind = iota
	// routePruned: every relevant row lives on one shard; run the original
	// statement there.
	routePruned
	// routeScatter: fan a rewritten partial statement out to every shard
	// and merge.
	routeScatter
)

// route is one classified statement: where to run it and how to combine.
type route struct {
	kind       routeKind
	shard      int        // routePruned: the owner shard
	partialSQL string     // routeScatter: the per-shard statement
	merge      *mergePlan // routeScatter
}

// mergeItem describes one final output column of a scatter-gather
// aggregate merge.
type mergeItem struct {
	agg     string // "" = group-key passthrough; else COUNT/SUM/MIN/MAX/AVG
	partIdx int    // column index in the partial result (non-AVG)
	sumIdx  int    // AVG: partial index of the pushed-down SUM
	cntIdx  int    // AVG: partial index of the pushed-down COUNT
}

// mergeOrder is one resolved ORDER BY key over final output columns.
type mergeOrder struct {
	idx  int
	desc bool
}

// mergePlan is everything the coordinator needs to combine per-shard
// partial results into the answer the unsharded engine would have given.
type mergePlan struct {
	grouped     bool     // aggregate/group path (vs plain row concat)
	globalAgg   bool     // aggregate without GROUP BY: exactly one row
	finalCols   []string // output header (grouped path)
	items       []mergeItem
	groupKeyIdx []int // partial indexes forming the group key
	distinct    bool
	orderBy     []sqlparse.OrderItem // resolved against the final header at merge time
	limit       int
}

// notDist builds the refusal error for a statement the coordinator cannot
// merge correctly.
func notDist(format string, args ...any) error {
	return &NotDistributableError{Reason: fmt.Sprintf(format, args...)}
}

// conjuncts splits e on top-level ANDs.
func conjuncts(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	return append(out, e)
}

// containsAgg reports whether e contains an aggregate call (at any depth,
// not descending into sub-selects).
func containsAgg(e sqlparse.Expr) bool {
	found := false
	var walk func(sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch t := e.(type) {
		case nil:
		case *sqlparse.FuncCall:
			if t.IsAggregate() {
				found = true
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *sqlparse.BinaryExpr:
			walk(t.L)
			walk(t.R)
		case *sqlparse.UnaryExpr:
			walk(t.X)
		case *sqlparse.InExpr:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *sqlparse.BetweenExpr:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *sqlparse.LikeExpr:
			walk(t.X)
		case *sqlparse.IsNullExpr:
			walk(t.X)
		}
	}
	walk(e)
	return found
}

// outName is the executor's output-column naming rule (alias, else the
// printed expression), so sharded headers match unsharded ones.
func outName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.String()
}

// tableInstance is one FROM entry: the name it is addressable by in the
// query scope and the real table it denotes.
type tableInstance struct {
	eff  string
	real string
}

// classify decides how stmt runs on a cluster partitioned by part.
func classify(stmt *sqlparse.SelectStmt, part *Partitioning) (*route, error) {
	if stmt.From == nil {
		return &route{kind: routeHome}, nil
	}
	if len(stmt.Subqueries()) > 0 {
		return nil, notDist("sub-queries cannot be evaluated against a single shard's rows")
	}

	refs := stmt.From.Tables()
	insts := make([]tableInstance, len(refs))
	for i, r := range refs {
		insts[i] = tableInstance{eff: r.EffName(), real: r.Name}
		if part.Spec(r.Name) == nil {
			// Unknown table: execution fails identically on any shard, so
			// let the interpreting replica's local error stand.
			return &route{kind: routeHome}, nil
		}
	}

	// Pruning: a single-table query whose WHERE pins the partition column
	// to a literal runs complete on the owner shard — aggregates, HAVING,
	// ORDER BY and all, because every relevant row is there.
	if len(refs) == 1 {
		if sh, ok := prunedShard(stmt, insts[0], part); ok {
			return &route{kind: routePruned, shard: sh}, nil
		}
	}

	if stmt.Having != nil {
		return nil, notDist("HAVING filters on merged groups the shards cannot see")
	}
	if len(refs) > 1 {
		if err := checkJoinAlignment(stmt, insts, part); err != nil {
			return nil, err
		}
	}

	hasAgg := false
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	grouped := hasAgg || len(stmt.GroupBy) > 0

	if !grouped {
		return scatterConcat(stmt)
	}
	return scatterGrouped(stmt)
}

// prunedShard looks for a top-level `partition_column = literal` conjunct
// and resolves the owning shard.
func prunedShard(stmt *sqlparse.SelectStmt, inst tableInstance, part *Partitioning) (int, bool) {
	spec := part.Spec(inst.real)
	if stmt.Where == nil || spec == nil {
		return 0, false
	}
	matchCol := func(e sqlparse.Expr) bool {
		c, ok := e.(*sqlparse.ColumnRef)
		if !ok || !strings.EqualFold(c.Column, spec.Column) {
			return false
		}
		return c.Table == "" || strings.EqualFold(c.Table, inst.eff) || strings.EqualFold(c.Table, inst.real)
	}
	for _, conj := range conjuncts(stmt.Where, nil) {
		b, ok := conj.(*sqlparse.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		var lit *sqlparse.Literal
		if matchCol(b.L) {
			lit, _ = b.R.(*sqlparse.Literal)
		} else if matchCol(b.R) {
			lit, _ = b.L.(*sqlparse.Literal)
		}
		if lit == nil || lit.Val.Null {
			continue
		}
		if sh, ok := part.Owner(inst.real, lit.Val); ok {
			return sh, true
		}
	}
	return 0, false
}

// checkJoinAlignment requires every joined table to be connected to the
// rest through equality conjuncts on co-located columns, so each shard's
// local join sees exactly the row pairs the global join would.
func checkJoinAlignment(stmt *sqlparse.SelectStmt, insts []tableInstance, part *Partitioning) error {
	// Union-find over table instances.
	parent := make([]int, len(insts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	instOf := func(qual string) int {
		for i, in := range insts {
			if strings.EqualFold(qual, in.eff) {
				return i
			}
		}
		return -1
	}

	for _, j := range stmt.From.Joins {
		for _, conj := range conjuncts(j.On, nil) {
			b, ok := conj.(*sqlparse.BinaryExpr)
			if !ok || b.Op != "=" {
				continue
			}
			l, lok := b.L.(*sqlparse.ColumnRef)
			r, rok := b.R.(*sqlparse.ColumnRef)
			if !lok || !rok || l.Table == "" || r.Table == "" {
				continue
			}
			li, ri := instOf(l.Table), instOf(r.Table)
			if li < 0 || ri < 0 || li == ri {
				continue
			}
			if coPartitioned(insts[li].real, l.Column, insts[ri].real, r.Column, part) {
				union(li, ri)
			}
		}
	}
	root := find(0)
	for i := 1; i < len(insts); i++ {
		if find(i) != root {
			return notDist("join between %s and %s is not aligned with the partitioning (no equality on co-located columns)",
				insts[0].real, insts[i].real)
		}
	}
	return nil
}

// coPartitioned reports whether rows of a with a.x = v and rows of b with
// b.y = v always share a shard, for every v.
func coPartitioned(a, x, b, y string, part *Partitioning) bool {
	sa, sb := part.Spec(a), part.Spec(b)
	if sa == nil || sb == nil {
		return false
	}
	ci := strings.EqualFold
	// Child joined to its co-location parent on the FK edge.
	if sa.Parent != "" && ci(sa.Parent, b) && ci(sa.Column, x) && ci(sa.ParentColumn, y) {
		return true
	}
	if sb.Parent != "" && ci(sb.Parent, a) && ci(sb.Column, y) && ci(sb.ParentColumn, x) {
		return true
	}
	// Two siblings co-located via the same parent column.
	if sa.Parent != "" && sb.Parent != "" && ci(sa.Parent, sb.Parent) &&
		ci(sa.ParentColumn, sb.ParentColumn) && ci(sa.Column, x) && ci(sb.Column, y) {
		return true
	}
	// Two hash roots joined on their partition columns (includes
	// self-joins on the primary key).
	if sa.Parent == "" && sa.owners == nil && sb.Parent == "" && sb.owners == nil &&
		ci(sa.Column, x) && ci(sb.Column, y) {
		return true
	}
	return false
}

// scatterConcat plans a plain (aggregate-free, ungrouped) scatter: each
// shard runs the statement as-is — per-shard ORDER BY + LIMIT computes a
// local top-k — and the coordinator concatenates, dedups DISTINCT,
// re-sorts, and re-limits.
func scatterConcat(stmt *sqlparse.SelectStmt) (*route, error) {
	hasStar := false
	for _, it := range stmt.Items {
		if it.Star {
			hasStar = true
		}
	}
	if len(stmt.OrderBy) > 0 && !hasStar {
		// Pre-check resolvability so unanswerable questions fail at
		// classification, not after fanning out.
		cols := make([]string, len(stmt.Items))
		for i, it := range stmt.Items {
			cols[i] = outName(it)
		}
		if _, err := resolveOrder(stmt.OrderBy, cols); err != nil {
			return nil, err
		}
	}
	return &route{
		kind:       routeScatter,
		partialSQL: stmt.String(),
		merge: &mergePlan{
			distinct: stmt.Distinct,
			orderBy:  stmt.OrderBy,
			limit:    stmt.Limit,
		},
	}, nil
}

// scatterGrouped plans an aggregate (or GROUP BY) scatter: shards run a
// rewritten partial statement — AVG split into SUM + COUNT, ORDER BY and
// LIMIT stripped — and the coordinator merges partial aggregates with the
// executor's exact combining semantics, then sorts and limits.
func scatterGrouped(stmt *sqlparse.SelectStmt) (*route, error) {
	plan := &mergePlan{grouped: true, distinct: stmt.Distinct, limit: stmt.Limit, orderBy: stmt.OrderBy}
	var partialItems []sqlparse.SelectItem
	for _, it := range stmt.Items {
		if it.Star {
			return nil, notDist("star projection mixed with grouping")
		}
		plan.finalCols = append(plan.finalCols, outName(it))
		f, isCall := it.Expr.(*sqlparse.FuncCall)
		switch {
		case isCall && f.IsAggregate():
			if f.Distinct {
				return nil, notDist("%s(DISTINCT ...) cannot be combined from per-shard partials", f.Name)
			}
			if f.Name == "AVG" {
				plan.items = append(plan.items, mergeItem{agg: "AVG", sumIdx: len(partialItems), cntIdx: len(partialItems) + 1})
				partialItems = append(partialItems,
					sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "SUM", Args: f.Args}},
					sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "COUNT", Args: f.Args}})
				continue
			}
			plan.items = append(plan.items, mergeItem{agg: f.Name, partIdx: len(partialItems)})
			partialItems = append(partialItems, sqlparse.SelectItem{Expr: it.Expr})
		case containsAgg(it.Expr):
			return nil, notDist("aggregate inside expression %q cannot be combined from per-shard partials", it.Expr)
		default:
			plan.items = append(plan.items, mergeItem{partIdx: len(partialItems)})
			plan.groupKeyIdx = append(plan.groupKeyIdx, len(partialItems))
			partialItems = append(partialItems, sqlparse.SelectItem{Expr: it.Expr, Alias: it.Alias})
		}
	}

	// Group keys must surface in the partials, or the coordinator cannot
	// regroup; require each GROUP BY expression to appear as an item.
	for _, g := range stmt.GroupBy {
		found := false
		for i, it := range stmt.Items {
			if !it.Star && plan.items[i].agg == "" && strings.EqualFold(it.Expr.String(), g.String()) {
				found = true
				break
			}
		}
		if !found {
			return nil, notDist("GROUP BY key %q is not in the select list", g)
		}
	}
	plan.globalAgg = len(stmt.GroupBy) == 0
	if len(stmt.OrderBy) > 0 {
		if _, err := resolveOrder(stmt.OrderBy, plan.finalCols); err != nil {
			return nil, err
		}
	}

	partial := &sqlparse.SelectStmt{
		Items:   partialItems,
		From:    stmt.From,
		Where:   stmt.Where,
		GroupBy: stmt.GroupBy,
		Limit:   -1,
	}
	plan.limit = stmt.Limit
	return &route{kind: routeScatter, partialSQL: partial.String(), merge: plan}, nil
}

// resolveOrder maps ORDER BY expressions onto output column indexes,
// matching the printed expression (and, for qualified column refs, the
// bare column name) case-insensitively.
func resolveOrder(items []sqlparse.OrderItem, cols []string) ([]mergeOrder, error) {
	out := make([]mergeOrder, 0, len(items))
	for _, o := range items {
		idx := -1
		want := o.Expr.String()
		bare := ""
		if c, ok := o.Expr.(*sqlparse.ColumnRef); ok && c.Table != "" {
			bare = c.Column
		}
		for i, col := range cols {
			if strings.EqualFold(col, want) || (bare != "" && strings.EqualFold(col, bare)) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, notDist("ORDER BY %q is not an output column, so merged rows cannot be re-sorted", want)
		}
		out = append(out, mergeOrder{idx: idx, desc: o.Desc})
	}
	return out, nil
}

// numSum accumulates SUM partials with the executor's typing: an all-INT
// input stays INT, any FLOAT widens the total, and an input with no
// non-NULL values yields NULL.
type numSum struct {
	has bool
	isF bool
	i   int64
	f   float64
}

func (s *numSum) add(v sqldata.Value) {
	if v.Null {
		return
	}
	if iv, ok := v.IntOK(); ok {
		s.has = true
		s.i += iv
		s.f += float64(iv)
		return
	}
	if fv, ok := v.FloatOK(); ok {
		s.has = true
		s.isF = true
		s.f += fv
	}
}

func (s *numSum) value() sqldata.Value {
	switch {
	case !s.has:
		return sqldata.NullValue()
	case s.isF:
		return sqldata.NewFloat(s.f)
	default:
		return sqldata.NewInt(s.i)
	}
}

// groupAcc accumulates one merged group.
type groupAcc struct {
	out  sqldata.Row // group-key passthrough values (agg slots overwritten at finalize)
	sums []numSum    // per item: SUM / AVG-sum accumulator
	cnts []int64     // per item: COUNT / AVG-count accumulator
	best []sqldata.Value
	has  []bool // per item: MIN/MAX has a non-NULL candidate
}

// merge combines per-shard partial results (nil entries = missing shards,
// already accounted as Partial by the caller) into the final result.
func (m *mergePlan) merge(partials []*sqldata.Result) (*sqldata.Result, error) {
	if m.grouped {
		return m.mergeGrouped(partials)
	}
	return m.mergeConcat(partials)
}

func (m *mergePlan) mergeConcat(partials []*sqldata.Result) (*sqldata.Result, error) {
	var cols []string
	var rows []sqldata.Row
	for _, p := range partials {
		if p == nil {
			continue
		}
		if cols == nil {
			cols = p.Columns
		}
		rows = append(rows, p.Rows...)
	}
	if cols == nil {
		return nil, fmt.Errorf("shard: no partial results to merge")
	}
	if m.distinct {
		rows = dedupRows(rows)
	}
	if len(m.orderBy) > 0 {
		ord, err := resolveOrder(m.orderBy, cols)
		if err != nil {
			return nil, err
		}
		sortRows(rows, ord)
	}
	if m.limit >= 0 && len(rows) > m.limit {
		rows = rows[:m.limit]
	}
	return &sqldata.Result{Columns: cols, Rows: rows}, nil
}

func (m *mergePlan) mergeGrouped(partials []*sqldata.Result) (*sqldata.Result, error) {
	groups := map[string]*groupAcc{}
	var order []string // first-seen group order, for determinism pre-sort
	for _, p := range partials {
		if p == nil {
			continue
		}
		for _, row := range p.Rows {
			if len(row) < len(m.items)+countAVGExtra(m.items) {
				return nil, fmt.Errorf("shard: partial row has %d columns, need %d", len(row), len(m.items)+countAVGExtra(m.items))
			}
			key := groupKey(row, m.groupKeyIdx)
			acc := groups[key]
			if acc == nil {
				acc = &groupAcc{
					out:  make(sqldata.Row, len(m.items)),
					sums: make([]numSum, len(m.items)),
					cnts: make([]int64, len(m.items)),
					best: make([]sqldata.Value, len(m.items)),
					has:  make([]bool, len(m.items)),
				}
				for i, it := range m.items {
					if it.agg == "" {
						acc.out[i] = row[it.partIdx]
					}
				}
				groups[key] = acc
				order = append(order, key)
			}
			for i, it := range m.items {
				switch it.agg {
				case "":
				case "COUNT":
					if n, ok := row[it.partIdx].IntOK(); ok {
						acc.cnts[i] += n
					}
				case "SUM":
					acc.sums[i].add(row[it.partIdx])
				case "AVG":
					acc.sums[i].add(row[it.sumIdx])
					if n, ok := row[it.cntIdx].IntOK(); ok {
						acc.cnts[i] += n
					}
				case "MIN", "MAX":
					v := row[it.partIdx]
					if v.Null {
						continue
					}
					if !acc.has[i] {
						acc.best[i], acc.has[i] = v, true
						continue
					}
					c, err := sqldata.Compare(v, acc.best[i])
					if err == nil && ((it.agg == "MIN" && c < 0) || (it.agg == "MAX" && c > 0)) {
						acc.best[i] = v
					}
				}
			}
		}
	}

	rows := make([]sqldata.Row, 0, len(order))
	for _, key := range order {
		acc := groups[key]
		for i, it := range m.items {
			switch it.agg {
			case "":
			case "COUNT":
				acc.out[i] = sqldata.NewInt(acc.cnts[i])
			case "SUM":
				acc.out[i] = acc.sums[i].value()
			case "AVG":
				if acc.cnts[i] == 0 {
					acc.out[i] = sqldata.NullValue()
				} else {
					acc.out[i] = sqldata.NewFloat(acc.sums[i].f / float64(acc.cnts[i]))
				}
			case "MIN", "MAX":
				if acc.has[i] {
					acc.out[i] = acc.best[i]
				} else {
					acc.out[i] = sqldata.NullValue()
				}
			}
		}
		rows = append(rows, acc.out)
	}
	if m.globalAgg && len(rows) == 0 {
		// Mirror the executor's empty-input global aggregate: one row of
		// zero counts and NULL sums.
		row := make(sqldata.Row, len(m.items))
		for i, it := range m.items {
			if it.agg == "COUNT" {
				row[i] = sqldata.NewInt(0)
			} else {
				row[i] = sqldata.NullValue()
			}
		}
		rows = append(rows, row)
	}
	if m.distinct {
		rows = dedupRows(rows)
	}
	if len(m.orderBy) > 0 {
		ord, err := resolveOrder(m.orderBy, m.finalCols)
		if err != nil {
			return nil, err
		}
		sortRows(rows, ord)
	}
	if m.limit >= 0 && len(rows) > m.limit {
		rows = rows[:m.limit]
	}
	return &sqldata.Result{Columns: m.finalCols, Rows: rows}, nil
}

func countAVGExtra(items []mergeItem) int {
	n := 0
	for _, it := range items {
		if it.agg == "AVG" {
			n++
		}
	}
	return n
}

func groupKey(row sqldata.Row, idx []int) string {
	if len(idx) == 0 {
		return ""
	}
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = row[j].Key()
	}
	return strings.Join(parts, "\x1f")
}

func dedupRows(rows []sqldata.Row) []sqldata.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// sortRows orders rows by the resolved keys, NULLs first ascending (the
// executor's rule), falling back to collation-key comparison when values
// are incomparable.
func sortRows(rows []sqldata.Row, ord []mergeOrder) {
	sort.SliceStable(rows, func(a, b int) bool {
		for _, o := range ord {
			va, vb := rows[a][o.idx], rows[b][o.idx]
			c := compareForSort(va, vb)
			if c == 0 {
				continue
			}
			if o.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func compareForSort(a, b sqldata.Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if c, err := sqldata.Compare(a, b); err == nil {
		return c
	}
	return strings.Compare(a.Key(), b.Key())
}
