package shard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"nlidb/internal/sqldata"
)

// TableSpec records how one table is partitioned.
type TableSpec struct {
	// Table is the table name as declared.
	Table string
	// Column is the partition column: rows with equal values in it land
	// on the same shard. For a root table this is its primary key (or
	// first column); for a co-located child it is the foreign-key column
	// pointing at the parent.
	Column string
	// Parent names the co-location parent table ("" for hash roots): the
	// child row lives wherever the parent row whose ParentColumn equals
	// the child's Column value lives.
	Parent string
	// ParentColumn is the referenced column in Parent ("" for roots).
	ParentColumn string

	colIdx int
	// owners maps partition-column value keys to shards for co-located
	// tables whose placement cannot be recomputed as a hash (parent not a
	// hash root, or FK referencing a non-partition column); nil when
	// hashing suffices. Misses fall back to the value hash, matching the
	// placement fallback for orphan foreign keys.
	owners map[string]int
}

// Partitioning describes how a database was split across N shards and
// answers ownership questions for query routing.
type Partitioning struct {
	// N is the shard count.
	N int
	// RowsPerShard counts the rows placed on each shard (all tables).
	RowsPerShard []int

	specs map[string]*TableSpec // lower-case table name
}

// Spec returns the named table's partition spec, or nil.
func (p *Partitioning) Spec(table string) *TableSpec {
	return p.specs[strings.ToLower(table)]
}

// Owner returns the shard owning rows of table whose partition column
// equals v. ok is false when the table is unknown.
func (p *Partitioning) Owner(table string, v sqldata.Value) (shard int, ok bool) {
	s := p.Spec(table)
	if s == nil {
		return 0, false
	}
	if s.owners != nil {
		if sh, hit := s.owners[v.Key()]; hit {
			return sh, true
		}
	}
	return hashOwner(v, p.N), true
}

// hashOwner is the root placement rule: FNV-1a of the value's collation
// key, mod N. Co-location falls back to it for orphan foreign keys, so
// routing and placement always agree.
func hashOwner(v sqldata.Value, n int) int {
	h := fnv.New64a()
	h.Write([]byte(v.Key()))
	return int(h.Sum64() % uint64(n))
}

// Split hash-partitions db's rows across n shard databases. Placement is
// foreign-key aware: a table with a foreign key to another table in db is
// co-located — each of its rows is placed on the shard holding the parent
// row it references — so joins along declared FK edges never cross
// shards. Tables without (resolvable) foreign keys are roots, hashed on
// their primary key (or first column). Rows and schemas are shared, not
// copied: the shard databases are views and must be treated as
// read-only, like every serving database.
func Split(db *sqldata.Database, n int) ([]*sqldata.Database, *Partitioning, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("shard: Split needs n >= 1, got %d", n)
	}
	tables := db.Tables()
	part := &Partitioning{N: n, RowsPerShard: make([]int, n), specs: map[string]*TableSpec{}}

	// Choose each table's co-location edge: the first foreign key whose
	// target is another table in this database.
	parentOf := map[string]*sqldata.ForeignKey{}
	for _, t := range tables {
		name := strings.ToLower(t.Schema.Name)
		for i := range t.Schema.ForeignKeys {
			fk := &t.Schema.ForeignKeys[i]
			ref := strings.ToLower(fk.RefTable)
			if ref != name && db.Table(fk.RefTable) != nil {
				parentOf[name] = fk
				break
			}
		}
	}

	// Order parents before children so a child's placement can look up
	// where its parent rows landed. FK cycles (and children of tables
	// outside the chain) degrade to hash roots.
	placed := map[string]bool{}
	var order []*sqldata.Table
	remaining := append([]*sqldata.Table(nil), tables...)
	for len(remaining) > 0 {
		progressed := false
		rest := remaining[:0]
		for _, t := range remaining {
			name := strings.ToLower(t.Schema.Name)
			fk := parentOf[name]
			if fk == nil || placed[strings.ToLower(fk.RefTable)] {
				order = append(order, t)
				placed[name] = true
				progressed = true
				continue
			}
			rest = append(rest, t)
		}
		remaining = rest
		if !progressed {
			// Cycle: break it by hashing every remaining table as a root.
			for _, t := range remaining {
				delete(parentOf, strings.ToLower(t.Schema.Name))
				order = append(order, t)
			}
			break
		}
	}

	shards := make([]*sqldata.Database, n)
	for i := range shards {
		shards[i] = sqldata.NewDatabase(db.Name)
	}

	// refOwners[table][column][valueKey] = shard, recorded for every
	// (table, column) some child references, consumed while placing the
	// children.
	refOwners := map[string]map[string]map[string]int{}
	needRef := map[string]map[string]bool{}
	for _, fk := range parentOf {
		ref := strings.ToLower(fk.RefTable)
		if needRef[ref] == nil {
			needRef[ref] = map[string]bool{}
		}
		needRef[ref][strings.ToLower(fk.RefColumn)] = true
	}

	for _, t := range order {
		name := strings.ToLower(t.Schema.Name)
		spec := &TableSpec{Table: t.Schema.Name}
		fk := parentOf[name]
		if fk != nil {
			spec.Column = fk.Column
			spec.Parent = fk.RefTable
			spec.ParentColumn = fk.RefColumn
			spec.colIdx = t.Schema.ColumnIndex(fk.Column)
		} else {
			if pk := t.Schema.PrimaryKey(); len(pk) > 0 {
				spec.Column = pk[0]
			} else {
				spec.Column = t.Schema.Columns[0].Name
			}
			spec.colIdx = t.Schema.ColumnIndex(spec.Column)
		}
		if spec.colIdx < 0 {
			return nil, nil, fmt.Errorf("shard: table %s: partition column %q not found", t.Schema.Name, spec.Column)
		}

		// Parent lookup for co-located children, if this table is one.
		var parentOwn map[string]int
		if fk != nil {
			ref := strings.ToLower(fk.RefTable)
			if cols := refOwners[ref]; cols != nil {
				parentOwn = cols[strings.ToLower(fk.RefColumn)]
			}
		}
		// Ref maps this table must record for its own children.
		recordCols := needRef[name]
		var recordIdx []int
		var recordInto []map[string]int
		for col := range recordCols {
			idx := t.Schema.ColumnIndex(col)
			if idx < 0 {
				continue
			}
			m := map[string]int{}
			if refOwners[name] == nil {
				refOwners[name] = map[string]map[string]int{}
			}
			refOwners[name][col] = m
			recordIdx = append(recordIdx, idx)
			recordInto = append(recordInto, m)
		}

		perShard := make([]*sqldata.Table, n)
		for i := range perShard {
			perShard[i] = &sqldata.Table{Schema: t.Schema}
			if err := shards[i].AddTable(perShard[i]); err != nil {
				return nil, nil, err
			}
		}
		for _, row := range t.Rows {
			v := row[spec.colIdx]
			sh := -1
			if parentOwn != nil {
				if o, hit := parentOwn[v.Key()]; hit {
					sh = o
				}
			}
			if sh < 0 {
				sh = hashOwner(v, n)
			}
			perShard[sh].Rows = append(perShard[sh].Rows, row)
			part.RowsPerShard[sh]++
			for i, idx := range recordIdx {
				recordInto[i][row[idx].Key()] = sh
			}
		}

		// Routing must agree with placement. When the parent is a hash
		// root and the FK references its partition column, the child's
		// owner is recomputable as hashOwner(fk value); otherwise keep the
		// recorded placement map for Owner lookups.
		if parentOwn != nil {
			parentSpec := part.specs[strings.ToLower(fk.RefTable)]
			aligned := parentSpec != nil && parentSpec.Parent == "" && parentSpec.owners == nil &&
				strings.EqualFold(parentSpec.Column, fk.RefColumn)
			if !aligned {
				spec.owners = parentOwn
			}
		}
		part.specs[name] = spec
	}
	return shards, part, nil
}
