package shard

import (
	"testing"

	"nlidb/internal/sqldata"
)

// TestSplitPlacesEveryRowOnce: the shard databases are a partition of the
// original — every row lands on exactly one shard, none invented.
func TestSplitPlacesEveryRowOnce(t *testing.T) {
	db := fleetDB(t)
	for _, n := range []int{1, 2, 3, 5, 8} {
		shards, part, err := Split(db, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(shards) != n || part.N != n {
			t.Fatalf("n=%d: got %d shards, part.N=%d", n, len(shards), part.N)
		}
		total := 0
		for _, c := range part.RowsPerShard {
			total += c
		}
		if want := 40 + 120; total != want {
			t.Fatalf("n=%d: RowsPerShard sums to %d, want %d", n, total, want)
		}
		for _, tbl := range db.Tables() {
			seen := map[string]int{}
			for _, sh := range shards {
				st := sh.Table(tbl.Schema.Name)
				if st == nil {
					t.Fatalf("n=%d: shard missing table %s", n, tbl.Schema.Name)
				}
				for _, row := range st.Rows {
					seen[row.Key()]++
				}
			}
			if len(seen) != len(tbl.Rows) {
				t.Fatalf("n=%d table %s: %d distinct rows across shards, want %d",
					n, tbl.Schema.Name, len(seen), len(tbl.Rows))
			}
			for k, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d table %s: row %q placed %d times", n, tbl.Schema.Name, k, c)
				}
			}
		}
	}
}

// TestSplitCoLocatesForeignKeys: every orders row lives on the same shard
// as the customer it references, so the FK join never crosses shards.
func TestSplitCoLocatesForeignKeys(t *testing.T) {
	db := fleetDB(t)
	shards, _, err := Split(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	custShard := map[string]int{} // customer id key -> shard
	for i, sh := range shards {
		ct := sh.Table("customers")
		idIdx := ct.Schema.ColumnIndex("id")
		for _, row := range ct.Rows {
			custShard[row[idIdx].Key()] = i
		}
	}
	for i, sh := range shards {
		ot := sh.Table("orders")
		fkIdx := ot.Schema.ColumnIndex("customer_id")
		for _, row := range ot.Rows {
			if home, ok := custShard[row[fkIdx].Key()]; !ok || home != i {
				t.Fatalf("order with customer_id=%s on shard %d, customer on shard %d (ok=%v)",
					row[fkIdx], i, home, ok)
			}
		}
	}
}

// TestOwnerAgreesWithPlacement: routing (Owner) and placement (Split)
// must never disagree, for roots and co-located children alike.
func TestOwnerAgreesWithPlacement(t *testing.T) {
	db := fleetDB(t)
	shards, part, err := Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		for _, tbl := range sh.Tables() {
			spec := part.Spec(tbl.Schema.Name)
			if spec == nil {
				t.Fatalf("no spec for %s", tbl.Schema.Name)
			}
			idx := tbl.Schema.ColumnIndex(spec.Column)
			for _, row := range tbl.Rows {
				owner, ok := part.Owner(tbl.Schema.Name, row[idx])
				if !ok || owner != i {
					t.Fatalf("table %s value %s: Owner=%d ok=%v, placed on %d",
						tbl.Schema.Name, row[idx], owner, ok, i)
				}
			}
		}
	}
	if _, ok := part.Owner("nope", sqldata.NewInt(1)); ok {
		t.Fatal("Owner claimed to know an unknown table")
	}
}

// TestSplitSpecShapes: customers is a hash root on its primary key and
// orders a co-located child on its foreign key.
func TestSplitSpecShapes(t *testing.T) {
	db := fleetDB(t)
	_, part, err := Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	cust := part.Spec("customers")
	if cust == nil || cust.Parent != "" || cust.Column != "id" {
		t.Fatalf("customers spec = %+v, want root on id", cust)
	}
	ord := part.Spec("ORDERS") // lookup is case-insensitive
	if ord == nil || ord.Parent != "customers" || ord.Column != "customer_id" || ord.ParentColumn != "id" {
		t.Fatalf("orders spec = %+v, want child of customers on customer_id", ord)
	}
}
