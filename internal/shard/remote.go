package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
)

// ErrBackpressure marks a remote replica that shed the request under
// load (HTTP 429/503): the node is up and healthy but refusing work.
// Shedding is not ill-health — it must not open the replica's breaker —
// but the leg should be retried on another replica, honoring the
// server's Retry-After when the whole shard is shedding.
var ErrBackpressure = errors.New("shard: remote replica shedding")

// RemoteErrorKind classifies a failed remote call for the replica health
// model. The taxonomy is the point of speaking a real protocol: a
// connection refused, a 503 shed, and a 500 execution failure all look
// like "error" to naive code but demand different reactions.
type RemoteErrorKind int

const (
	// RemoteConn is a transport-level failure — connection refused or
	// reset, DNS failure, a socket that never produced response headers.
	// The process is gone or unreachable: counts against the breaker so
	// routing abandons the replica fast.
	RemoteConn RemoteErrorKind = iota
	// RemoteBackpressure is 429/503: the node shed the request under
	// load (or while draining). Not breaker-countable; retry elsewhere,
	// honoring Retry-After.
	RemoteBackpressure
	// RemoteStale is 409: the node refused because its shard map epoch
	// disagrees with the request's. Countable — a misconfigured node is
	// not servable — and the error unwraps to ErrStaleEpoch.
	RemoteStale
	// RemoteTimeout is 504 (the node's own deadline died) or a transport
	// read that outlived the leg budget. Countable, like a local slow
	// replica blowing its leg deadline.
	RemoteTimeout
	// RemoteSemantic is 422: the node answered honestly that the
	// question/SQL cannot be served (chain exhausted, not
	// distributable). Deterministic — retrying any replica repeats it —
	// and not ill-health.
	RemoteSemantic
	// RemoteProtocol is 400 or an unintelligible body: one side speaks
	// the protocol wrong. Deterministic, so never retried, and not
	// breaker-countable — the bug is in the request, not the replica.
	RemoteProtocol
	// RemoteExec is any other 5xx: the node is up, spoke the protocol,
	// and failed executing. Countable (a replica that keeps failing
	// execution is not healthy).
	RemoteExec
)

// String names the kind for spans and logs.
func (k RemoteErrorKind) String() string {
	switch k {
	case RemoteConn:
		return "conn"
	case RemoteBackpressure:
		return "backpressure"
	case RemoteStale:
		return "stale_epoch"
	case RemoteTimeout:
		return "timeout"
	case RemoteSemantic:
		return "semantic"
	case RemoteProtocol:
		return "protocol"
	default:
		return "exec"
	}
}

// RemoteError is one failed remote replica call, classified.
type RemoteError struct {
	// Kind drives the health model's reaction; see the constants.
	Kind RemoteErrorKind
	// Addr is the replica endpoint that failed.
	Addr string
	// Status is the HTTP status, 0 for transport-level failures.
	Status int
	// Msg is the server's error body (or the transport error text).
	Msg string
	// RetryAfter is the server's Retry-After hint (backpressure only).
	RetryAfter time.Duration
	// ShedReason is the server's X-Shed-Reason (backpressure only).
	ShedReason string
	// Err is the underlying transport error, when there was one.
	Err error

	// epochWant is the node's epoch on a stale refusal (for Unwrap).
	epochWant int64
	// epochHave is the epoch the request carried.
	epochHave int64
}

func (e *RemoteError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("shard: remote %s: %s (%d): %s", e.Addr, e.Kind, e.Status, e.Msg)
	}
	return fmt.Sprintf("shard: remote %s: %s: %s", e.Addr, e.Kind, e.Msg)
}

// Unwrap maps each kind onto the sentinel the routing and serving layers
// already understand: conn → ErrNodeDown (breaker fast-path), shedding →
// ErrBackpressure, stale → a *StaleEpochError, node-side deadline →
// context.DeadlineExceeded, semantic → resilient.ErrExhausted.
func (e *RemoteError) Unwrap() error {
	switch e.Kind {
	case RemoteConn:
		return ErrNodeDown
	case RemoteBackpressure:
		return ErrBackpressure
	case RemoteStale:
		return &StaleEpochError{Have: e.epochHave, Want: e.epochWant}
	case RemoteTimeout:
		return context.DeadlineExceeded
	case RemoteSemantic:
		return resilient.ErrExhausted
	default:
		return e.Err
	}
}

// RemoteConfig tunes the transport shared by a fleet's RemoteNodes. The
// network-level timeouts here are deliberately distinct from the query
// deadline: X-Deadline-Ms bounds how long the query may run; these bound
// how long the network may dawdle before we call the node unreachable.
type RemoteConfig struct {
	// ConnectTimeout bounds the TCP dial (default 1s). A replica that
	// cannot accept a connection inside it is down, whatever the query
	// deadline says.
	ConnectTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for response headers after
	// the request is written (default 0: the context deadline governs —
	// a query may legitimately compute for its whole budget).
	ResponseHeaderTimeout time.Duration
	// MaxConnsPerReplica bounds concurrent connections per endpoint
	// (default 32), idle ones included — the pool.
	MaxConnsPerReplica int
	// MaxErrorBody bounds how much of an error response body is read
	// (default 8 KiB).
	MaxErrorBody int64
}

func (rc RemoteConfig) withDefaults() RemoteConfig {
	if rc.ConnectTimeout <= 0 {
		rc.ConnectTimeout = time.Second
	}
	if rc.MaxConnsPerReplica <= 0 {
		rc.MaxConnsPerReplica = 32
	}
	if rc.MaxErrorBody <= 0 {
		rc.MaxErrorBody = 8 << 10
	}
	return rc
}

// NewRemoteClient builds the pooled HTTP client RemoteNodes share: one
// bounded connection pool per endpoint, connect timeout independent of
// request deadlines, keep-alives on so a hot shard reuses sockets.
func NewRemoteClient(rc RemoteConfig) *http.Client {
	rc = rc.withDefaults()
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   rc.ConnectTimeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxConnsPerHost:       rc.MaxConnsPerReplica,
			MaxIdleConnsPerHost:   rc.MaxConnsPerReplica,
			IdleConnTimeout:       90 * time.Second,
			ResponseHeaderTimeout: rc.ResponseHeaderTimeout,
		},
	}
}

// RemoteNode is a Node whose replica lives in another process: Ask and
// AskSQL become POST /internal/query against an internal/server
// instance, with the query deadline in X-Deadline-Ms, the trace context
// in X-Trace-Context, the shard map epoch in X-Shard-Epoch, and the
// answer as the typed wire form (resilient.WireAnswer). Safe for
// concurrent use.
type RemoteNode struct {
	// addr returns the replica's current base URL ("http://host:port"),
	// or "" while the process is down. A func, not a string: a
	// supervisor-restarted child comes back on a new port, and routing
	// must follow it without rebuilding the cluster.
	addr func() string

	client *http.Client
	epoch  int64
	maxErr int64
}

// NewRemoteNode builds a RemoteNode. client is typically shared across
// the fleet (NewRemoteClient); epoch 0 disables epoch stamping.
func NewRemoteNode(addr func() string, epoch int64, client *http.Client) *RemoteNode {
	if client == nil {
		client = NewRemoteClient(RemoteConfig{})
	}
	return &RemoteNode{addr: addr, client: client, epoch: epoch, maxErr: 8 << 10}
}

// remoteRequest is the POST /internal/query body: exactly one of
// Question (full NL pipeline on the node) or SQL (trusted pushdown).
type remoteRequest struct {
	Question string `json:"question,omitempty"`
	SQL      string `json:"sql,omitempty"`
}

// Ask implements Node: the natural-language pipeline runs on the remote
// replica, over its partition.
func (n *RemoteNode) Ask(ctx context.Context, question string) (*resilient.Answer, error) {
	return n.do(ctx, remoteRequest{Question: question})
}

// AskSQL implements Node: trusted SQL — the coordinator's pruned and
// partial-aggregate pushdown statements — executed on the remote replica.
func (n *RemoteNode) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	return n.do(ctx, remoteRequest{SQL: sql})
}

func (n *RemoteNode) do(ctx context.Context, reqBody remoteRequest) (*resilient.Answer, error) {
	addr := n.addr()
	rctx, sp := childSpan(ctx, "remote")
	defer sp.End()
	sp.SetAttr("addr", addr)
	if addr == "" {
		// The supervisor knows the process is down; fail without a dial
		// so the breaker learns immediately.
		sp.SetAttr("outcome", "down")
		return nil, &RemoteError{Kind: RemoteConn, Addr: addr, Msg: "no address: process down"}
	}

	body, err := json.Marshal(reqBody)
	if err != nil {
		return nil, &RemoteError{Kind: RemoteProtocol, Addr: addr, Msg: err.Error(), Err: err}
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, addr+"/internal/query", bytes.NewReader(body))
	if err != nil {
		return nil, &RemoteError{Kind: RemoteProtocol, Addr: addr, Msg: err.Error(), Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		// The query deadline travels explicitly: the node bounds its own
		// work by it even if the socket stays healthy.
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	if n.epoch != 0 {
		req.Header.Set(HeaderShardEpoch, strconv.FormatInt(n.epoch, 10))
	}
	if tc, ok := obs.CurrentTraceContext(rctx); ok {
		req.Header.Set("X-Trace-Context", tc.String())
	}

	resp, err := n.client.Do(req)
	if err != nil {
		// The caller's context dying mid-call must surface as the context
		// error — a hedge loser cancelled because its twin won is not a
		// sick replica.
		if ctxErr := ctx.Err(); ctxErr != nil {
			sp.SetAttr("outcome", "ctx")
			return nil, fmt.Errorf("shard: remote %s: %w", addr, ctxErr)
		}
		kind := RemoteConn
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			kind = RemoteTimeout
		}
		sp.SetAttr("outcome", kind.String())
		return nil, &RemoteError{Kind: kind, Addr: addr, Msg: err.Error(), Err: err}
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		rerr := n.classify(addr, resp)
		sp.SetAttr("outcome", rerr.Kind.String())
		return nil, rerr
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			sp.SetAttr("outcome", "ctx")
			return nil, fmt.Errorf("shard: remote %s: %w", addr, ctxErr)
		}
		sp.SetAttr("outcome", "conn")
		return nil, &RemoteError{Kind: RemoteConn, Addr: addr, Msg: "reading response: " + err.Error(), Err: err}
	}
	ans, wire, err := resilient.DecodeAnswerJSON(data)
	if err != nil {
		// A truncated or corrupt payload must never merge: typed refusal.
		sp.SetAttr("outcome", "protocol")
		return nil, &RemoteError{Kind: RemoteProtocol, Addr: addr, Status: resp.StatusCode, Msg: err.Error(), Err: err}
	}
	if rt, terr := wire.RemoteTrace(); terr == nil && rt != nil {
		// One distributed tree: the node's span tree grafts under this
		// call's "remote" span, beneath the coordinator's attempt span.
		sp.Graft(rt.Root)
	}
	sp.SetAttr("outcome", "ok")
	return ans, nil
}

// classify maps a non-200 response onto the taxonomy.
func (n *RemoteNode) classify(addr string, resp *http.Response) *RemoteError {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, n.maxErr))
	msg := strings.TrimSpace(string(data))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		msg = body.Error
	}
	e := &RemoteError{Addr: addr, Status: resp.StatusCode, Msg: msg}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		e.Kind = RemoteBackpressure
		e.ShedReason = resp.Header.Get("X-Shed-Reason")
		if ra, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && ra > 0 {
			e.RetryAfter = time.Duration(ra) * time.Second
		}
	case http.StatusConflict:
		e.Kind = RemoteStale
		e.epochHave = n.epoch
		if want, err := strconv.ParseInt(resp.Header.Get(HeaderShardEpoch), 10, 64); err == nil {
			e.epochWant = want
		}
	case http.StatusGatewayTimeout:
		e.Kind = RemoteTimeout
	case http.StatusUnprocessableEntity:
		e.Kind = RemoteSemantic
	case http.StatusBadRequest, http.StatusNotFound, http.StatusMethodNotAllowed:
		e.Kind = RemoteProtocol
	default:
		e.Kind = RemoteExec
	}
	return e
}

// RemoteFleet names the out-of-process replica endpoints a coordinator
// routes to, plus the shard map epoch they were assigned under.
type RemoteFleet struct {
	// Epoch is the shard map version stamped on every internal request
	// (0 disables epoch checking).
	Epoch int64
	// Addrs supplies each replica's current base URL, [shard][replica].
	// Funcs, not strings: a supervisor-restarted child rebinds on a new
	// port and routing follows without rebuilding the cluster. A func
	// returning "" marks the replica down right now.
	Addrs [][]func() string
	// Client, when non-nil, is the shared HTTP client (otherwise one is
	// built from Transport).
	Client *http.Client
	// Transport tunes the pooled client when Client is nil.
	Transport RemoteConfig
}

// NewRemote builds a Cluster whose replicas are remote internal/server
// processes. db is the full source database — still needed locally for
// the partitioning map (routing, pruning, scatter classification) and
// the cache fingerprint; the remote processes hold the actual partitions
// and execute everything. cfg.Chain is unused: interpretation happens on
// the remote node, over its own partition's chain. All of the in-process
// cluster's machinery — replica breakers, EWMA load routing, hedging,
// retries, scatter-gather with typed partial-aggregate merge, honest
// Partial answers — applies unchanged; only the last hop changed from a
// function call to a socket.
func NewRemote(db *sqldata.Database, cfg Config, fleet RemoteFleet) (*Cluster, error) {
	n := len(fleet.Addrs)
	if n == 0 {
		return nil, fmt.Errorf("shard: remote fleet has no shards")
	}
	replicas := len(fleet.Addrs[0])
	if replicas == 0 {
		return nil, fmt.Errorf("shard: remote shard 0 has no replicas")
	}
	for s, reps := range fleet.Addrs {
		if len(reps) != replicas {
			return nil, fmt.Errorf("shard: remote shard %d has %d replicas, want %d", s, len(reps), replicas)
		}
	}
	cfg.Replicas = replicas
	client := fleet.Client
	if client == nil {
		client = NewRemoteClient(fleet.Transport)
	}
	return newCluster(db, n, cfg, func(s, r int, _ []*sqldata.Database) Node {
		return NewRemoteNode(fleet.Addrs[s][r], fleet.Epoch, client)
	})
}

// retryAfterHint extracts a backpressure error's Retry-After, or 0.
func retryAfterHint(err error) time.Duration {
	var re *RemoteError
	if errors.As(err, &re) && re.Kind == RemoteBackpressure {
		return re.RetryAfter
	}
	return 0
}
