// Out-of-process shard tests: real internal/server instances behind
// httptest listeners, driven through RemoteNode and NewRemote. External
// test package — internal/server imports internal/shard, so these tests
// cannot live inside package shard.
package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
	"nlidb/internal/server"
	"nlidb/internal/shard"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// echoInterp treats the question text as SQL so tests drive routing with
// precise statements (mirrors the in-package sqlInterp).
type echoInterp struct{}

func (echoInterp) Name() string { return "sqlecho" }

func (echoInterp) Interpret(q string) ([]nlq.Interpretation, error) {
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", nlq.ErrNoInterpretation, err)
	}
	return []nlq.Interpretation{{SQL: stmt, Score: 1}}, nil
}

// remoteDB is the FK dataset the remote tests shard.
func remoteDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("fleet")
	cust, err := db.CreateTable(&sqldata.Schema{Name: "customers", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
		{Name: "credit", Type: sqldata.TypeFloat},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"Berlin", "Munich", "Paris", "Oslo"}
	for i := 0; i < 40; i++ {
		cust.MustInsert(
			sqldata.NewInt(int64(i+1)),
			sqldata.NewText(fmt.Sprintf("cust%02d", i)),
			sqldata.NewText(cities[i%len(cities)]),
			sqldata.NewFloat(float64(i%7)*10.5),
		)
	}
	ord, err := db.CreateTable(&sqldata.Schema{
		Name: "orders",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: sqldata.TypeInt},
			{Name: "amount", Type: sqldata.TypeInt},
		},
		ForeignKeys: []sqldata.ForeignKey{{Column: "customer_id", RefTable: "customers", RefColumn: "id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 120; j++ {
		ord.MustInsert(
			sqldata.NewInt(int64(j+1)),
			sqldata.NewInt(int64(j%40)+1),
			sqldata.NewInt(int64((j*13)%97)),
		)
	}
	return db
}

// remoteFleet boots one real internal/server process-equivalent per
// replica (same handler stack a child process serves, minus the OS
// process) and returns the fleet plus per-replica address slots that
// tests can blank to simulate a dead process.
func remoteFleet(t testing.TB, db *sqldata.Database, shards, replicas int, epoch int64) (shard.RemoteFleet, [][]*atomic.Value) {
	t.Helper()
	dbs, _, err := shard.Split(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([][]*atomic.Value, shards)
	fns := make([][]func() string, shards)
	for s := 0; s < shards; s++ {
		addrs[s] = make([]*atomic.Value, replicas)
		fns[s] = make([]func() string, replicas)
		for r := 0; r < replicas; r++ {
			gw := resilient.New(dbs[s], []nlq.Interpreter{echoInterp{}}, resilient.Config{NoRetry: true})
			api := server.New(server.Config{Backend: gw, ShardEpoch: epoch, ShardIndex: s})
			ts := httptest.NewServer(api)
			t.Cleanup(ts.Close)
			slot := &atomic.Value{}
			slot.Store(ts.URL)
			addrs[s][r] = slot
			fns[s][r] = func() string { return slot.Load().(string) }
		}
	}
	return shard.RemoteFleet{Epoch: epoch, Addrs: fns}, addrs
}

// TestRemoteMatchesLocal is the out-of-process correctness contract: a
// cluster whose replicas answer over HTTP returns exactly what the
// unsharded engine returns, typed cells intact, for every distributable
// shape including the partial-aggregate pushdowns.
func TestRemoteMatchesLocal(t *testing.T) {
	db := remoteDB(t)
	single := resilient.New(db, []nlq.Interpreter{echoInterp{}}, resilient.Config{NoRetry: true})
	fleet, _ := remoteFleet(t, db, 3, 2, 1)
	cl, err := shard.NewRemote(db, shard.Config{Seed: 11, CacheSize: -1}, fleet)
	if err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		sql     string
		ordered bool
	}{
		{sql: "SELECT name, city FROM customers"},
		{sql: "SELECT * FROM customers WHERE id = 7"},
		{sql: "SELECT COUNT(*) FROM customers"},
		{sql: "SELECT AVG(credit) FROM customers"},
		{sql: "SELECT SUM(amount), MIN(amount), MAX(amount), COUNT(amount) FROM orders"},
		{sql: "SELECT city, COUNT(*), AVG(credit) FROM customers GROUP BY city"},
		{sql: "SELECT DISTINCT city FROM customers"},
		{sql: "SELECT name FROM customers ORDER BY name LIMIT 5", ordered: true},
		{sql: "SELECT customers.city, SUM(orders.amount) FROM customers JOIN orders ON orders.customer_id = customers.id GROUP BY customers.city"},
		{sql: "SELECT COUNT(*), SUM(credit) FROM customers WHERE city = 'Nowhere'"},
	}
	ctx := context.Background()
	for _, q := range queries {
		want, err := single.Ask(ctx, q.sql)
		if err != nil {
			t.Fatalf("unsharded %q: %v", q.sql, err)
		}
		got, err := cl.Ask(ctx, q.sql)
		if err != nil {
			t.Fatalf("remote %q: %v", q.sql, err)
		}
		if got.Partial {
			t.Errorf("%q: Partial with every node healthy", q.sql)
		}
		equal := got.Result.EqualUnordered(want.Result)
		if q.ordered {
			equal = got.Result.EqualOrdered(want.Result)
		}
		if !equal {
			t.Errorf("%q:\nremote:\n%s\nunsharded:\n%s", q.sql, got.Result, want.Result)
		}
	}
	// Typed cells survived the wire: AVG stays FLOAT even when integral.
	ans, err := cl.Ask(ctx, "SELECT AVG(credit) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if v := ans.Result.Rows[0][0]; v.T != sqldata.TypeFloat {
		t.Fatalf("AVG cell type = %v, want FLOAT", v.T)
	}
}

// TestRemoteErrorTaxonomy drives one RemoteNode against every failure
// shape and asserts the classification — the contract the breaker and
// retry layers rely on.
func TestRemoteErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	kindOf := func(err error) shard.RemoteErrorKind {
		t.Helper()
		var re *shard.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v (%T), want *RemoteError", err, err)
		}
		return re.Kind
	}

	t.Run("conn refused", func(t *testing.T) {
		n := shard.NewRemoteNode(func() string { return "http://127.0.0.1:1" }, 0, nil)
		_, err := n.AskSQL(ctx, "SELECT 1")
		if kindOf(err) != shard.RemoteConn || !errors.Is(err, shard.ErrNodeDown) {
			t.Fatalf("err = %v, want RemoteConn unwrapping to ErrNodeDown", err)
		}
	})

	t.Run("supervisor says down", func(t *testing.T) {
		n := shard.NewRemoteNode(func() string { return "" }, 0, nil)
		_, err := n.AskSQL(ctx, "SELECT 1")
		if kindOf(err) != shard.RemoteConn || !errors.Is(err, shard.ErrNodeDown) {
			t.Fatalf("err = %v, want RemoteConn/ErrNodeDown without a dial", err)
		}
	})

	t.Run("backpressure", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "2")
			w.Header().Set("X-Shed-Reason", "queue_full")
			http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		n := shard.NewRemoteNode(func() string { return ts.URL }, 0, nil)
		_, err := n.AskSQL(ctx, "SELECT 1")
		if kindOf(err) != shard.RemoteBackpressure || !errors.Is(err, shard.ErrBackpressure) {
			t.Fatalf("err = %v, want backpressure", err)
		}
		var re *shard.RemoteError
		errors.As(err, &re)
		if re.RetryAfter != 2*time.Second || re.ShedReason != "queue_full" {
			t.Fatalf("RetryAfter=%v ShedReason=%q, want 2s/queue_full", re.RetryAfter, re.ShedReason)
		}
		if errors.Is(err, shard.ErrNodeDown) {
			t.Fatal("shedding must not look like a dead node")
		}
	})

	t.Run("stale epoch", func(t *testing.T) {
		db := remoteDB(t)
		gw := resilient.New(db, []nlq.Interpreter{echoInterp{}}, resilient.Config{NoRetry: true})
		api := server.New(server.Config{Backend: gw, ShardEpoch: 2})
		ts := httptest.NewServer(api)
		defer ts.Close()
		n := shard.NewRemoteNode(func() string { return ts.URL }, 1, nil)
		_, err := n.AskSQL(ctx, "SELECT COUNT(*) FROM customers")
		if kindOf(err) != shard.RemoteStale || !errors.Is(err, shard.ErrStaleEpoch) {
			t.Fatalf("err = %v, want stale epoch", err)
		}
		var se *shard.StaleEpochError
		if !errors.As(err, &se) || se.Have != 1 || se.Want != 2 {
			t.Fatalf("stale detail = %+v, want have=1 want=2", se)
		}
		// Matching epochs answer fine — the fence, not the path, was the problem.
		n2 := shard.NewRemoteNode(func() string { return ts.URL }, 2, nil)
		if _, err := n2.AskSQL(ctx, "SELECT COUNT(*) FROM customers"); err != nil {
			t.Fatalf("matching epoch failed: %v", err)
		}
	})

	t.Run("semantic", func(t *testing.T) {
		db := remoteDB(t)
		gw := resilient.New(db, []nlq.Interpreter{echoInterp{}}, resilient.Config{NoRetry: true})
		ts := httptest.NewServer(server.New(server.Config{Backend: gw}))
		defer ts.Close()
		n := shard.NewRemoteNode(func() string { return ts.URL }, 0, nil)
		_, err := n.Ask(ctx, "colorless green ideas sleep furiously")
		if kindOf(err) != shard.RemoteSemantic || !errors.Is(err, resilient.ErrExhausted) {
			t.Fatalf("err = %v, want semantic/ErrExhausted", err)
		}
	})

	t.Run("protocol garbage", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"rows": [[{"t":"f","v":"NaN"}]], "columns":["x"]}`))
		}))
		defer ts.Close()
		n := shard.NewRemoteNode(func() string { return ts.URL }, 0, nil)
		_, err := n.AskSQL(ctx, "SELECT 1")
		if kindOf(err) != shard.RemoteProtocol || !errors.Is(err, resilient.ErrWire) {
			t.Fatalf("err = %v, want protocol/ErrWire — NaN must never merge", err)
		}
	})

	t.Run("node-side timeout", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"deadline exceeded"}`, http.StatusGatewayTimeout)
		}))
		defer ts.Close()
		n := shard.NewRemoteNode(func() string { return ts.URL }, 0, nil)
		_, err := n.AskSQL(ctx, "SELECT 1")
		if kindOf(err) != shard.RemoteTimeout || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want timeout", err)
		}
	})

	t.Run("caller cancellation is not node illness", func(t *testing.T) {
		blocked := make(chan struct{})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-blocked
		}))
		defer ts.Close()
		defer close(blocked)
		n := shard.NewRemoteNode(func() string { return ts.URL }, 0, nil)
		cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
		defer cancel()
		_, err := n.AskSQL(cctx, "SELECT 1")
		var re *shard.RemoteError
		if errors.As(err, &re) {
			t.Fatalf("cancelled call classified as %v; must surface the context error", re.Kind)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

// TestRemoteClusterChaos kills every replica-server of one shard (the
// address slots go blank, exactly what a supervisor reports mid-restart)
// and asserts the honest-degradation contract holds across process
// boundaries: scatter answers degrade to Partial+MissingShards, pruned
// questions for the dead shard refuse with ErrShardDown, and restoring
// the addresses recovers complete answers.
func TestRemoteClusterChaos(t *testing.T) {
	db := remoteDB(t)
	fleet, addrs := remoteFleet(t, db, 2, 2, 1)
	cl, err := shard.NewRemote(db, shard.Config{
		Seed:             3,
		CacheSize:        -1,
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		ReplicaThreshold: 2,
		ReplicaCooldown:  20 * time.Millisecond,
		ShardTimeout:     time.Second,
	}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scatter := "SELECT COUNT(*) FROM customers"

	ans, err := cl.Ask(ctx, scatter)
	if err != nil || ans.Partial {
		t.Fatalf("healthy scatter: err=%v partial=%v", err, ans != nil && ans.Partial)
	}

	const dead = 1
	saved := make([]string, len(addrs[dead]))
	for r, slot := range addrs[dead] {
		saved[r] = slot.Load().(string)
		slot.Store("")
	}

	sawPartial := false
	for i := 0; i < 6; i++ {
		ans, err := cl.Ask(ctx, scatter)
		if err != nil {
			t.Fatalf("kill window scatter %d: %v", i, err)
		}
		if ans.Partial {
			sawPartial = true
			if len(ans.MissingShards) != 1 || ans.MissingShards[0] != dead {
				t.Fatalf("missing shards %v, want [%d]", ans.MissingShards, dead)
			}
		}
	}
	if !sawPartial {
		t.Fatal("no scatter answer went Partial with a whole shard's processes gone")
	}

	// A question pruned to the dead shard refuses typed.
	part := cl.Partitioning()
	var deadID, liveID int64
	for id := int64(1); id <= 40; id++ {
		owner, ok := part.Owner("customers", sqldata.NewInt(id))
		if !ok {
			t.Fatal("customers not in the partitioning map")
		}
		if owner == dead {
			if deadID == 0 {
				deadID = id
			}
		} else if liveID == 0 {
			liveID = id
		}
	}
	if _, err := cl.Ask(ctx, fmt.Sprintf("SELECT name FROM customers WHERE id = %d", deadID)); !errors.Is(err, shard.ErrShardDown) {
		t.Fatalf("pruned-to-dead err = %v, want ErrShardDown", err)
	}
	if _, err := cl.Ask(ctx, fmt.Sprintf("SELECT name FROM customers WHERE id = %d", liveID)); err != nil {
		t.Fatalf("pruned-to-live err = %v, want success", err)
	}

	// Addresses come back (supervisor restarted the children): recovery.
	for r, slot := range addrs[dead] {
		slot.Store(saved[r])
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ans, err := cl.Ask(ctx, scatter)
		if err == nil && !ans.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no complete answer within 5s of address restore")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteTraceGraft: the distributed trace is one tree — the
// coordinator's attempt span carries a "remote" child for the HTTP leg,
// and the server process's own span tree hangs beneath it.
func TestRemoteTraceGraft(t *testing.T) {
	db := remoteDB(t)
	fleet, _ := remoteFleet(t, db, 2, 1, 1)
	cl, err := shard.NewRemote(db, shard.Config{Seed: 5, CacheSize: -1}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := cl.Ask(context.Background(), "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil {
		t.Fatal("no coordinator trace")
	}
	remote := ans.Trace.Find("remote")
	if remote == nil {
		t.Fatalf("no remote span in trace:\n%s", ans.Trace)
	}
	if remote.Attr("outcome") != "ok" || remote.Attr("addr") == "" {
		t.Fatalf("remote span attrs outcome=%q addr=%q", remote.Attr("outcome"), remote.Attr("addr"))
	}
	grafted := false
	for _, c := range remote.Children() {
		if c.Name == "query" {
			grafted = true
		}
	}
	if !grafted {
		t.Fatalf("server-side span tree not grafted under the remote span:\n%s", ans.Trace)
	}
}
