package shard

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
)

// replica is one Node plus the health state routing decisions read: a
// circuit breaker over consecutive infrastructure failures, an EWMA of
// call latency, and the current in-flight count.
type replica struct {
	shard int
	idx   int
	node  Node
	br    *resilient.Breaker

	inflight   atomic.Int64
	ewmaMicros atomic.Int64 // 0 = no sample yet
	consecErrs atomic.Int64
}

// healthy reports whether the replica may take a request right now. It
// delegates to the breaker's Allow, so asking is what admits the single
// half-open probe after a cooldown — call it only when the caller will
// actually send the request on a true return.
func (r *replica) healthy() bool { return r.br.Allow() }

// load scores the replica for load-aware picking: queued work dominates,
// smoothed latency breaks ties. Lower is better.
func (r *replica) load() float64 {
	return float64(r.inflight.Load())*1e6 + float64(r.ewmaMicros.Load())
}

// ewmaAlpha is the smoothing factor for the latency EWMA: each new sample
// contributes 30%, so a replica that turns slow is noticed within a few
// calls without a single outlier dominating.
const ewmaAlpha = 0.3

// observe folds one finished call into the replica's health state.
func (r *replica) observe(err error, elapsed time.Duration) {
	us := elapsed.Microseconds()
	if us < 1 {
		us = 1
	}
	for {
		old := r.ewmaMicros.Load()
		var next int64
		if old == 0 {
			next = us
		} else {
			next = int64(math.Round(float64(old)*(1-ewmaAlpha) + float64(us)*ewmaAlpha))
		}
		if r.ewmaMicros.CompareAndSwap(old, next) {
			break
		}
	}
	if err == nil {
		r.consecErrs.Store(0)
		r.br.Success()
		return
	}
	if !replicaCountable(err) {
		return
	}
	r.consecErrs.Add(1)
	r.br.Failure()
}

// replicaCountable reports whether a call failure indicates replica
// ill-health. Cancellation is not: a hedge loser canceled because its
// twin won, or a caller that gave up, says nothing about the replica. A
// clean "no interpretation" chain miss is the replica answering honestly,
// also not ill-health; but an exhausted chain full of panics or
// timeouts, a dead node, or a deadline blown inside the call all count.
func replicaCountable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Kind {
		case RemoteBackpressure, RemoteProtocol, RemoteSemantic:
			// Shedding is load, not ill-health: a breaker opened by 503s
			// would amplify an overload into an outage. Protocol and
			// semantic refusals are deterministic properties of the
			// request; they say nothing about the replica either.
			return false
		}
		// Conn, timeout, stale-epoch, and execution failures all count:
		// the process is unreachable, too slow, misconfigured, or broken.
		return true
	}
	if errors.Is(err, resilient.ErrExhausted) {
		// An exhausted chain can mean "healthy but cannot interpret the
		// question". Count it only when some attempt failed for an
		// infrastructure reason — the same rule the gateway's own breakers
		// use — not when every engine reported a clean semantic miss or
		// was skipped by its breaker.
		var ce *resilient.ChainError
		if errors.As(err, &ce) {
			for _, a := range ce.Attempts {
				if a.Err == nil || errors.Is(a.Err, nlq.ErrNoInterpretation) ||
					errors.Is(a.Err, resilient.ErrBreakerOpen) {
					continue
				}
				return true
			}
		}
		return false
	}
	return true
}
