// Package shard turns the single-process NLIDB gateway into a
// fault-tolerant sharded fleet. Rows are hash-partitioned across N
// in-process engine shards (children co-located with their foreign-key
// parents so FK joins stay shard-local), each shard is served by R
// replicas — every replica a full resilient.Gateway over an immutable
// copy-free view of its partition — and a Cluster coordinates:
//
//   - questions route consistent-hash (rendezvous) to a home replica for
//     NL interpretation, so each answer is interpreted and cached once
//     fleet-wide;
//   - the interpreted SQL is classified: single-shard queries are pruned
//     to their owner shard, cross-shard queries scatter-gather with
//     partial aggregation pushed down, and queries the coordinator cannot
//     merge correctly fail with ErrNotDistributable — never silently
//     wrong;
//   - per-replica health (circuit breaker + EWMA latency + in-flight
//     load) drives load-aware routing, slow calls hedge to a second
//     replica after a latency-percentile delay, and failed shards degrade
//     scatter-gather answers to Partial with the missing shards named.
//
// The survey's north star is NLIDBs serving production traffic; this
// package is the horizontal half of that story — the single-process
// overload work (internal/admission, internal/server) being the vertical
// half.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nlidb/internal/resilient"
)

// Metric family names the cluster publishes (the nlidb_shard_* namespace).
const (
	// MetricRequests counts replica calls by shard and outcome.
	MetricRequests = "nlidb_shard_requests_total"
	// MetricReplicaSeconds is the per-shard replica call latency histogram.
	MetricReplicaSeconds = "nlidb_shard_replica_seconds"
	// MetricReplicaState gauges each replica's breaker (0 closed, 1 open,
	// 2 half-open), labeled by shard and replica index.
	MetricReplicaState = "nlidb_shard_replica_state"
	// MetricHedges counts hedged (second-replica) launches by shard.
	MetricHedges = "nlidb_shard_hedges_total"
	// MetricRetries counts per-shard retry attempts after a failed call.
	MetricRetries = "nlidb_shard_retries_total"
	// MetricRoutes counts answered questions by route: "home" (answered
	// entirely on the interpreting replica), "pruned" (forwarded to one
	// owner shard), "scatter" (fanned out to all shards).
	MetricRoutes = "nlidb_shard_routes_total"
	// MetricPartial counts scatter-gather answers returned Partial.
	MetricPartial = "nlidb_shard_partial_total"
	// MetricShardDown counts scatter legs abandoned because a shard had no
	// healthy replica (after retries), by shard.
	MetricShardDown = "nlidb_shard_down_total"
)

// ErrNodeDown is returned by a killed ChaosNode: the in-process stand-in
// for a crashed replica process.
var ErrNodeDown = errors.New("shard: node down")

// ErrShardDown marks a shard with no replica able to answer — every
// replica failed or has an open breaker. The concrete error is a
// *ShardDownError naming the shard.
var ErrShardDown = errors.New("shard: no healthy replica")

// ErrNotDistributable marks a query the coordinator refuses to run across
// shards because it cannot guarantee a correct merge (sub-queries,
// HAVING, DISTINCT aggregates, non-co-located joins, ...). The concrete
// error is a *NotDistributableError carrying the reason. Callers on a
// single-shard cluster never see it; on a multi-shard cluster it is the
// honest alternative to a silently wrong answer.
var ErrNotDistributable = errors.New("shard: query not distributable")

// ShardDownError reports which shard was unreachable and why.
type ShardDownError struct {
	// Shard is the unreachable shard's index.
	Shard int
	// Err is the last per-replica failure (nil when every replica was
	// skipped by an open breaker).
	Err error
}

func (e *ShardDownError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("shard %d: no healthy replica", e.Shard)
	}
	return fmt.Sprintf("shard %d: no healthy replica (last: %v)", e.Shard, e.Err)
}

// Unwrap lets errors.Is(err, ErrShardDown) match.
func (e *ShardDownError) Unwrap() error { return ErrShardDown }

// NotDistributableError explains why a statement cannot be scattered.
type NotDistributableError struct {
	// Reason is the human-readable refusal.
	Reason string
}

func (e *NotDistributableError) Error() string {
	return "shard: query not distributable: " + e.Reason
}

// Unwrap lets errors.Is(err, ErrNotDistributable) match.
func (e *NotDistributableError) Unwrap() error { return ErrNotDistributable }

// Node is one replica endpoint: a full NL pipeline (Ask) plus a direct
// SQL path (AskSQL) for pushed-down partial statements. The in-process
// implementation is LocalNode; tests interpose ChaosNode to simulate
// crashes and slowness.
type Node interface {
	// Ask answers a natural-language question over the node's partition.
	Ask(ctx context.Context, question string) (*resilient.Answer, error)
	// AskSQL executes trusted SQL over the node's partition.
	AskSQL(ctx context.Context, sql string) (*resilient.Answer, error)
}

// LocalNode is an in-process replica: a resilient.Gateway over one
// shard's partition database.
type LocalNode struct {
	// GW is the replica's gateway.
	GW *resilient.Gateway
}

// Ask implements Node.
func (n *LocalNode) Ask(ctx context.Context, question string) (*resilient.Answer, error) {
	return n.GW.Ask(ctx, question)
}

// AskSQL implements Node.
func (n *LocalNode) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	return n.GW.AskSQL(ctx, sql)
}

// ChaosNode wraps a Node with a kill switch and an optional artificial
// delay, standing in for a crashed or degraded replica process. The
// chaos harness and the shard bench flip replicas down and back up with
// it; Kill/Restore/SetDelay are safe to call while requests are in
// flight.
type ChaosNode struct {
	// Inner is the wrapped replica.
	Inner Node

	down  atomic.Bool
	delay atomic.Int64 // nanoseconds added before every call
}

// Kill makes every subsequent call fail immediately with ErrNodeDown.
func (c *ChaosNode) Kill() { c.down.Store(true) }

// Restore brings the node back.
func (c *ChaosNode) Restore() { c.down.Store(false) }

// Down reports whether the node is currently killed.
func (c *ChaosNode) Down() bool { return c.down.Load() }

// SetDelay adds d of artificial latency before every call (0 clears it).
// The delay respects the call's context.
func (c *ChaosNode) SetDelay(d time.Duration) { c.delay.Store(int64(d)) }

func (c *ChaosNode) gate(ctx context.Context) error {
	if c.down.Load() {
		return ErrNodeDown
	}
	if d := time.Duration(c.delay.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		if c.down.Load() { // killed mid-delay
			return ErrNodeDown
		}
	}
	return nil
}

// Ask implements Node.
func (c *ChaosNode) Ask(ctx context.Context, question string) (*resilient.Answer, error) {
	if err := c.gate(ctx); err != nil {
		return nil, err
	}
	return c.Inner.Ask(ctx, question)
}

// AskSQL implements Node.
func (c *ChaosNode) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	if err := c.gate(ctx); err != nil {
		return nil, err
	}
	return c.Inner.AskSQL(ctx, sql)
}
