package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// HeaderShardEpoch is the request/response header carrying the shard
// map's epoch across the fleet: the coordinator stamps every internal
// request with the epoch it routed under, and a node configured for a
// different epoch refuses typed (409) instead of answering for a
// partition it may no longer own. The response always carries the
// node's own epoch so a stale peer learns the current one.
const HeaderShardEpoch = "X-Shard-Epoch"

// ErrStaleEpoch marks a request routed under an out-of-date shard map:
// the coordinator's epoch and the node's disagree, so the node cannot
// know the request's partition assumptions still hold. The concrete
// error is a *StaleEpochError carrying both epochs.
var ErrStaleEpoch = errors.New("shard: stale shard map epoch")

// StaleEpochError reports the epoch disagreement.
type StaleEpochError struct {
	// Have is the epoch the request was routed under.
	Have int64
	// Want is the epoch the refusing node serves.
	Want int64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("shard: stale shard map epoch %d (node at %d)", e.Have, e.Want)
}

// Unwrap lets errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Unwrap() error { return ErrStaleEpoch }

// Map is the versioned shard map: which replica endpoints serve which
// shard, under a monotonic epoch. The coordinator owns it, serves it on
// /shardmap, and bumps Epoch whenever placement changes (a shard added
// or drained, a replica moved) — the seam for live topology changes.
type Map struct {
	// Epoch is the map's monotonic version. 0 means "unversioned": epoch
	// checks are disabled fleet-wide.
	Epoch int64 `json:"epoch"`
	// Shards lists each shard's replica base URLs, [shard][replica]. An
	// empty string marks a replica currently down (no process bound).
	Shards [][]string `json:"shards"`
}

// MapSource serves the current shard map; Supervisor-backed fleets
// regenerate it per call so restarted replicas show their new address.
type MapSource struct {
	mu sync.Mutex
	fn func() Map
}

// NewMapSource wraps a map generator (called under a lock, so it may
// read mutable supervisor state without its own synchronization).
func NewMapSource(fn func() Map) *MapSource { return &MapSource{fn: fn} }

// Current returns the map as of now.
func (s *MapSource) Current() Map {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fn()
}

// Handler serves the shard map as JSON (GET /shardmap): the discovery
// endpoint an external LB or a joining node reads for topology.
func (s *MapSource) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.Current()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HeaderShardEpoch, fmt.Sprint(m.Epoch))
		json.NewEncoder(w).Encode(m)
	})
}
