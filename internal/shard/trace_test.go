package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/obs"
	"nlidb/internal/resilient"
)

// idProbe wraps a Node to record the trace ID each call arrived with —
// proof that the coordinator's trace identity crosses the node boundary.
type idProbe struct {
	inner Node
	mu    sync.Mutex
	ids   []obs.TraceID
}

func (p *idProbe) record(ctx context.Context) {
	p.mu.Lock()
	p.ids = append(p.ids, obs.ContextTraceID(ctx))
	p.mu.Unlock()
}

func (p *idProbe) Ask(ctx context.Context, q string) (*resilient.Answer, error) {
	p.record(ctx)
	return p.inner.Ask(ctx, q)
}

func (p *idProbe) AskSQL(ctx context.Context, q string) (*resilient.Answer, error) {
	p.record(ctx)
	return p.inner.AskSQL(ctx, q)
}

func (p *idProbe) recorded() []obs.TraceID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]obs.TraceID(nil), p.ids...)
}

// childNamed returns sp's direct children with the given name.
func childNamed(sp *obs.Span, name string) []*obs.Span {
	var out []*obs.Span
	for _, c := range sp.Children() {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// TestScatterTraceCrossNode is the acceptance shape: one scatter query's
// trace must show the coordinator's classify/route spans, per-shard legs
// with annotated replica attempts, the nested replica-gateway trace under
// each attempt, and the merge — all under a single trace ID that the
// replica nodes saw on the wire.
func TestScatterTraceCrossNode(t *testing.T) {
	db := fleetDB(t)
	var probes []*idProbe
	var mu sync.Mutex
	cl := testCluster(t, db, 3, Config{
		Replicas:  1,
		CacheSize: -1,
		Seed:      9,
		WrapNode: func(s, r int, n Node) Node {
			p := &idProbe{inner: n}
			mu.Lock()
			probes = append(probes, p)
			mu.Unlock()
			return p
		},
	})

	ans, err := cl.Ask(context.Background(), "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	tr := ans.Trace
	if tr == nil {
		t.Fatal("scatter answer carries no trace")
	}
	if tr.ID == "" {
		t.Fatal("trace has no ID")
	}
	root := tr.Root
	if root.Name != "query" || !root.Ended() {
		t.Fatalf("root = %q ended=%v, want an ended query span", root.Name, root.Ended())
	}
	if root.Attr("route") != "scatter" || root.Attr("outcome") != "ok" {
		t.Fatalf("root attrs route=%q outcome=%q, want scatter/ok", root.Attr("route"), root.Attr("outcome"))
	}

	// Coordinator phase spans.
	interp := tr.Find("interpret")
	if interp == nil {
		t.Fatal("no interpret span")
	}
	home, err := strconv.Atoi(interp.Attr("home"))
	if err != nil || home < 0 || home >= 3 {
		t.Fatalf("interpret home attr = %q, want a shard index", interp.Attr("home"))
	}
	// Interpretation itself ran as a shard leg under the interpret span.
	homeLegs := childNamed(interp, fmt.Sprintf("shard %d", home))
	if len(homeLegs) == 0 {
		t.Fatalf("interpret span has no 'shard %d' leg", home)
	}
	if got := homeLegs[0].Attr("stmt"); got != "nl" {
		t.Fatalf("interpret leg stmt = %q, want nl", got)
	}
	classify := tr.Find("classify")
	if classify == nil || classify.Attr("route") != "scatter" {
		t.Fatalf("classify span = %v (route %q), want route=scatter", classify, classify.Attr("route"))
	}

	// Scatter fan-out: one leg per shard, each with an attempt span whose
	// annotations name the replica, why the attempt exists, and the breaker
	// state it saw — and the replica gateway's own trace nested beneath.
	scatter := tr.Find("scatter")
	if scatter == nil {
		t.Fatal("no scatter span")
	}
	if got := scatter.Count("shards"); got != 3 {
		t.Fatalf("scatter shards count = %d, want 3", got)
	}
	for s := 0; s < 3; s++ {
		legs := childNamed(scatter, fmt.Sprintf("shard %d", s))
		if len(legs) != 1 {
			t.Fatalf("scatter has %d 'shard %d' legs, want 1", len(legs), s)
		}
		leg := legs[0]
		if got := leg.Attr("stmt"); got != "sql" {
			t.Fatalf("shard %d leg stmt = %q, want sql (pushed-down partial)", s, got)
		}
		attempts := childNamed(leg, "attempt")
		if len(attempts) == 0 {
			t.Fatalf("shard %d leg has no attempt span", s)
		}
		at := attempts[0]
		if at.Attr("replica") != "0" || at.Attr("kind") != "primary" {
			t.Fatalf("shard %d attempt attrs replica=%q kind=%q", s, at.Attr("replica"), at.Attr("kind"))
		}
		if at.Attr("breaker") != "closed" || at.Attr("outcome") != "ok" {
			t.Fatalf("shard %d attempt breaker=%q outcome=%q", s, at.Attr("breaker"), at.Attr("outcome"))
		}
		// The replica's own gateway trace joined the tree across the node
		// boundary: its root "query" span hangs under the attempt.
		if len(childNamed(at, "query")) == 0 {
			t.Fatalf("shard %d attempt has no nested replica query span", s)
		}
	}

	merge := tr.Find("merge")
	if merge == nil {
		t.Fatal("no merge span")
	}
	if merge.Count("merged") != 3 || merge.Count("rows") != 1 {
		t.Fatalf("merge counts merged=%d rows=%d, want 3/1", merge.Count("merged"), merge.Count("rows"))
	}
	if merge.Attr("missing") != "" {
		t.Fatalf("healthy scatter recorded missing=%q", merge.Attr("missing"))
	}

	// Every node-boundary crossing carried the coordinator's trace ID:
	// 1 NL interpretation call + 3 scatter SQL calls, all under one ID.
	var seen []obs.TraceID
	for _, p := range probes {
		seen = append(seen, p.recorded()...)
	}
	if len(seen) != 4 {
		t.Fatalf("replica nodes saw %d calls, want 4 (interpret + 3 scatter legs)", len(seen))
	}
	for _, id := range seen {
		if id != tr.ID {
			t.Fatalf("replica saw trace ID %q, want coordinator's %q", id, tr.ID)
		}
	}

	// The rendered tree tells the whole story in one place.
	rendered := tr.String()
	for _, want := range []string{"interpret", "classify", "scatter", "attempt", "merge", "route=scatter"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, rendered)
		}
	}
}

// TestNoTraceDisablesCoordinatorSpans: with coordinator and gateway
// tracing both off, Ask must stay span-free end to end.
func TestNoTraceDisablesCoordinatorSpans(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 2, Config{
		Replicas: 1, NoTrace: true, CacheSize: -1,
		Gateway: resilient.Config{NoTrace: true},
	})
	ans, err := cl.Ask(context.Background(), "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != nil {
		t.Fatal("NoTrace cluster attached a trace")
	}
}

// TestCoordinatorSlowLogAndTraceStore: the coordinator's slow-log entry
// carries the fleet fields and links, by trace ID, to the retained full
// trace in the TraceStore.
func TestCoordinatorSlowLogAndTraceStore(t *testing.T) {
	db := fleetDB(t)
	slow := obs.NewSlowLog(0, 16)                                    // threshold 0: record everything
	traces := obs.NewTraceStore(obs.TraceStoreConfig{SampleRate: 1}) // retain everything
	cl := testCluster(t, db, 3, Config{
		Replicas:  1,
		CacheSize: -1,
		SlowLog:   slow,
		Traces:    traces,
	})
	ans, err := cl.Ask(context.Background(), "SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	entries := slow.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Route != "scatter" || e.Shards != 4 || e.Partial || e.Outcome != "ok" {
		t.Fatalf("entry = route %q shards %d partial %v outcome %q, want scatter/4/false/ok", e.Route, e.Shards, e.Partial, e.Outcome)
	}
	if e.TraceID != ans.Trace.ID {
		t.Fatalf("entry trace ID %q != answer's %q", e.TraceID, ans.Trace.ID)
	}
	line := slow.String()
	for _, want := range []string{"route=scatter", "shards=4", "trace=" + string(e.TraceID)} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-log line missing %q:\n%s", want, line)
		}
	}
	// The ID on the slow line resolves to the retained full trace.
	st, ok := traces.Get(e.TraceID)
	if !ok {
		t.Fatal("slow-log trace ID not retained in the TraceStore")
	}
	if st.Trace != ans.Trace {
		t.Fatal("retained trace is not the answer's trace")
	}
}

// TestFleetRollups: the always-on per-shard counters, the /fleet JSON
// surface, and the scrape-time Prometheus families.
func TestFleetRollups(t *testing.T) {
	db := fleetDB(t)
	cl := testCluster(t, db, 2, Config{Replicas: 2, CacheSize: -1, Seed: 3})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cl.Ask(ctx, "SELECT COUNT(*) FROM customers"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Ask(ctx, "SELECT name FROM customers WHERE id = 7"); err != nil {
		t.Fatal(err)
	}

	fs := cl.FleetStatus()
	if fs.Shards != 2 || fs.ReplicasPerShard != 2 {
		t.Fatalf("fleet shape = %d x %d, want 2 x 2", fs.Shards, fs.ReplicasPerShard)
	}
	if fs.Routes["scatter"] != 5 {
		t.Fatalf("scatter route count = %d, want 5", fs.Routes["scatter"])
	}
	if fs.Routes["pruned"]+fs.Routes["home"] != 1 {
		t.Fatalf("routes = %v, want the id=7 question counted once as pruned or home", fs.Routes)
	}
	if fs.Partials != 0 || fs.PartialRate != 0 {
		t.Fatalf("healthy fleet reports partials: %d (rate %g)", fs.Partials, fs.PartialRate)
	}
	var totalReq int64
	for _, sh := range fs.PerShard {
		totalReq += sh.Requests
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replicas, want 2", sh.Shard, len(sh.Replicas))
		}
		for _, rep := range sh.Replicas {
			if rep.State != "closed" {
				t.Fatalf("healthy replica %d/%d state = %q", sh.Shard, rep.Replica, rep.State)
			}
		}
		if sh.Requests > 0 && sh.P99MS <= 0 {
			t.Fatalf("shard %d served %d requests but reports p99 = %g", sh.Shard, sh.Requests, sh.P99MS)
		}
	}
	// 5 scatters x 2 shards + 1 interpret each + the pruned question's
	// legs: at least 11 replica calls fleet-wide.
	if totalReq < 11 {
		t.Fatalf("fleet-wide requests = %d, want >= 11", totalReq)
	}

	// /fleet serves the same shape as JSON.
	rr := httptest.NewRecorder()
	cl.FleetHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/fleet", nil))
	var got FleetStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("/fleet is not JSON: %v\n%s", err, rr.Body.String())
	}
	if got.Shards != 2 || len(got.PerShard) != 2 {
		t.Fatalf("/fleet = %+v, want 2 shards", got)
	}

	var sb strings.Builder
	cl.WriteProm(&sb)
	prom := sb.String()
	for _, want := range []string{
		`nlidb_shard_replica_ewma_micros{shard="0",replica="0"}`,
		`nlidb_shard_replica_inflight{shard="1",replica="1"} 0`,
		`nlidb_shard_latency_ms{shard="0",quantile="0.99"}`,
		`nlidb_shard_hedge_wins_total{shard="0"}`,
		"nlidb_shard_partial_rate 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("fleet prom dump missing %q:\n%s", want, prom)
		}
	}
}

// TestChaosTracingVisibility runs a kill/restore window with tracing on
// and asserts the incident is fully visible in the observability layer:
// every breaker transition surfaces through BreakerHook, degraded answers
// are retained as partial exemplar traces whose merge span names the dead
// shard, and recovery shows up as half-open → closed transitions.
func TestChaosTracingVisibility(t *testing.T) {
	db := fleetDB(t)
	traces := obs.NewTraceStore(obs.TraceStoreConfig{SampleRate: -1, SlowThreshold: -1})
	type transition struct {
		shard, replica int
		from, to       string
	}
	var tmu sync.Mutex
	var trans []transition
	sawTransition := func(want transition) bool {
		tmu.Lock()
		defer tmu.Unlock()
		for _, tr := range trans {
			if tr == want {
				return true
			}
		}
		return false
	}

	nodes := make([][]*ChaosNode, 2)
	cl := testCluster(t, db, 2, Config{
		Replicas:         2,
		Gateway:          resilient.Config{NoRetry: true, NoTrace: true},
		ShardTimeout:     300 * time.Millisecond,
		Retries:          1,
		RetryBackoff:     time.Millisecond,
		ReplicaThreshold: 2,
		ReplicaCooldown:  30 * time.Millisecond,
		CacheSize:        -1,
		Seed:             0xFACE,
		Traces:           traces,
		BreakerHook: func(s, r int, from, to string) {
			tmu.Lock()
			trans = append(trans, transition{s, r, from, to})
			tmu.Unlock()
		},
		WrapNode: func(s, r int, n Node) Node {
			cn := &ChaosNode{Inner: n}
			nodes[s] = append(nodes[s], cn)
			return cn
		},
	})

	scatter := "SELECT COUNT(*) FROM customers"
	var wave []string
	for i := 0; i < 8; i++ {
		wave = append(wave, scatter)
	}
	if s := runWave(t, cl, wave, nil); s.failed > 0 || s.partial > 0 {
		t.Fatalf("healthy wave: %d failed %d partial (first: %v)", s.failed, s.partial, s.firstErr)
	}

	const dead = 1
	for _, n := range nodes[dead] {
		n.Kill()
	}
	s := runWave(t, cl, wave, nil)
	if s.failed > 0 {
		t.Fatalf("kill wave: %d failures, first: %v", s.failed, s.firstErr)
	}
	if s.partial != s.ok {
		t.Fatalf("kill wave: %d/%d answers partial, want all", s.partial, s.ok)
	}

	// The kill window is visible as breaker trips on the dead shard only.
	for r := 0; r < 2; r++ {
		if !sawTransition(transition{dead, r, "closed", "open"}) {
			t.Errorf("no closed→open transition recorded for replica %d/%d", dead, r)
		}
	}
	tmu.Lock()
	for _, tr := range trans {
		if tr.shard != dead {
			t.Errorf("healthy shard %d replica %d transitioned %s→%s during the kill window", tr.shard, tr.replica, tr.from, tr.to)
		}
	}
	tmu.Unlock()

	// Every degraded answer left a partial exemplar trace naming the
	// dead shard in its merge span.
	var partials int
	for _, st := range traces.List() {
		if st.Reason != "partial" {
			continue
		}
		partials++
		root := st.Trace.Root
		if root.Attr("partial") != "true" || root.Attr("route") != "scatter" {
			t.Fatalf("partial trace root attrs partial=%q route=%q", root.Attr("partial"), root.Attr("route"))
		}
		merge := st.Trace.Find("merge")
		if merge == nil || !strings.Contains(merge.Attr("missing"), strconv.Itoa(dead)) {
			t.Fatalf("partial trace merge span does not name shard %d: %v", dead, merge)
		}
		// The dead shard's leg ended in shard_down; the survivor answered.
		legDead := st.Trace.Find(fmt.Sprintf("shard %d", dead))
		if legDead == nil || legDead.Attr("outcome") != "shard_down" {
			t.Fatalf("dead shard leg missing or not marked shard_down: %v", legDead)
		}
	}
	if partials != s.partial {
		t.Fatalf("retained %d partial traces, want %d (one per degraded answer)", partials, s.partial)
	}

	// Restore, and the recovery is visible too: the breakers probe
	// (open → half-open) and close again.
	for _, n := range nodes[dead] {
		n.Restore()
	}
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		ans, err := cl.Ask(context.Background(), scatter)
		if err == nil && !ans.Partial {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no complete answer within 5s of restore")
	}
	halfOpen, closed := false, false
	tmu.Lock()
	for _, tr := range trans {
		if tr.shard == dead && tr.from == "open" && tr.to == "half-open" {
			halfOpen = true
		}
		if tr.shard == dead && tr.from == "half-open" && tr.to == "closed" {
			closed = true
		}
	}
	tmu.Unlock()
	if !halfOpen || !closed {
		t.Fatalf("recovery transitions missing: open→half-open=%v half-open→closed=%v", halfOpen, closed)
	}
}
