package sqldata

// Columnar access to a Table: typed column vectors (one Go slice per
// column, plus a null bitmap) rebuilt lazily from the row store. The
// row store stays authoritative — Insert and every existing caller keep
// working on []Row — while batch-at-a-time consumers (the vectorized
// executor in internal/plan, the stats builder below) read the cached
// vectors. The cache is keyed by the table's mutation version: any
// Insert invalidates it implicitly, and concurrent readers may race to
// rebuild but always observe a consistent snapshot via the atomic
// pointer.

// Bitmap is a packed bitset; column vectors use it to mark NULL slots.
type Bitmap struct {
	bits []uint64
	n    int
}

// NewBitmap returns an all-zero bitmap of n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]uint64, (n+63)/64), n: n}
}

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.bits[i>>6] |= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.bits[i>>6]&(1<<uint(i&63)) != 0 }

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.bits {
		total += popcount(w)
	}
	return total
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// ColumnVector is one column of a table decomposed into a typed slice.
// Exactly one payload slice is populated, chosen by Type (TypeInt and
// TypeDate both use Ints — dates are days since the epoch). Nulls is
// nil when the column has no NULLs, which lets tight loops skip the
// bitmap test entirely.
type ColumnVector struct {
	Type  Type
	Len   int
	Nulls *Bitmap // nil ⇒ no NULLs

	Ints   []int64   // TypeInt, TypeDate
	Floats []float64 // TypeFloat
	Texts  []string  // TypeText
	Bools  []bool    // TypeBool
}

// Null reports whether slot i is NULL.
func (cv *ColumnVector) Null(i int) bool {
	return cv.Nulls != nil && cv.Nulls.Get(i)
}

// Value boxes slot i back into a Value.
func (cv *ColumnVector) Value(i int) Value {
	if cv.Null(i) {
		return NullValue()
	}
	switch cv.Type {
	case TypeInt:
		return NewInt(cv.Ints[i])
	case TypeFloat:
		return NewFloat(cv.Floats[i])
	case TypeText:
		return NewText(cv.Texts[i])
	case TypeBool:
		return NewBool(cv.Bools[i])
	case TypeDate:
		return NewDateDays(cv.Ints[i])
	default:
		return NullValue()
	}
}

// colCache is one immutable columnar+stats snapshot of a table.
type colCache struct {
	version uint64
	cols    []*ColumnVector
	stats   []*ColStats
}

// Columnar returns the table's columns as typed vectors, built on first
// use and cached until the next Insert (the cache is keyed by Version).
// The returned slices are shared snapshots: callers must not modify
// them.
func (t *Table) Columnar() []*ColumnVector { return t.colState().cols }

// Stats returns per-column statistics (row/null counts, NDV estimate,
// min/max, equi-width histogram), maintained alongside the columnar
// cache: computed when a freshly loaded or mutated table is first read.
func (t *Table) Stats() []*ColStats { return t.colState().stats }

func (t *Table) colState() *colCache {
	v := t.Version()
	if c := t.columnar.Load(); c != nil && c.version == v {
		return c
	}
	c := &colCache{version: v, cols: buildColumns(t)}
	c.stats = make([]*ColStats, len(c.cols))
	for i, cv := range c.cols {
		c.stats[i] = buildColStats(cv)
	}
	t.columnar.Store(c)
	return c
}

func buildColumns(t *Table) []*ColumnVector {
	n := len(t.Rows)
	cols := make([]*ColumnVector, len(t.Schema.Columns))
	for j, c := range t.Schema.Columns {
		cv := &ColumnVector{Type: c.Type, Len: n}
		switch c.Type {
		case TypeInt, TypeDate:
			cv.Ints = make([]int64, n)
		case TypeFloat:
			cv.Floats = make([]float64, n)
		case TypeText:
			cv.Texts = make([]string, n)
		case TypeBool:
			cv.Bools = make([]bool, n)
		}
		cols[j] = cv
	}
	for i, r := range t.Rows {
		for j, v := range r {
			cv := cols[j]
			if v.Null {
				if cv.Nulls == nil {
					cv.Nulls = NewBitmap(n)
				}
				cv.Nulls.Set(i)
				continue
			}
			switch cv.Type {
			case TypeInt:
				cv.Ints[i] = v.i
			case TypeFloat:
				cv.Floats[i] = v.f
			case TypeText:
				cv.Texts[i] = v.s
			case TypeBool:
				cv.Bools[i] = v.b
			case TypeDate:
				cv.Ints[i] = v.i
			}
		}
	}
	return cols
}
