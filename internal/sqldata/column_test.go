package sqldata

import (
	"math"
	"strings"
	"testing"
)

func colFixture(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(&Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TypeInt},
		{Name: "score", Type: TypeFloat},
		{Name: "name", Type: TypeText},
		{Name: "ok", Type: TypeBool},
		{Name: "day", Type: TypeDate},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(NewInt(1), NewFloat(0.5), NewText("ann"), NewBool(true), NewDateDays(100))
	tbl.MustInsert(NewInt(2), NullValue(), NewText("bob"), NewBool(false), NewDateDays(200))
	tbl.MustInsert(NewInt(3), NewFloat(2.5), NullValue(), NewBool(true), NullValue())
	return tbl
}

func TestColumnarVectorsMirrorRows(t *testing.T) {
	tbl := colFixture(t)
	cols := tbl.Columnar()
	if len(cols) != 5 {
		t.Fatalf("got %d columns", len(cols))
	}
	for j, cv := range cols {
		if cv.Len != 3 {
			t.Fatalf("column %d Len = %d", j, cv.Len)
		}
		for i := 0; i < cv.Len; i++ {
			if !cv.Value(i).Equal(tbl.Rows[i][j]) {
				t.Errorf("col %d row %d: vector %v != row %v", j, i, cv.Value(i), tbl.Rows[i][j])
			}
		}
	}
	if cols[0].Nulls != nil {
		t.Error("id column should have a nil null bitmap")
	}
	if cols[1].Nulls == nil || !cols[1].Null(1) || cols[1].Null(0) {
		t.Error("score null bitmap wrong")
	}
}

func TestColumnarCacheInvalidatesOnInsert(t *testing.T) {
	tbl := colFixture(t)
	c1 := tbl.Columnar()
	if c2 := tbl.Columnar(); &c1[0] != &c2[0] {
		t.Error("repeated Columnar() should return the cached snapshot")
	}
	tbl.MustInsert(NewInt(4), NewFloat(9), NewText("zed"), NewBool(false), NewDateDays(300))
	c3 := tbl.Columnar()
	if c3[0].Len != 4 {
		t.Errorf("after Insert, vector Len = %d, want 4", c3[0].Len)
	}
	if got := c3[0].Ints[3]; got != 4 {
		t.Errorf("new row not in rebuilt vector: %d", got)
	}
	s := tbl.Stats()
	if s[0].Rows != 4 || s[0].NDV != 4 {
		t.Errorf("stats after Insert: rows=%d ndv=%d, want 4/4", s[0].Rows, s[0].NDV)
	}
}

func TestColStatsBasics(t *testing.T) {
	tbl := colFixture(t)
	s := tbl.Stats()

	id := s[0]
	if id.Rows != 3 || id.Nulls != 0 || id.NDV != 3 || !id.NDVExact {
		t.Errorf("id stats: %+v", id)
	}
	if !id.HasMinMax || id.Min.Int() != 1 || id.Max.Int() != 3 {
		t.Errorf("id min/max: %v..%v", id.Min, id.Max)
	}

	score := s[1]
	if score.Nulls != 1 || score.NDV != 2 {
		t.Errorf("score stats: %+v", score)
	}
	if score.NullFrac() != 1.0/3 {
		t.Errorf("score null frac = %v", score.NullFrac())
	}

	day := s[4]
	if !day.HasMinMax || day.Min.DateDays() != 100 || day.Max.DateDays() != 200 {
		t.Errorf("day min/max: %v..%v", day.Min, day.Max)
	}
}

func TestColStatsHistogramSelectivity(t *testing.T) {
	tbl, err := NewTable(&Schema{Name: "h", Columns: []Column{{Name: "x", Type: TypeInt}}})
	if err != nil {
		t.Fatal(err)
	}
	// 0..999 uniform: FracBelow(100) should be close to 0.1.
	for i := 0; i < 1000; i++ {
		tbl.MustInsert(NewInt(int64(i)))
	}
	s := tbl.Stats()[0]
	if got := s.FracBelow(100, false); math.Abs(got-0.1) > 0.02 {
		t.Errorf("FracBelow(100) = %v, want ≈0.1", got)
	}
	if got := s.FracBelow(-5, false); got != 0 {
		t.Errorf("FracBelow(min-ε) = %v, want 0", got)
	}
	if got := s.FracBelow(5000, false); math.Abs(got-1) > 1e-9 {
		t.Errorf("FracBelow(max+ε) = %v, want 1", got)
	}
	if got := s.EqSelectivity(); math.Abs(got-0.001) > 1e-4 {
		t.Errorf("EqSelectivity = %v, want ≈1/1000", got)
	}
}

func TestColStatsNDVSketchLargeColumn(t *testing.T) {
	tbl, err := NewTable(&Schema{Name: "big", Columns: []Column{
		{Name: "uniq", Type: TypeInt},
		{Name: "mod", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		tbl.MustInsert(NewInt(int64(i)), NewInt(int64(i%17)))
	}
	s := tbl.Stats()
	uniq := s[0]
	if uniq.NDVExact {
		t.Error("20k distinct values should overflow the exact counter")
	}
	if float64(uniq.NDV) < 0.8*n || float64(uniq.NDV) > 1.2*n {
		t.Errorf("sketched NDV = %d, want within 20%% of %d", uniq.NDV, n)
	}
	if s[1].NDV != 17 || !s[1].NDVExact {
		t.Errorf("mod-17 NDV = %d (exact=%v), want 17 exact", s[1].NDV, s[1].NDVExact)
	}
}

// Stats NDV must agree with Value.Key canonicalization: an int column
// joined against a float column holding the same mathematical values
// counts the same distinct set.
func TestColStatsFloatCanonicalNDV(t *testing.T) {
	tbl, err := NewTable(&Schema{Name: "f", Columns: []Column{{Name: "x", Type: TypeFloat}}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(NewFloat(1))
	tbl.MustInsert(NewFloat(1.0))
	tbl.MustInsert(NewFloat(math.Copysign(0, -1)))
	tbl.MustInsert(NewFloat(0))
	tbl.MustInsert(NewFloat(math.NaN()))
	tbl.MustInsert(NewFloat(math.NaN()))
	if s := tbl.Stats()[0]; s.NDV != 3 {
		t.Errorf("NDV = %d, want 3 (1, 0, NaN)", s.NDV)
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unexpected bits set")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	if b.Len() != 130 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestLoadCSVBuildsStatsEagerly(t *testing.T) {
	tbl, err := LoadCSV("t", strings.NewReader("a,b\n1,x\n2,y\n3,x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.columnar.Load(); c == nil {
		t.Fatal("LoadCSV did not populate the columnar cache")
	}
	s := tbl.Stats()
	if s[0].NDV != 3 || s[1].NDV != 2 {
		t.Errorf("csv stats NDV = %d/%d, want 3/2", s[0].NDV, s[1].NDV)
	}
}
