package sqldata

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadCSV reads rows from r (with a header line) into a new table with the
// given name. Column types are inferred from the data: a column whose
// non-empty cells all parse as integers is INT, as floats FLOAT, as
// ISO dates DATE, as true/false BOOL; everything else is TEXT. Empty cells
// become NULL. The header supplies column names (normalized to lower-case
// with spaces replaced by underscores).
func LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sqldata: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("sqldata: csv %q has no header", name)
	}
	header := records[0]
	body := records[1:]

	types := make([]Type, len(header))
	for c := range header {
		types[c] = inferColumnType(body, c)
	}

	schema := &Schema{Name: name}
	for c, h := range header {
		col := strings.ToLower(strings.TrimSpace(h))
		col = strings.ReplaceAll(col, " ", "_")
		if col == "" {
			return nil, fmt.Errorf("sqldata: csv %q: empty header in column %d", name, c+1)
		}
		schema.Columns = append(schema.Columns, Column{Name: col, Type: types[c]})
	}
	tbl, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	for ri, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("sqldata: csv %q row %d: %d cells, want %d", name, ri+2, len(rec), len(header))
		}
		row := make(Row, len(rec))
		for c, cell := range rec {
			v, err := parseCell(cell, types[c])
			if err != nil {
				return nil, fmt.Errorf("sqldata: csv %q row %d column %q: %w", name, ri+2, schema.Columns[c].Name, err)
			}
			row[c] = v
		}
		if err := tbl.Insert(row); err != nil {
			return nil, fmt.Errorf("sqldata: csv %q row %d: %w", name, ri+2, err)
		}
	}
	// Build the columnar vectors and column statistics eagerly so a
	// freshly loaded table is immediately ready for the vectorized
	// executor and the cost model (Insert invalidates; see column.go).
	tbl.colState()
	return tbl, nil
}

// inferColumnType picks the narrowest type all non-empty cells fit. A
// cell only counts as numeric when it is the canonical rendering of the
// parsed number — exactly what WriteCSV would emit back — so cells like
// "007", "+5", ".5", or "1.50" keep their column TEXT instead of
// silently losing the original spelling on a load/store round trip. A
// column with no non-empty cells is TEXT (every parser vacuously
// matches, and TEXT is the only honest choice).
func inferColumnType(rows [][]string, c int) Type {
	sawAny := false
	isInt, isFloat, isBool, isDate := true, true, true, true
	for _, rec := range rows {
		if c >= len(rec) {
			continue
		}
		cell := strings.TrimSpace(rec[c])
		if cell == "" {
			continue
		}
		sawAny = true
		if !canonicalNumber(cell, TypeInt) {
			isInt = false
		}
		if !canonicalNumber(cell, TypeFloat) {
			isFloat = false
		}
		lc := strings.ToLower(cell)
		if lc != "true" && lc != "false" {
			isBool = false
		}
		if _, err := ParseDate(cell); err != nil {
			isDate = false
		}
	}
	switch {
	case !sawAny:
		return TypeText
	case isInt:
		return TypeInt
	case isFloat:
		return TypeFloat
	case isBool:
		return TypeBool
	case isDate:
		return TypeDate
	default:
		return TypeText
	}
}

// canonicalNumber reports whether cell is the canonical decimal form of
// an int64 or float64 — i.e. parsing and re-rendering it (the way
// Value.String and WriteCSV do) reproduces the cell byte-for-byte.
// Rejects leading zeros ("007"), explicit plus signs ("+5"), bare
// fractions (".5"), exponent respellings ("1e3"), and trailing zeros
// ("1.50"), all of which would lose the original text if typed as a
// number.
func canonicalNumber(cell string, t Type) bool {
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		return err == nil && strconv.FormatInt(n, 10) == cell
	case TypeFloat:
		f, err := strconv.ParseFloat(cell, 64)
		return err == nil && strconv.FormatFloat(f, 'g', -1, 64) == cell
	default:
		return false
	}
}

func parseCell(cell string, t Type) (Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return NullValue(), nil
	}
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, err
		}
		return NewInt(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Value{}, err
		}
		return NewFloat(f), nil
	case TypeBool:
		return NewBool(strings.EqualFold(cell, "true")), nil
	case TypeDate:
		return ParseDate(cell)
	default:
		return NewText(cell), nil
	}
}

// WriteCSV renders a result set as CSV (header + rows); NULLs are empty.
func WriteCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(res.Columns); err != nil {
		return err
	}
	for _, row := range res.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			if v.Null {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
