package sqldata

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

func TestLoadCSVInfersTypes(t *testing.T) {
	src := `id,Name,Salary,Hired,Active,Note
1,ann,95000.5,2015-02-10,true,fast
2,bob,72000,2017-06-01,false,
3,cyd,,2019-09-15,true,42`
	tbl, err := LoadCSV("employee", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema
	wantTypes := map[string]Type{
		"id": TypeInt, "name": TypeText, "salary": TypeFloat,
		"hired": TypeDate, "active": TypeBool, "note": TypeText,
	}
	for col, want := range wantTypes {
		c := s.Column(col)
		if c == nil {
			t.Fatalf("column %q missing", col)
		}
		if c.Type != want {
			t.Errorf("column %q inferred %v, want %v", col, c.Type, want)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if !tbl.Rows[2][2].Null {
		t.Error("empty cell not NULL")
	}
	if tbl.Rows[0][3].String() != "2015-02-10" {
		t.Errorf("date cell = %s", tbl.Rows[0][3])
	}
	if got := tbl.Rows[2][5].Text(); got != "42" {
		t.Errorf("mixed column not TEXT: %v", got)
	}
}

func TestLoadCSVHeaderNormalization(t *testing.T) {
	tbl, err := LoadCSV("t", strings.NewReader("Full Name,X\nann,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.Column("full_name") == nil {
		t.Errorf("header not normalized: %+v", tbl.Schema.Columns)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := LoadCSV("t", strings.NewReader("a,\n1,2\n")); err == nil {
		t.Error("empty header cell accepted")
	}
	// Ragged rows are rejected by encoding/csv itself.
	if _, err := LoadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row accepted")
	}
}

// Malformed input must fail with an error that names the offending line,
// so cmd/nlidb can report actionable diagnostics instead of exiting blind.
func TestLoadCSVMalformedReportsLine(t *testing.T) {
	tests := []struct {
		name, in, wantLine string
	}{
		{"ragged row mid-file", "a,b\n1,2\n3\n4,5\n", "line 3"},
		{"bare quote in cell", "a,b\n1,\"x\n", "line 2"},
		{"extra field", "a,b\n1,2,3\n", "line 2"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadCSV("t", strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("malformed csv %q accepted", tc.in)
			}
			var pe *csv.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v does not expose *csv.ParseError", err)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name the offending %s", err, tc.wantLine)
			}
		})
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	res := &Result{
		Columns: []string{"name", "n"},
		Rows: []Row{
			{NewText("ann"), NewInt(3)},
			{NullValue(), NewInt(4)},
		},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "name,n\nann,3\n,4\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
	// And it loads back.
	tbl, err := LoadCSV("back", strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.Schema.Column("n").Type != TypeInt {
		t.Errorf("round trip: %+v", tbl.Schema.Columns)
	}
}

func TestLoadCSVAllEmptyColumnIsText(t *testing.T) {
	tbl, err := LoadCSV("t", strings.NewReader("a,b\n1,\n2,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.Column("b").Type != TypeText {
		t.Errorf("empty column type = %v", tbl.Schema.Column("b").Type)
	}
}

// Regression: cells that parse as numbers but are not the canonical
// rendering of one — leading zeros, explicit plus signs, bare
// fractions, trailing zeros — must keep their column TEXT, or a
// load/store round trip silently rewrites the data ("007" → "7").
func TestLoadCSVNonCanonicalNumbersStayText(t *testing.T) {
	cases := []struct {
		name  string
		cells string
		want  Type
	}{
		{"leading zeros", "007\n042\n", TypeText},
		{"plus signed", "+5\n+12\n", TypeText},
		{"mixed canonical and padded", "7\n007\n", TypeText},
		{"bare fraction", ".5\n.25\n", TypeText},
		{"trailing zeros", "1.50\n2.10\n", TypeText},
		{"plus-signed float", "+1.5\n+2.5\n", TypeText},
		{"exponent spelling", "1e3\n2e4\n", TypeText},
		{"canonical ints", "7\n-42\n0\n", TypeInt},
		{"canonical floats", "1.5\n-0.25\n", TypeFloat},
	}
	for _, c := range cases {
		tbl, err := LoadCSV("t", strings.NewReader("a\n"+c.cells))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := tbl.Schema.Column("a").Type; got != c.want {
			t.Errorf("%s: inferred %v, want %v", c.name, got, c.want)
		}
	}
}

// Round-trip fidelity: loading and re-writing a CSV with awkward
// numeric-looking text reproduces the original bytes.
func TestLoadCSVRoundTripFidelity(t *testing.T) {
	in := "code,qty\n007,1\n+5,2\n0,3\n"
	tbl, err := LoadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema.Column("code").Type; got != TypeText {
		t.Fatalf("code column = %v, want TEXT", got)
	}
	res := &Result{Columns: []string{"code", "qty"}, Rows: tbl.Rows}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if sb.String() != in {
		t.Errorf("round trip rewrote data:\n got %q\nwant %q", sb.String(), in)
	}
}
