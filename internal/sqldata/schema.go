package sqldata

import (
	"fmt"
	"strings"
)

// Column describes a single column of a table schema.
type Column struct {
	// Name is the SQL identifier (lower-case by convention).
	Name string
	// Type is the column's value type.
	Type Type
	// PrimaryKey marks the column as (part of) the primary key.
	PrimaryKey bool
	// NotNull forbids NULLs on insert.
	NotNull bool
	// Synonyms lists natural-language aliases ("salary" for "annual_pay").
	// Interpreters use these when matching query tokens to columns.
	Synonyms []string
}

// ForeignKey declares that Column references RefTable.RefColumn.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema is the definition of one table: its name, columns, and keys.
type Schema struct {
	// Name is the table identifier.
	Name string
	// Columns in declaration order.
	Columns []Column
	// ForeignKeys declared on this table.
	ForeignKeys []ForeignKey
	// Synonyms lists natural-language aliases for the table itself.
	Synonyms []string
}

// ColumnIndex returns the position of the named column, or -1.
// Matching is case-insensitive.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil if absent.
func (s *Schema) Column(name string) *Column {
	if i := s.ColumnIndex(name); i >= 0 {
		return &s.Columns[i]
	}
	return nil
}

// PrimaryKey returns the names of the primary-key columns in order.
func (s *Schema) PrimaryKey() []string {
	var pk []string
	for _, c := range s.Columns {
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	return pk
}

// Validate checks structural invariants: non-empty name, at least one
// column, unique column names, and foreign keys referencing real columns.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sqldata: schema with empty name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldata: schema %q has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("sqldata: schema %q has an unnamed column", s.Name)
		}
		if seen[lc] {
			return fmt.Errorf("sqldata: schema %q: duplicate column %q", s.Name, c.Name)
		}
		seen[lc] = true
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return fmt.Errorf("sqldata: schema %q: foreign key on unknown column %q", s.Name, fk.Column)
		}
	}
	return nil
}

// DDL renders the schema as a CREATE TABLE statement (documentation and
// debugging aid; the engine creates tables programmatically).
func (s *Schema) DDL() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.NotNull && !c.PrimaryKey {
			sb.WriteString(" NOT NULL")
		}
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&sb, ", FOREIGN KEY (%s) REFERENCES %s(%s)", fk.Column, fk.RefTable, fk.RefColumn)
	}
	sb.WriteString(")")
	return sb.String()
}
