package sqldata

import "math"

// ColStats summarizes one column for the cost-based planner: row and
// null counts, an NDV (number-of-distinct-values) estimate, min/max,
// and a small equi-width histogram over numeric and date columns.
// Stats are built together with the columnar cache (see column.go), so
// they are maintained on CSV load and refreshed after Insert on the
// next read.
type ColStats struct {
	Rows  int
	Nulls int
	// NDV estimates the number of distinct non-NULL values: exact up to
	// ndvExactLimit, a linear-counting sketch beyond it.
	NDV      int
	NDVExact bool
	// Min and Max are valid only when HasMinMax (at least one non-NULL
	// value in an ordered type).
	Min, Max  Value
	HasMinMax bool

	// hist counts non-NULL values in histBuckets equi-width buckets over
	// [lo, lo + width*histBuckets); numeric and date columns only.
	hist  []int
	lo    float64
	width float64
}

const (
	ndvExactLimit = 4096
	ndvSketchBits = 1 << 16
	histBuckets   = 16
)

// NullFrac returns the fraction of rows that are NULL.
func (s *ColStats) NullFrac() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Nulls) / float64(s.Rows)
}

// EqSelectivity estimates the fraction of rows matching column = const:
// the non-NULL fraction spread uniformly over the distinct values.
func (s *ColStats) EqSelectivity() float64 {
	if s.Rows == 0 || s.NDV == 0 {
		return 0
	}
	return (1 - s.NullFrac()) / float64(s.NDV)
}

// FracBelow estimates the fraction of ALL rows with value < x (or ≤ x
// when orEqual), using the histogram when present and linear
// interpolation over [min, max] otherwise. Only meaningful for numeric
// and date columns; callers fall back to a default selectivity when
// HasMinMax is false.
func (s *ColStats) FracBelow(x float64, orEqual bool) float64 {
	if s.Rows == 0 || !s.HasMinMax {
		return 0.5
	}
	nonNull := float64(s.Rows - s.Nulls)
	if nonNull == 0 {
		return 0
	}
	lo, hi, ok := s.numericRange()
	if !ok {
		return 0.5
	}
	if x < lo || (x == lo && !orEqual) {
		return 0
	}
	if x > hi || (x == hi && orEqual) {
		return nonNull / float64(s.Rows)
	}
	var frac float64
	if len(s.hist) > 0 && s.width > 0 {
		b := int((x - s.lo) / s.width)
		if b >= len(s.hist) {
			b = len(s.hist) - 1
		}
		below := 0
		for i := 0; i < b; i++ {
			below += s.hist[i]
		}
		within := float64(s.hist[b]) * (x - (s.lo + float64(b)*s.width)) / s.width
		frac = (float64(below) + within) / nonNull
	} else if hi > lo {
		frac = (x - lo) / (hi - lo)
	} else {
		frac = 0.5
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac * nonNull / float64(s.Rows)
}

func (s *ColStats) numericRange() (lo, hi float64, ok bool) {
	l, lok := s.Min.FloatOK()
	h, hok := s.Max.FloatOK()
	if lok && hok {
		return l, h, true
	}
	ld, lok := s.Min.DateDaysOK()
	hd, hok := s.Max.DateDaysOK()
	if lok && hok {
		return float64(ld), float64(hd), true
	}
	return 0, 0, false
}

func buildColStats(cv *ColumnVector) *ColStats {
	s := &ColStats{Rows: cv.Len}
	if cv.Nulls != nil {
		s.Nulls = cv.Nulls.Count()
	}
	if cv.Len == s.Nulls {
		return s
	}

	// One pass for min/max and the NDV sketch.
	nd := newNDVCounter()
	first := true
	var minV, maxV Value
	for i := 0; i < cv.Len; i++ {
		if cv.Null(i) {
			continue
		}
		nd.add(ndvHash(cv, i))
		v := cv.Value(i)
		if first {
			minV, maxV = v, v
			first = false
			continue
		}
		if c, err := Compare(v, minV); err == nil && c < 0 {
			minV = v
		}
		if c, err := Compare(v, maxV); err == nil && c > 0 {
			maxV = v
		}
	}
	s.Min, s.Max, s.HasMinMax = minV, maxV, !first
	s.NDV, s.NDVExact = nd.estimate()
	if s.NDV > cv.Len-s.Nulls {
		s.NDV = cv.Len - s.Nulls
	}
	if s.NDV < 1 {
		s.NDV = 1
	}

	// Second pass: equi-width histogram over numeric/date columns.
	if lo, hi, ok := s.numericRange(); ok && !math.IsNaN(lo) && !math.IsNaN(hi) && hi > lo {
		s.lo = lo
		s.width = (hi - lo) / histBuckets
		s.hist = make([]int, histBuckets)
		for i := 0; i < cv.Len; i++ {
			if cv.Null(i) {
				continue
			}
			var x float64
			switch cv.Type {
			case TypeInt, TypeDate:
				x = float64(cv.Ints[i])
			case TypeFloat:
				x = cv.Floats[i]
			default:
				continue
			}
			if math.IsNaN(x) {
				continue
			}
			b := int((x - lo) / s.width)
			if b < 0 {
				b = 0
			}
			if b >= histBuckets {
				b = histBuckets - 1
			}
			s.hist[b]++
		}
	}
	return s
}

// ndvCounter estimates distinct values: exact (a hash set) up to
// ndvExactLimit entries, then a linear-counting bitmap — cheap, bounded
// memory, and accurate within a few percent for NDVs up to ~2× the
// sketch size, which is plenty for selectivity math.
type ndvCounter struct {
	exact    map[uint64]struct{}
	overflow bool
	bits     []uint64
	zeros    int
}

func newNDVCounter() *ndvCounter {
	return &ndvCounter{
		exact: make(map[uint64]struct{}),
		bits:  make([]uint64, ndvSketchBits/64),
		zeros: ndvSketchBits,
	}
}

func (n *ndvCounter) add(h uint64) {
	b := h & (ndvSketchBits - 1)
	if n.bits[b>>6]&(1<<(b&63)) == 0 {
		n.bits[b>>6] |= 1 << (b & 63)
		n.zeros--
	}
	if !n.overflow {
		n.exact[h] = struct{}{}
		if len(n.exact) > ndvExactLimit {
			n.overflow = true
			n.exact = nil
		}
	}
}

func (n *ndvCounter) estimate() (ndv int, exact bool) {
	if !n.overflow {
		return len(n.exact), true
	}
	if n.zeros <= 0 {
		// Sketch saturated; report its ceiling and let the caller clamp
		// to the row count.
		return ndvSketchBits * 8, false
	}
	m := float64(ndvSketchBits)
	return int(m * math.Log(m/float64(n.zeros))), false
}

// ndvHash hashes slot i of a column for distinct counting. Floats are
// canonicalized the same way as Value.Key (integral values hash as
// ints, -0 as 0, all NaNs together) so the estimate counts distinct
// mathematical values.
func ndvHash(cv *ColumnVector, i int) uint64 {
	switch cv.Type {
	case TypeInt, TypeDate:
		return mix64(uint64(cv.Ints[i]))
	case TypeFloat:
		f := cv.Floats[i]
		if math.IsNaN(f) {
			return mix64(0x7ff8_dead_beef_0001)
		}
		if f == math.Trunc(f) && f >= -maxInt64Float && f < maxInt64Float {
			return mix64(uint64(int64(f)))
		}
		return mix64(math.Float64bits(f))
	case TypeText:
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := uint64(offset64)
		s := cv.Texts[i]
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= prime64
		}
		return h
	case TypeBool:
		if cv.Bools[i] {
			return mix64(1)
		}
		return mix64(2)
	default:
		return 0
	}
}

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
