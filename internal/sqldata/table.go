package sqldata

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
)

// Table is an in-memory relation: a schema plus its rows.
//
// Concurrency: a fully-constructed table is safe for concurrent reads.
// Mutation (Insert) is not synchronized against concurrent readers — the
// serving layer treats databases as read-mostly, and callers that mutate
// while queries are in flight must provide their own exclusion. Every
// Insert bumps an atomic version counter, which Database.Fingerprint
// folds into the cache key so answer caches invalidate on mutation
// without an explicit flush.
type Table struct {
	Schema *Schema
	Rows   []Row

	// version counts mutations; read via Version, bumped by Insert.
	version atomic.Uint64

	// columnar caches the typed column vectors and per-column stats for
	// the current version; see column.go. Rebuilt lazily on first read
	// after a mutation.
	columnar atomic.Pointer[colCache]
}

// Version returns the table's mutation counter: 0 for a fresh table,
// incremented by every successful Insert. Safe for concurrent use.
func (t *Table) Version() uint64 { return t.version.Load() }

// NewTable creates an empty table after validating the schema.
func NewTable(s *Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Table{Schema: s}, nil
}

// Insert appends one row after checking arity, types, and NOT NULL
// constraints. INT values are widened to FLOAT columns and ISO-formatted
// TEXT is coerced to DATE columns.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Schema.Columns) {
		return fmt.Errorf("sqldata: insert into %s: got %d values, want %d",
			t.Schema.Name, len(r), len(t.Schema.Columns))
	}
	row := make(Row, len(r))
	for i, v := range r {
		c := t.Schema.Columns[i]
		if v.Null {
			if c.NotNull || c.PrimaryKey {
				return fmt.Errorf("sqldata: insert into %s: NULL in NOT NULL column %s",
					t.Schema.Name, c.Name)
			}
			row[i] = v
			continue
		}
		cv, err := Coerce(v, c.Type)
		if err != nil {
			return fmt.Errorf("sqldata: insert into %s column %s: %w", t.Schema.Name, c.Name, err)
		}
		row[i] = cv
	}
	t.Rows = append(t.Rows, row)
	t.version.Add(1)
	return nil
}

// MustInsert inserts and panics on error; for test fixtures and generators
// whose inputs are constructed to be valid.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// ColumnValues returns all values of the named column in row order.
func (t *Table) ColumnValues(name string) ([]Value, error) {
	i := t.Schema.ColumnIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("sqldata: table %s has no column %q", t.Schema.Name, name)
	}
	out := make([]Value, len(t.Rows))
	for j, r := range t.Rows {
		out[j] = r[i]
	}
	return out, nil
}

// DistinctText returns the sorted distinct non-NULL TEXT values of a column;
// indexing and interpreters use it to build value vocabularies.
func (t *Table) DistinctText(name string) ([]string, error) {
	vals, err := t.ColumnValues(name)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, v := range vals {
		if !v.Null && v.T == TypeText {
			set[v.Text()] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// Database is a named collection of tables — the engine's catalog unit.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table; the name must be unique (case-insensitive).
func (d *Database) AddTable(t *Table) error {
	key := strings.ToLower(t.Schema.Name)
	if _, dup := d.tables[key]; dup {
		return fmt.Errorf("sqldata: database %s already has table %q", d.Name, t.Schema.Name)
	}
	d.tables[key] = t
	d.order = append(d.order, key)
	return nil
}

// CreateTable builds an empty table from the schema and registers it.
func (d *Database) CreateTable(s *Schema) (*Table, error) {
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	if err := d.AddTable(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Table looks up a table by name (case-insensitive), or nil.
func (d *Database) Table(name string) *Table {
	return d.tables[strings.ToLower(name)]
}

// Tables returns all tables in registration order.
func (d *Database) Tables() []*Table {
	out := make([]*Table, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.tables[k])
	}
	return out
}

// Schemas returns all table schemas in registration order.
func (d *Database) Schemas() []*Schema {
	out := make([]*Schema, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.tables[k].Schema)
	}
	return out
}

// Fingerprint summarizes the database's schema and data state as a hash
// of the catalog (name, table count, table names and column counts) and
// every table's mutation version. Any AddTable or Insert changes the
// fingerprint, so cache keys built over it invalidate implicitly. Safe
// for concurrent use alongside reads; see Table's concurrency note for
// mutation.
func (d *Database) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(d.Name))
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(d.order)))
	for _, k := range d.order {
		t := d.tables[k]
		h.Write([]byte(k))
		put(uint64(len(t.Schema.Columns)))
		put(uint64(len(t.Rows)))
		put(t.Version())
	}
	return h.Sum64()
}

// ValidateForeignKeys checks that every declared foreign key references an
// existing table and column of a compatible type.
func (d *Database) ValidateForeignKeys() error {
	for _, t := range d.Tables() {
		for _, fk := range t.Schema.ForeignKeys {
			ref := d.Table(fk.RefTable)
			if ref == nil {
				return fmt.Errorf("sqldata: %s.%s references missing table %q",
					t.Schema.Name, fk.Column, fk.RefTable)
			}
			rc := ref.Schema.Column(fk.RefColumn)
			if rc == nil {
				return fmt.Errorf("sqldata: %s.%s references missing column %s.%s",
					t.Schema.Name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			lc := t.Schema.Column(fk.Column)
			if lc.Type != rc.Type {
				return fmt.Errorf("sqldata: foreign key %s.%s (%s) type-mismatches %s.%s (%s)",
					t.Schema.Name, fk.Column, lc.Type, fk.RefTable, fk.RefColumn, rc.Type)
			}
		}
	}
	return nil
}

// Result is a materialized query result: column headers plus rows.
type Result struct {
	Columns []string
	Rows    []Row
}

// String renders the result as an aligned text table for CLI output.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for j, row := range r.Rows {
		cells[j] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[j][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	for _, row := range cells {
		sb.WriteByte('\n')
		for i, c := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
	}
	return sb.String()
}

// EqualUnordered reports whether two results contain the same multiset of
// rows (column order must match; row order is ignored). This is the
// "execution accuracy" comparator used throughout the evaluation harness.
func (r *Result) EqualUnordered(o *Result) bool {
	if len(r.Rows) != len(o.Rows) || len(r.Columns) != len(o.Columns) {
		return false
	}
	counts := make(map[string]int, len(r.Rows))
	for _, row := range r.Rows {
		counts[row.Key()]++
	}
	for _, row := range o.Rows {
		counts[row.Key()]--
		if counts[row.Key()] < 0 {
			return false
		}
	}
	return true
}

// EqualOrdered reports whether two results are identical including row order
// (used when the gold query has ORDER BY).
func (r *Result) EqualOrdered(o *Result) bool {
	if len(r.Rows) != len(o.Rows) || len(r.Columns) != len(o.Columns) {
		return false
	}
	for i := range r.Rows {
		if r.Rows[i].Key() != o.Rows[i].Key() {
			return false
		}
	}
	return true
}
