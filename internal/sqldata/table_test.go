package sqldata

import (
	"strings"
	"sync"
	"testing"
)

func empSchema() *Schema {
	return &Schema{
		Name: "employee",
		Columns: []Column{
			{Name: "id", Type: TypeInt, PrimaryKey: true},
			{Name: "name", Type: TypeText, NotNull: true},
			{Name: "salary", Type: TypeFloat},
			{Name: "dept_id", Type: TypeInt},
		},
		ForeignKeys: []ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := empSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := &Schema{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate column (case-insensitive) accepted")
	}
	if err := (&Schema{Name: "t"}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
	fkBad := &Schema{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}},
		ForeignKeys: []ForeignKey{{Column: "zzz", RefTable: "x", RefColumn: "y"}}}
	if err := fkBad.Validate(); err == nil {
		t.Error("FK on missing column accepted")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := empSchema()
	if s.ColumnIndex("SALARY") != 2 {
		t.Error("ColumnIndex is not case-insensitive")
	}
	if s.Column("nope") != nil {
		t.Error("Column returned non-nil for missing name")
	}
	pk := s.PrimaryKey()
	if len(pk) != 1 || pk[0] != "id" {
		t.Errorf("PrimaryKey = %v", pk)
	}
	ddl := s.DDL()
	for _, frag := range []string{"CREATE TABLE employee", "salary FLOAT", "PRIMARY KEY", "REFERENCES department(id)"} {
		if !strings.Contains(ddl, frag) {
			t.Errorf("DDL missing %q: %s", frag, ddl)
		}
	}
}

func TestTableInsert(t *testing.T) {
	tbl, err := NewTable(empSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{NewInt(1), NewText("ann"), NewInt(90), NewInt(1)}); err != nil {
		t.Fatalf("insert with int→float widening failed: %v", err)
	}
	if got := tbl.Rows[0][2]; got.T != TypeFloat || got.Float() != 90 {
		t.Errorf("salary not widened: %v", got)
	}
	if err := tbl.Insert(Row{NewInt(2), NewText("bob")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(Row{NewInt(2), NullValue(), NewFloat(1), NewInt(1)}); err == nil {
		t.Error("NULL in NOT NULL accepted")
	}
	if err := tbl.Insert(Row{NewText("x"), NewText("c"), NewFloat(1), NewInt(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestColumnValuesAndDistinct(t *testing.T) {
	tbl, _ := NewTable(&Schema{Name: "t", Columns: []Column{{Name: "c", Type: TypeText}}})
	for _, s := range []string{"b", "a", "b"} {
		tbl.MustInsert(NewText(s))
	}
	tbl.MustInsert(NullValue())
	vals, err := tbl.ColumnValues("c")
	if err != nil || len(vals) != 4 {
		t.Fatalf("ColumnValues: %v %v", vals, err)
	}
	d, err := tbl.DistinctText("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0] != "a" || d[1] != "b" {
		t.Errorf("DistinctText = %v", d)
	}
	if _, err := tbl.ColumnValues("nope"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase("corp")
	dept, err := db.CreateTable(&Schema{Name: "department", Columns: []Column{
		{Name: "id", Type: TypeInt, PrimaryKey: true},
		{Name: "name", Type: TypeText},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dept.MustInsert(NewInt(1), NewText("eng"))
	if _, err := db.CreateTable(empSchema()); err != nil {
		t.Fatal(err)
	}
	if db.Table("EMPLOYEE") == nil {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := db.CreateTable(&Schema{Name: "Employee", Columns: []Column{{Name: "x", Type: TypeInt}}}); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := len(db.Tables()); got != 2 {
		t.Errorf("Tables len = %d", got)
	}
	if err := db.ValidateForeignKeys(); err != nil {
		t.Errorf("ValidateForeignKeys: %v", err)
	}

	// Break the FK and re-validate.
	db2 := NewDatabase("broken")
	if _, err := db2.CreateTable(empSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db2.ValidateForeignKeys(); err == nil {
		t.Error("dangling FK accepted")
	}
}

func TestResultEquality(t *testing.T) {
	a := &Result{Columns: []string{"x"}, Rows: []Row{{NewInt(1)}, {NewInt(2)}, {NewInt(2)}}}
	b := &Result{Columns: []string{"x"}, Rows: []Row{{NewInt(2)}, {NewInt(1)}, {NewInt(2)}}}
	if !a.EqualUnordered(b) {
		t.Error("multiset-equal results not EqualUnordered")
	}
	if a.EqualOrdered(b) {
		t.Error("differently ordered results EqualOrdered")
	}
	c := &Result{Columns: []string{"x"}, Rows: []Row{{NewInt(1)}, {NewInt(2)}, {NewInt(3)}}}
	if a.EqualUnordered(c) {
		t.Error("different multisets EqualUnordered")
	}
	// Multiset subtlety: {1,1,2} vs {1,2,2}.
	d := &Result{Columns: []string{"x"}, Rows: []Row{{NewInt(1)}, {NewInt(1)}, {NewInt(2)}}}
	if a.EqualUnordered(d) {
		t.Error("multiplicity ignored")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Columns: []string{"name", "n"}, Rows: []Row{{NewText("alice"), NewInt(3)}}}
	s := r.String()
	if !strings.Contains(s, "alice") || !strings.Contains(s, "name") {
		t.Errorf("Result.String missing content:\n%s", s)
	}
}

func TestTableVersionBumpsOnInsert(t *testing.T) {
	tbl, err := NewTable(&Schema{Name: "t", Columns: []Column{{Name: "x", Type: TypeInt}}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != 0 {
		t.Fatalf("fresh table version = %d, want 0", tbl.Version())
	}
	tbl.MustInsert(NewInt(1))
	tbl.MustInsert(NewInt(2))
	if tbl.Version() != 2 {
		t.Fatalf("version after 2 inserts = %d, want 2", tbl.Version())
	}
	// Failed inserts must not bump the version.
	if err := tbl.Insert(Row{NewInt(1), NewInt(2)}); err == nil {
		t.Fatal("arity-mismatched insert should fail")
	}
	if tbl.Version() != 2 {
		t.Fatalf("version after failed insert = %d, want 2", tbl.Version())
	}
}

func TestDatabaseFingerprint(t *testing.T) {
	build := func() (*Database, *Table) {
		db := NewDatabase("fp")
		tbl, err := db.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "x", Type: TypeInt}}})
		if err != nil {
			t.Fatal(err)
		}
		tbl.MustInsert(NewInt(1))
		return db, tbl
	}
	db1, tbl1 := build()
	db2, _ := build()
	if db1.Fingerprint() != db2.Fingerprint() {
		t.Fatal("identically built databases must fingerprint equal")
	}
	before := db1.Fingerprint()
	if db1.Fingerprint() != before {
		t.Fatal("fingerprint must be stable without mutation")
	}
	tbl1.MustInsert(NewInt(2))
	if db1.Fingerprint() == before {
		t.Fatal("insert must change the fingerprint")
	}
	if _, err := db2.CreateTable(&Schema{Name: "u", Columns: []Column{{Name: "y", Type: TypeText}}}); err != nil {
		t.Fatal(err)
	}
	if db2.Fingerprint() == before {
		t.Fatal("adding a table must change the fingerprint")
	}
}

func TestFingerprintConcurrentReads(t *testing.T) {
	db := NewDatabase("conc")
	tbl, err := db.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "x", Type: TypeInt}}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(NewInt(1))
	want := db.Fingerprint()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if got := db.Fingerprint(); got != want {
					t.Errorf("concurrent fingerprint = %x, want %x", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
