// Package sqldata defines the typed value model, schemas, tables, and
// catalogs used by the in-memory relational engine. It is the storage
// substrate that every natural-language interpreter in this repository
// ultimately targets: interpreters produce SQL, sqlexec runs that SQL
// against sqldata tables.
package sqldata

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the column types supported by the engine.
type Type int

const (
	// TypeInt is a 64-bit signed integer.
	TypeInt Type = iota
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeText is a UTF-8 string.
	TypeText
	// TypeBool is a boolean.
	TypeBool
	// TypeDate is a calendar date, stored as days since the Unix epoch.
	TypeDate
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Numeric reports whether values of the type can participate in arithmetic.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Value is a single SQL value: one of the supported types, or NULL.
// Note the zero Value is the integer 0, not NULL; use NullValue for NULL.
type Value struct {
	// Null reports SQL NULL. When true the remaining fields are meaningless.
	Null bool
	// T is the type tag; valid only when Null is false.
	T Type

	i int64   // TypeInt, TypeDate (days since epoch)
	f float64 // TypeFloat
	s string  // TypeText
	b bool    // TypeBool
}

// Null value constructor.
func NullValue() Value { return Value{Null: true} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{T: TypeInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{T: TypeFloat, f: v} }

// NewText returns a text value.
func NewText(v string) Value { return Value{T: TypeText, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{T: TypeBool, b: v} }

// NewDate returns a date value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{T: TypeDate, i: t.Unix() / 86400}
}

// NewDateDays returns a date value from days since the Unix epoch.
func NewDateDays(days int64) Value { return Value{T: TypeDate, i: days} }

// ParseDate parses "YYYY-MM-DD" into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("sqldata: parse date %q: %w", s, err)
	}
	return Value{T: TypeDate, i: t.Unix() / 86400}, nil
}

// Int returns the integer payload. It panics if the value is not an INT.
func (v Value) Int() int64 {
	v.mustBe(TypeInt)
	return v.i
}

// Float returns the float payload, widening INT to FLOAT. It panics for
// non-numeric values.
func (v Value) Float() float64 {
	if v.Null {
		panic("sqldata: Float() on NULL")
	}
	switch v.T {
	case TypeFloat:
		return v.f
	case TypeInt:
		return float64(v.i)
	default:
		panic("sqldata: Float() on " + v.T.String())
	}
}

// Text returns the string payload. It panics if the value is not TEXT.
func (v Value) Text() string {
	v.mustBe(TypeText)
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not BOOL.
func (v Value) Bool() bool {
	v.mustBe(TypeBool)
	return v.b
}

// DateDays returns days since the Unix epoch. It panics if not a DATE.
func (v Value) DateDays() int64 {
	v.mustBe(TypeDate)
	return v.i
}

// Time returns the date as a time.Time at UTC midnight.
func (v Value) Time() time.Time {
	v.mustBe(TypeDate)
	return time.Unix(v.i*86400, 0).UTC()
}

// IntOK returns the integer payload, reporting ok=false (instead of
// panicking) when the value is NULL or not an INT.
func (v Value) IntOK() (int64, bool) {
	if v.Null || v.T != TypeInt {
		return 0, false
	}
	return v.i, true
}

// FloatOK returns the float payload, widening INT to FLOAT. It reports
// ok=false for NULL or non-numeric values.
func (v Value) FloatOK() (float64, bool) {
	if v.Null {
		return 0, false
	}
	switch v.T {
	case TypeFloat:
		return v.f, true
	case TypeInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// TextOK returns the string payload, reporting ok=false for NULL or
// non-TEXT values.
func (v Value) TextOK() (string, bool) {
	if v.Null || v.T != TypeText {
		return "", false
	}
	return v.s, true
}

// BoolOK returns the boolean payload, reporting ok=false for NULL or
// non-BOOL values.
func (v Value) BoolOK() (bool, bool) {
	if v.Null || v.T != TypeBool {
		return false, false
	}
	return v.b, true
}

// DateDaysOK returns days since the Unix epoch, reporting ok=false for
// NULL or non-DATE values.
func (v Value) DateDaysOK() (int64, bool) {
	if v.Null || v.T != TypeDate {
		return 0, false
	}
	return v.i, true
}

// TimeOK returns the date as a time.Time at UTC midnight, reporting
// ok=false for NULL or non-DATE values.
func (v Value) TimeOK() (time.Time, bool) {
	days, ok := v.DateDaysOK()
	if !ok {
		return time.Time{}, false
	}
	return time.Unix(days*86400, 0).UTC(), true
}

func (v Value) mustBe(t Type) {
	if v.Null {
		panic("sqldata: typed accessor on NULL")
	}
	if v.T != t {
		panic(fmt.Sprintf("sqldata: accessor for %s on %s", t, v.T))
	}
}

// String renders the value the way the engine prints result rows.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeText:
		return v.s
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	case TypeDate:
		return v.Time().Format("2006-01-02")
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal (quoting text and dates).
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case TypeText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeDate:
		return "'" + v.Time().Format("2006-01-02") + "'"
	default:
		return v.String()
	}
}

// Equal reports deep equality, treating NULL as equal to NULL (useful for
// result comparison, not SQL three-valued logic).
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return v.Null && o.Null
	}
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// ErrIncomparable is returned by Compare for type-incompatible operands.
var ErrIncomparable = fmt.Errorf("sqldata: incomparable values")

// Compare orders two non-NULL values. Numeric types compare numerically
// — int-vs-float exactly, without the lossy widening of the int operand
// to float64 (so 2^53+1 > 2.0^53 even though float64(2^53+1) == 2.0^53);
// TEXT compares lexicographically; BOOL orders false < true; DATE
// chronologically. It returns ErrIncomparable for mixed non-numeric
// types or NULL operands.
func Compare(a, b Value) (int, error) {
	if a.Null || b.Null {
		return 0, ErrIncomparable
	}
	switch {
	case a.T == TypeInt && b.T == TypeInt:
		return cmpInt(a.i, b.i), nil
	case a.T == TypeInt && b.T == TypeFloat:
		return CompareIntFloat(a.i, b.f), nil
	case a.T == TypeFloat && b.T == TypeInt:
		return -CompareIntFloat(b.i, a.f), nil
	case a.T.Numeric() && b.T.Numeric():
		return cmpFloat(a.Float(), b.Float()), nil
	case a.T == TypeText && b.T == TypeText:
		return strings.Compare(a.s, b.s), nil
	case a.T == TypeBool && b.T == TypeBool:
		return cmpBool(a.b, b.b), nil
	case a.T == TypeDate && b.T == TypeDate:
		return cmpInt(a.i, b.i), nil
	default:
		return 0, fmt.Errorf("%w: %s vs %s", ErrIncomparable, a.T, b.T)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b || (math.IsNaN(a) && !math.IsNaN(b)):
		return -1
	case a > b || (!math.IsNaN(a) && math.IsNaN(b)):
		return 1
	default:
		return 0
	}
}

// CompareIntFloat orders an int64 against a float64 exactly. Converting
// the int to float64 first loses precision beyond 2^53 and can declare
// unequal values equal, which breaks hashing (equality must be
// transitive to bucket). NaN sorts below every number, matching
// cmpFloat.
func CompareIntFloat(i int64, f float64) int {
	switch {
	case math.IsNaN(f):
		return 1
	case f >= maxInt64Float: // every int64 < 2^63 ≤ f (also +Inf)
		return -1
	case f < -maxInt64Float: // f < -2^63 ≤ every int64 (also -Inf)
		return 1
	}
	t := math.Trunc(f) // in [-2^63, 2^63): int64-convertible
	ti := int64(t)
	switch {
	case i < ti:
		return -1
	case i > ti:
		return 1
	case f > t: // equal integer parts; f has a positive fraction
		return -1
	case f < t:
		return 1
	default:
		return 0
	}
}

// maxInt64Float is 2^63 as a float64 (the smallest float strictly above
// every int64).
const maxInt64Float = 9223372036854775808.0

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	default:
		return 0
	}
}

// Coerce attempts to convert v to type t, following SQL-ish widening rules:
// INT→FLOAT, TEXT→DATE (ISO format), INT→TEXT and FLOAT→TEXT are refused
// (silent stringification hides bugs). NULL coerces to any type.
func Coerce(v Value, t Type) (Value, error) {
	if v.Null {
		return NullValue(), nil
	}
	if v.T == t {
		return v, nil
	}
	switch {
	case v.T == TypeInt && t == TypeFloat:
		return NewFloat(float64(v.i)), nil
	case v.T == TypeText && t == TypeDate:
		return ParseDate(v.s)
	default:
		return Value{}, fmt.Errorf("sqldata: cannot coerce %s to %s", v.T, t)
	}
}

// Key returns a map-key-safe representation for grouping and hashing.
// NULLs group together, matching SQL GROUP BY semantics. Numeric keys
// are canonical over the mathematical value, not the representation:
// a FLOAT that holds an integer in int64 range (including -0) keys the
// same as the equal INT, so hash buckets agree with Compare/Equal for
// mixed int/float operands. All NaNs share one key (Compare treats NaN
// as equal to NaN).
func (v Value) Key() string {
	if v.Null {
		return "\x00N"
	}
	switch v.T {
	case TypeInt:
		return "\x00i" + strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return FloatKey(v.f)
	case TypeText:
		return "\x00s" + v.s
	case TypeBool:
		if v.b {
			return "\x00b1"
		}
		return "\x00b0"
	case TypeDate:
		return "\x00d" + strconv.FormatInt(v.i, 10)
	default:
		return "\x00?"
	}
}

// FloatKey returns the canonical numeric Key form of a float64: the INT
// encoding when the value is an integer representable as int64 (folding
// -0 into 0), a shared key for all NaNs, and an exact bit-level encoding
// otherwise. The vectorized hash paths use it directly so their buckets
// inherit Value.Key's cross-type semantics.
func FloatKey(f float64) string {
	if math.IsNaN(f) {
		return "\x00fNaN"
	}
	if f == math.Trunc(f) && f >= -maxInt64Float && f < maxInt64Float {
		return "\x00i" + strconv.FormatInt(int64(f), 10)
	}
	return "\x00f" + strconv.FormatFloat(f, 'b', -1, 64)
}

// Row is a tuple of values.
type Row []Value

// Key concatenates the per-value keys; rows with equal keys are equal rows.
func (r Row) Key() string {
	var sb strings.Builder
	for _, v := range r {
		sb.WriteString(v.Key())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
