package sqldata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d, want 42", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v, want 2.5", got)
	}
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("widened Float() = %v, want 3", got)
	}
	if got := NewText("hi").Text(); got != "hi" {
		t.Errorf("Text() = %q, want hi", got)
	}
	if !NewBool(true).Bool() {
		t.Error("Bool() = false, want true")
	}
	d := NewDate(2020, time.June, 14)
	if got := d.Time().Format("2006-01-02"); got != "2020-06-14" {
		t.Errorf("date = %s, want 2020-06-14", got)
	}
	if !NullValue().Null {
		t.Error("NullValue is not null")
	}
}

// The OK accessors are the non-panicking mirrors of Int/Float/Text/...:
// wrong type or NULL reports ok=false instead of panicking, which is what
// the executor's hot paths rely on.
func TestOKAccessors(t *testing.T) {
	i := NewInt(7)
	f := NewFloat(1.5)
	s := NewText("hi")
	b := NewBool(true)
	d := NewDate(2020, time.June, 14)
	null := NullValue()

	if v, ok := i.IntOK(); !ok || v != 7 {
		t.Errorf("IntOK(7) = %d, %v", v, ok)
	}
	if v, ok := f.FloatOK(); !ok || v != 1.5 {
		t.Errorf("FloatOK(1.5) = %v, %v", v, ok)
	}
	if v, ok := i.FloatOK(); !ok || v != 7.0 {
		t.Errorf("FloatOK must widen INT: got %v, %v", v, ok)
	}
	if v, ok := s.TextOK(); !ok || v != "hi" {
		t.Errorf("TextOK = %q, %v", v, ok)
	}
	if v, ok := b.BoolOK(); !ok || !v {
		t.Errorf("BoolOK = %v, %v", v, ok)
	}
	if v, ok := d.TimeOK(); !ok || v.Format("2006-01-02") != "2020-06-14" {
		t.Errorf("TimeOK = %v, %v", v, ok)
	}
	if _, ok := d.DateDaysOK(); !ok {
		t.Error("DateDaysOK rejected a date")
	}

	// Wrong type and NULL must report ok=false on every accessor — the
	// whole point is that none of these calls can panic.
	for _, tc := range []struct {
		name string
		v    Value
	}{{"null", null}, {"text", s}} {
		if _, ok := tc.v.IntOK(); ok && (tc.v.Null || tc.v.T != TypeInt) {
			t.Errorf("IntOK(%s) claimed ok", tc.name)
		}
		if _, ok := tc.v.FloatOK(); ok && (tc.v.Null || (tc.v.T != TypeFloat && tc.v.T != TypeInt)) {
			t.Errorf("FloatOK(%s) claimed ok", tc.name)
		}
		if _, ok := tc.v.BoolOK(); ok {
			t.Errorf("BoolOK(%s) claimed ok", tc.name)
		}
		if _, ok := tc.v.TimeOK(); ok {
			t.Errorf("TimeOK(%s) claimed ok", tc.name)
		}
		if _, ok := tc.v.DateDaysOK(); ok {
			t.Errorf("DateDaysOK(%s) claimed ok", tc.name)
		}
	}
	if _, ok := null.TextOK(); ok {
		t.Error("TextOK(null) claimed ok")
	}
	if _, ok := i.TextOK(); ok {
		t.Error("TextOK(int) claimed ok")
	}
	if _, ok := i.BoolOK(); ok {
		t.Error("BoolOK(int) claimed ok")
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1999-12-31")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if v.String() != "1999-12-31" {
		t.Errorf("round trip = %s", v.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewText("x y"), "x y"},
		{NewBool(false), "false"},
		{NewDate(1970, time.January, 2), "1970-01-02"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	if got := NewText("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("SQLLiteral = %s", got)
	}
	if got := NullValue().SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral(NULL) = %s", got)
	}
	if got := NewDate(2020, time.March, 1).SQLLiteral(); got != "'2020-03-01'" {
		t.Errorf("SQLLiteral(date) = %s", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewText("a"), NewText("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(2020, 1, 1), NewDate(2021, 1, 1), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(NewInt(1), NewText("x")); err == nil {
		t.Error("Compare int/text did not error")
	}
	if _, err := Compare(NullValue(), NewInt(1)); err == nil {
		t.Error("Compare with NULL did not error")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), TypeFloat)
	if err != nil || v.Float() != 3.0 {
		t.Errorf("Coerce int→float = %v, %v", v, err)
	}
	v, err = Coerce(NewText("2020-06-14"), TypeDate)
	if err != nil || v.String() != "2020-06-14" {
		t.Errorf("Coerce text→date = %v, %v", v, err)
	}
	if _, err = Coerce(NewText("x"), TypeInt); err == nil {
		t.Error("Coerce text→int did not error")
	}
	v, err = Coerce(NullValue(), TypeInt)
	if err != nil || !v.Null {
		t.Errorf("Coerce NULL = %v, %v", v, err)
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return NullValue()
	case 1:
		return NewInt(r.Int63n(2000) - 1000)
	case 2:
		return NewFloat(r.NormFloat64() * 100)
	case 3:
		letters := []rune("abcxyz '")
		n := r.Intn(8)
		s := make([]rune, n)
		for i := range s {
			s[i] = letters[r.Intn(len(letters))]
		}
		return NewText(string(s))
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewDateDays(int64(r.Intn(20000)))
	}
}

// Property: Key equality coincides with Equal.
func TestKeyAgreesWithEqual(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomValue(rand.New(rand.NewSource(seedA)))
		b := randomValue(rand.New(rand.NewSource(seedB)))
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on comparable pairs.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomValue(rand.New(rand.NewSource(seedA)))
		b := randomValue(rand.New(rand.NewSource(seedB)))
		c1, err1 := Compare(a, b)
		c2, err2 := Compare(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over same-type values.
func TestCompareTransitiveInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := NewInt(a), NewInt(b), NewInt(c)
		ab, _ := Compare(va, vb)
		bc, _ := Compare(vb, vc)
		ac, _ := Compare(va, vc)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyAndClone(t *testing.T) {
	r := Row{NewInt(1), NewText("a")}
	s := Row{NewInt(1), NewText("a")}
	if r.Key() != s.Key() {
		t.Error("equal rows have different keys")
	}
	// Concatenation ambiguity: ("ab","c") must differ from ("a","bc").
	r1 := Row{NewText("ab"), NewText("c")}
	r2 := Row{NewText("a"), NewText("bc")}
	if r1.Key() == r2.Key() {
		t.Error("row key is ambiguous under concatenation")
	}
	cl := r.Clone()
	cl[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on text", func() { NewText("x").Int() })
	mustPanic("Text on null", func() { NullValue().Text() })
	mustPanic("Float on bool", func() { NewBool(true).Float() })
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{TypeInt: "INT", TypeFloat: "FLOAT", TypeText: "TEXT", TypeBool: "BOOL", TypeDate: "DATE"}
	for ty, w := range want {
		if ty.String() != w {
			t.Errorf("%v.String() = %s, want %s", int(ty), ty.String(), w)
		}
	}
	if !TypeInt.Numeric() || !TypeFloat.Numeric() || TypeText.Numeric() {
		t.Error("Numeric() misclassifies")
	}
}

// Regression: int-vs-float equality, ordering, and hash keys must agree.
// Before the fix, Compare widened the int operand to float64, so
// 2^53+1 compared equal to 2.0^53 (both round to the same float), while
// Key() encoded 1 and 1.0 differently even though Equal said they were
// equal — group-by and hash joins disagreed with the comparator.
func TestCrossTypeNumericSemantics(t *testing.T) {
	big := int64(1) << 53 // 2^53: the first float64 precision cliff

	// Exact comparison beyond float53 precision.
	if c, err := Compare(NewInt(big+1), NewFloat(float64(big))); err != nil || c != 1 {
		t.Errorf("Compare(2^53+1, 2.0^53) = %d, %v; want 1 (exact, not widened)", c, err)
	}
	if c, err := Compare(NewFloat(float64(big)), NewInt(big+1)); err != nil || c != -1 {
		t.Errorf("Compare(2.0^53, 2^53+1) = %d, %v; want -1", c, err)
	}
	if NewInt(big + 1).Equal(NewFloat(float64(big))) {
		t.Error("2^53+1 must not Equal 2.0^53")
	}

	// Equal numerics must share one hash key across types.
	if NewInt(3).Key() != NewFloat(3).Key() {
		t.Errorf("Key(3) = %q vs Key(3.0) = %q; equal values need equal keys",
			NewInt(3).Key(), NewFloat(3).Key())
	}
	if NewFloat(math.Copysign(0, -1)).Key() != NewInt(0).Key() {
		t.Error("Key(-0.0) must equal Key(0)")
	}
	if NewFloat(0.5).Key() == NewInt(0).Key() {
		t.Error("Key(0.5) must differ from Key(0)")
	}
	if NewInt(big+1).Key() == NewFloat(float64(big)).Key() {
		t.Error("Key(2^53+1) must differ from Key(2.0^53)")
	}

	// NaN keeps its total-order position (smallest) and a single key.
	if c, _ := Compare(NewInt(0), NewFloat(math.NaN())); c != 1 {
		t.Errorf("Compare(0, NaN) = %d, want 1 (NaN sorts first)", c)
	}
	if c, _ := Compare(NewFloat(math.NaN()), NewInt(0)); c != -1 {
		t.Errorf("Compare(NaN, 0) = %d, want -1", c)
	}
	if NewFloat(math.NaN()).Key() != NewFloat(-math.NaN()).Key() {
		t.Error("all NaNs must share one key")
	}

	// Infinities order around every int64 and keep distinct keys.
	if c, _ := Compare(NewInt(math.MaxInt64), NewFloat(math.Inf(1))); c != -1 {
		t.Error("MaxInt64 must compare below +Inf")
	}
	if c, _ := Compare(NewInt(math.MinInt64), NewFloat(math.Inf(-1))); c != 1 {
		t.Error("MinInt64 must compare above -Inf")
	}
	if NewFloat(math.Inf(1)).Key() == NewFloat(math.Inf(-1)).Key() {
		t.Error("+Inf and -Inf must have distinct keys")
	}

	// Boundary: 2^63 as a float is strictly above MaxInt64.
	if c, _ := Compare(NewInt(math.MaxInt64), NewFloat(9223372036854775808.0)); c != -1 {
		t.Error("MaxInt64 must compare below 2.0^63")
	}
	if c, _ := Compare(NewInt(math.MinInt64), NewFloat(-9223372036854775808.0)); c != 0 {
		t.Error("MinInt64 must compare equal to -2.0^63")
	}
}

// Property: cross-type Key equality coincides with Equal on pairs built
// to hit the int/float boundary (the generic property test above almost
// never generates integral floats).
func TestCrossTypeKeyAgreesWithEqual(t *testing.T) {
	f := func(n int64, frac bool) bool {
		i := n % (1 << 60)
		var fv Value
		if frac {
			fv = NewFloat(float64(i) + 0.5)
		} else {
			fv = NewFloat(float64(i))
		}
		iv := NewInt(i)
		return (iv.Key() == fv.Key()) == iv.Equal(fv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
