package sqlexec

import "nlidb/internal/plan"

// The Budget/Usage machinery lives in internal/plan with the executor;
// sqlexec re-exports it so callers keep one import for running SQL. The
// error strings keep their historical "sqlexec:" prefix for the same
// reason — this package is the surface callers see.

// Budget bounds the resources one statement execution may consume. A
// field <= 0 means that resource is unlimited; the zero Budget imposes no
// limits at all.
type Budget = plan.Budget

// Usage is the resource consumption of one execution.
type Usage = plan.Usage

// BudgetError reports which resource limit an execution hit.
type BudgetError = plan.BudgetError

// ErrBudgetExceeded marks executions stopped by a Budget limit; match
// with errors.Is.
var ErrBudgetExceeded = plan.ErrBudgetExceeded

// ErrCanceled marks executions stopped by context cancellation or
// deadline expiry. The returned error also wraps the context's own error,
// so errors.Is(err, context.DeadlineExceeded) works too.
var ErrCanceled = plan.ErrCanceled

// DefaultBudget is a generous bound suitable for interactive serving and
// the experiment harness.
func DefaultBudget() Budget { return plan.DefaultBudget() }
