package sqlexec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// budgetDB builds two n-row single-column tables for cross-join stress.
func budgetDB(t testing.TB, n int) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("budget")
	for _, name := range []string{"x", "y"} {
		tbl, err := db.CreateTable(&sqldata.Schema{Name: name, Columns: []sqldata.Column{
			{Name: "v", Type: sqldata.TypeInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			tbl.MustInsert(sqldata.NewInt(int64(i)))
		}
	}
	return db
}

// pathological is a correlated sub-query over a cross join: 40×40 join
// rows, each evaluating a sub-query that scans x again — the classic
// adversarial nested shape the budget exists to stop.
const pathological = "SELECT COUNT(*) FROM x JOIN y ON x.v >= 0 " +
	"WHERE (SELECT COUNT(*) FROM x AS x2 WHERE x2.v > x.v) >= 0"

func TestBudgetEnforcement(t *testing.T) {
	db := budgetDB(t, 40)
	e := New(db)
	stmt := sqlparse.MustParse(pathological)

	tests := []struct {
		name     string
		budget   Budget
		resource string // expected BudgetError.Resource; "" means success
	}{
		{"unlimited zero budget", Budget{}, ""},
		{"large budget succeeds", Budget{MaxRows: 1_000_000, MaxJoinRows: 1_000_000, MaxSubqueries: 1_000_000}, ""},
		{"join rows exhausted", Budget{MaxJoinRows: 100}, "join rows"},
		{"subqueries exhausted", Budget{MaxSubqueries: 10}, "subqueries"},
		{"rows exhausted by scans", Budget{MaxRows: 50}, "rows"},
		{"default budget succeeds", DefaultBudget(), ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, err := e.RunContext(context.Background(), stmt, tc.budget)
			if tc.resource == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got, _ := res.Rows[0][0].IntOK(); got != 1600 {
					t.Fatalf("COUNT(*) = %v, want 1600", res.Rows[0][0])
				}
				return
			}
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			var be *BudgetError
			if !errors.As(err, &be) || be.Resource != tc.resource {
				t.Fatalf("err = %v, want *BudgetError for %q", err, tc.resource)
			}
		})
	}
}

func TestBudgetCountsSubqueriesGlobally(t *testing.T) {
	db := budgetDB(t, 8)
	e := New(db)
	// The correlated sub-query runs once per outer row (8 rows).
	stmt := sqlparse.MustParse("SELECT v FROM x WHERE (SELECT COUNT(*) FROM y WHERE y.v = x.v) = 1")
	if _, err := e.RunContext(context.Background(), stmt, Budget{MaxSubqueries: 8}); err != nil {
		t.Fatalf("8 sub-queries within a budget of 8: %v", err)
	}
	_, err := e.RunContext(context.Background(), stmt, Budget{MaxSubqueries: 7})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded at the 8th sub-query", err)
	}
}

func TestCancellationReturnsPromptly(t *testing.T) {
	db := budgetDB(t, 300) // 90k join rows × correlated sub-query: seconds of work
	e := New(db)
	stmt := sqlparse.MustParse(pathological)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.RunContext(ctx, stmt, Budget{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if took := time.Since(start); took > 100*time.Millisecond {
			t.Fatalf("execution took %v after cancel, want <100ms", took)
		}
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("execution did not observe cancellation")
	}
}

func TestDeadlineExpiryIsTyped(t *testing.T) {
	db := budgetDB(t, 300)
	e := New(db)
	stmt := sqlparse.MustParse(pathological)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.RunContext(ctx, stmt, Budget{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

func TestRunSQLContextParsesAndBounds(t *testing.T) {
	db := budgetDB(t, 10)
	e := New(db)
	res, err := e.RunSQLContext(context.Background(), "SELECT COUNT(*) FROM x", DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].IntOK(); got != 10 {
		t.Fatalf("COUNT(*) = %v, want 10", res.Rows[0][0])
	}
	if _, err := e.RunSQLContext(context.Background(), "SELEC nope", DefaultBudget()); err == nil {
		t.Fatal("parse error must surface")
	}
}

func TestBudgetErrorMessageNamesResource(t *testing.T) {
	err := fmt.Errorf("wrap: %w", &BudgetError{Resource: "join rows", Limit: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("wrapped BudgetError must match ErrBudgetExceeded")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != 5 {
		t.Fatalf("lost detail: %v", err)
	}
}
