// Package sqlexec executes parsed SELECT statements against in-memory
// sqldata databases. It is the public facade over the bind/plan/execute
// pipeline in internal/plan: statements are bound (all names resolved to
// tuple offsets) and lowered to a physical operator tree once, then
// executed with hash grouping, hash equi-joins with a nested-loop
// fallback, predicate push-down, correlated sub-query support, and SQL
// three-valued logic — every query-complexity class from the SIGMOD 2020
// tutorial taxonomy, including nested BI queries.
package sqlexec

import (
	"context"

	"nlidb/internal/plan"
	"nlidb/internal/qcache"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Engine evaluates statements against one database.
type Engine struct {
	db        *sqldata.Database
	planCache *qcache.Cache
}

// New returns an engine over db.
func New(db *sqldata.Database) *Engine { return &Engine{db: db} }

// NewWithPlanCache returns an engine that caches prepared plans in c,
// keyed by canonical SQL and the database schema fingerprint, so repeated
// statements (distinct questions translating to the same SQL, say) skip
// bind and plan. Plans are immutable after preparation, so cached entries
// are safe to execute concurrently.
func NewWithPlanCache(db *sqldata.Database, c *qcache.Cache) *Engine {
	return &Engine{db: db, planCache: c}
}

// Prepared is a bound, planned statement ready to execute (see
// internal/plan for the pipeline).
type Prepared = plan.Plan

// Prepare binds and plans stmt without executing it.
func (e *Engine) Prepare(stmt *sqlparse.SelectStmt) (*Prepared, error) {
	return plan.Prepare(e.db, stmt)
}

// PrepareCached is Prepare through the engine's plan cache when one is
// configured; hit reports whether the plan came from the cache.
func (e *Engine) PrepareCached(stmt *sqlparse.SelectStmt) (p *Prepared, hit bool, err error) {
	if e.planCache == nil || stmt == nil {
		p, err = e.Prepare(stmt)
		return p, false, err
	}
	key := qcache.WithFingerprint(e.db.Fingerprint(), "plan:"+sqlparse.Canonical(stmt).String())
	if v, ok := e.planCache.Get(key); ok {
		if cached, ok := v.(*Prepared); ok {
			return cached, true, nil
		}
	}
	p, err = e.Prepare(stmt)
	if err != nil {
		return nil, false, err
	}
	e.planCache.Put(key, p)
	return p, false, nil
}

// RunSQL parses and executes a SQL string.
func (e *Engine) RunSQL(sql string) (*sqldata.Result, error) {
	return e.RunSQLContext(context.Background(), sql, Budget{})
}

// RunSQLContext parses and executes a SQL string under ctx and b.
func (e *Engine) RunSQLContext(ctx context.Context, sql string, b Budget) (*sqldata.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, stmt, b)
}

// Run executes a parsed statement with no deadline and no budget.
func (e *Engine) Run(stmt *sqlparse.SelectStmt) (*sqldata.Result, error) {
	return e.RunContext(context.Background(), stmt, Budget{})
}

// RunContext executes a parsed statement, honoring ctx cancellation and
// the resource budget. Cancellation surfaces as ErrCanceled and budget
// exhaustion as ErrBudgetExceeded (both match with errors.Is); the
// executor checks both at operator boundaries.
func (e *Engine) RunContext(ctx context.Context, stmt *sqlparse.SelectStmt, b Budget) (*sqldata.Result, error) {
	res, _, err := e.RunContextUsage(ctx, stmt, b)
	return res, err
}

// RunContextUsage is RunContext plus the execution's resource Usage
// (reported for failed executions too — a budget-killed query still says
// how far it got). When ctx carries an obs span, the executor annotates
// it with rows scanned/returned, join rows, sub-query count, and budget
// consumption, and hangs per-operator scan/join/group child spans off it
// for the top-level statement.
func (e *Engine) RunContextUsage(ctx context.Context, stmt *sqlparse.SelectStmt, b Budget) (*sqldata.Result, Usage, error) {
	p, _, err := e.PrepareCached(stmt)
	if err != nil {
		return nil, Usage{}, err
	}
	return p.Run(ctx, b)
}
