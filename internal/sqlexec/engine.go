// Package sqlexec executes parsed SELECT statements against in-memory
// sqldata databases. It is a straightforward tuple-at-a-time evaluator with
// hash grouping, nested-loop joins, correlated sub-query support, and SQL
// three-valued logic — enough to execute every query-complexity class from
// the SIGMOD 2020 tutorial taxonomy, including nested BI queries.
package sqlexec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/obs"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Engine evaluates statements against one database.
type Engine struct {
	db *sqldata.Database
}

// New returns an engine over db.
func New(db *sqldata.Database) *Engine { return &Engine{db: db} }

// RunSQL parses and executes a SQL string.
func (e *Engine) RunSQL(sql string) (*sqldata.Result, error) {
	return e.RunSQLContext(context.Background(), sql, Budget{})
}

// RunSQLContext parses and executes a SQL string under ctx and b.
func (e *Engine) RunSQLContext(ctx context.Context, sql string, b Budget) (*sqldata.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, stmt, b)
}

// Run executes a parsed statement with no deadline and no budget.
func (e *Engine) Run(stmt *sqlparse.SelectStmt) (*sqldata.Result, error) {
	return e.RunContext(context.Background(), stmt, Budget{})
}

// RunContext executes a parsed statement, honoring ctx cancellation and
// the resource budget. Cancellation surfaces as ErrCanceled and budget
// exhaustion as ErrBudgetExceeded (both match with errors.Is); the
// executor checks both at scan, join, and group boundaries.
func (e *Engine) RunContext(ctx context.Context, stmt *sqlparse.SelectStmt, b Budget) (*sqldata.Result, error) {
	res, _, err := e.RunContextUsage(ctx, stmt, b)
	return res, err
}

// RunContextUsage is RunContext plus the execution's resource Usage
// (reported for failed executions too — a budget-killed query still says
// how far it got). When ctx carries an obs span, the executor annotates
// it with rows scanned/returned, join rows, sub-query count, and budget
// consumption, and hangs per-operator scan/join/group child spans off it
// for the top-level statement.
func (e *Engine) RunContextUsage(ctx context.Context, stmt *sqlparse.SelectStmt, b Budget) (*sqldata.Result, Usage, error) {
	st := &execState{ctx: ctx, budget: b, span: obs.FromContext(ctx)}
	if err := st.checkCtx(); err != nil {
		return nil, Usage{}, err
	}
	res, err := e.run(stmt, nil, st)
	u := Usage{Rows: st.rows, JoinRows: st.joinRows, Subqueries: st.subqueries}
	if st.span != nil {
		st.span.Add("rows_scanned", int64(u.Rows))
		st.span.Add("join_rows", int64(u.JoinRows))
		st.span.Add("subqueries", int64(u.Subqueries))
		if res != nil {
			st.span.Add("rows_returned", int64(len(res.Rows)))
		}
		st.span.SetAttr("budget", u.Against(b))
	}
	return res, u, err
}

// runSub evaluates a sub-query against the enclosing statement's budget,
// charging one sub-query evaluation.
func (e *Engine) runSub(sub *sqlparse.SelectStmt, parent *evalCtx) (*sqldata.Result, error) {
	if err := parent.st.addSubquery(); err != nil {
		return nil, err
	}
	return e.run(sub, parent, parent.st)
}

// boundTable is one table visible in a query scope.
type boundTable struct {
	name   string // effective name (alias or table name), lower-case
	schema *sqldata.Schema
	off    int // offset of the table's first column in the joined tuple
}

// scope is the set of tables a statement's expressions can reference.
type scope struct {
	tables []boundTable
	width  int
}

func (s *scope) add(name string, schema *sqldata.Schema) error {
	lname := strings.ToLower(name)
	for _, t := range s.tables {
		if t.name == lname {
			return fmt.Errorf("sqlexec: duplicate table name %q in FROM; use aliases", name)
		}
	}
	s.tables = append(s.tables, boundTable{name: lname, schema: schema, off: s.width})
	s.width += len(schema.Columns)
	return nil
}

// resolve finds the tuple offset of table.col. An empty table qualifier
// searches all tables and errors on ambiguity.
func (s *scope) resolve(table, col string) (int, error) {
	ltable, lcol := strings.ToLower(table), strings.ToLower(col)
	found := -1
	for _, t := range s.tables {
		if ltable != "" && t.name != ltable && !strings.EqualFold(t.schema.Name, table) {
			continue
		}
		if i := t.schema.ColumnIndex(lcol); i >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sqlexec: ambiguous column %q", col)
			}
			found = t.off + i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sqlexec: unknown column %s.%s", table, col)
	}
	return found, nil
}

// evalCtx carries everything expression evaluation needs: the scope, the
// current tuple, the rows of the current group (for aggregates), alias
// bindings (for ORDER BY on select aliases), and the enclosing context for
// correlated sub-queries.
type evalCtx struct {
	engine    *Engine
	scope     *scope
	row       sqldata.Row
	groupRows []sqldata.Row
	aliases   map[string]sqldata.Value
	parent    *evalCtx
	st        *execState
}

func (e *Engine) run(stmt *sqlparse.SelectStmt, parent *evalCtx, st *execState) (*sqldata.Result, error) {
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sqlexec: empty select list")
	}
	if stmt.From == nil {
		return nil, fmt.Errorf("sqlexec: missing FROM clause")
	}

	sc := &scope{}
	rows, err := e.evalFrom(stmt.From, sc, parent, st)
	if err != nil {
		return nil, err
	}

	// WHERE
	if stmt.Where != nil {
		kept := rows[:0]
		for _, r := range rows {
			if err := st.tick(); err != nil {
				return nil, err
			}
			ctx := &evalCtx{engine: e, scope: sc, row: r, parent: parent, st: st}
			ok, err := evalPredicate(ctx, stmt.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.HasAggregate()

	type outRow struct {
		proj sqldata.Row
		keys []sqldata.Value
	}
	var out []outRow
	headers, err := e.headers(stmt, sc)
	if err != nil {
		return nil, err
	}

	project := func(ctx *evalCtx) (sqldata.Row, error) {
		var proj sqldata.Row
		ctx.aliases = map[string]sqldata.Value{}
		for _, it := range stmt.Items {
			if it.Star {
				vals, err := expandStar(ctx, it.StarTable)
				if err != nil {
					return nil, err
				}
				proj = append(proj, vals...)
				continue
			}
			v, err := evalExpr(ctx, it.Expr)
			if err != nil {
				return nil, err
			}
			if it.Alias != "" {
				ctx.aliases[strings.ToLower(it.Alias)] = v
			}
			proj = append(proj, v)
		}
		return proj, nil
	}

	orderKeys := func(ctx *evalCtx) ([]sqldata.Value, error) {
		keys := make([]sqldata.Value, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			v, err := evalExpr(ctx, o.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		return keys, nil
	}

	if grouped {
		groups, order, err := groupRows(rows, stmt.GroupBy, sc, e, parent, st)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			var rep sqldata.Row
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = nullRow(sc.width) // all-NULL representative for empty global group
			}
			ctx := &evalCtx{engine: e, scope: sc, row: rep, groupRows: g, parent: parent, st: st}
			if stmt.Having != nil {
				ok, err := evalPredicate(ctx, stmt.Having)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			proj, err := project(ctx)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeys(ctx)
			if err != nil {
				return nil, err
			}
			if err := st.addRows(1); err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	} else {
		if stmt.Having != nil {
			return nil, fmt.Errorf("sqlexec: HAVING without GROUP BY or aggregates")
		}
		for _, r := range rows {
			if err := st.tick(); err != nil {
				return nil, err
			}
			ctx := &evalCtx{engine: e, scope: sc, row: r, parent: parent, st: st}
			proj, err := project(ctx)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeys(ctx)
			if err != nil {
				return nil, err
			}
			if err := st.addRows(1); err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	}

	// ORDER BY (stable, so ties keep input order).
	if len(stmt.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				a, b := out[i].keys[k], out[j].keys[k]
				// NULLs sort first ascending, last descending.
				if a.Null || b.Null {
					if a.Null && b.Null {
						continue
					}
					return a.Null != o.Desc
				}
				c, err := sqldata.Compare(a, b)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	result := &sqldata.Result{Columns: headers}
	seen := map[string]bool{}
	for _, o := range out {
		if stmt.Distinct {
			k := o.proj.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		result.Rows = append(result.Rows, o.proj)
		if stmt.Limit >= 0 && len(result.Rows) >= stmt.Limit {
			break
		}
	}
	if stmt.Limit == 0 {
		result.Rows = nil
	}
	return result, nil
}

// evalFrom binds the FROM chain into the scope and produces the joined
// rows, charging base-table rows against MaxRows and every intermediate
// join row against MaxJoinRows.
func (e *Engine) evalFrom(from *sqlparse.FromClause, sc *scope, parent *evalCtx, st *execState) ([]sqldata.Row, error) {
	baseRows := func(ref sqlparse.TableRef) (*sqldata.Table, error) {
		t := e.db.Table(ref.Name)
		if t == nil {
			return nil, fmt.Errorf("sqlexec: unknown table %q", ref.Name)
		}
		return t, nil
	}

	// Operator spans are only produced for the top-level statement: a
	// correlated sub-query re-runs its FROM chain once per outer row, and
	// a span per evaluation would bloat the trace to no diagnostic gain.
	var opSpan *obs.Span
	if parent == nil {
		opSpan = st.span
	}

	first, err := baseRows(from.First)
	if err != nil {
		return nil, err
	}
	if err := sc.add(from.First.EffName(), first.Schema); err != nil {
		return nil, err
	}
	scanSp := opSpan.Child("scan " + strings.ToLower(from.First.Name))
	if err := st.addRows(len(first.Rows)); err != nil {
		scanSp.End()
		return nil, err
	}
	rows := make([]sqldata.Row, len(first.Rows))
	for i, r := range first.Rows {
		rows[i] = r.Clone()
	}
	scanSp.Add("rows", int64(len(first.Rows)))
	scanSp.End()

	for _, j := range from.Joins {
		right, err := baseRows(j.Table)
		if err != nil {
			return nil, err
		}
		if err := sc.add(j.Table.EffName(), right.Schema); err != nil {
			return nil, err
		}
		joinSp := opSpan.Child("join " + strings.ToLower(j.Table.Name))
		joinSp.Add("left_rows", int64(len(rows)))
		joinSp.Add("right_rows", int64(len(right.Rows)))
		rwidth := len(right.Schema.Columns)
		joined, err := func() (joined []sqldata.Row, err error) {
			defer func() {
				joinSp.Add("out_rows", int64(len(joined)))
				joinSp.End()
			}()
			for _, l := range rows {
				matched := false
				for _, r := range right.Rows {
					if err := st.tick(); err != nil {
						return nil, err
					}
					combined := append(append(sqldata.Row{}, l...), r...)
					ctx := &evalCtx{engine: e, scope: sc, row: combined, parent: parent, st: st}
					ok, err := evalPredicate(ctx, j.On)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						if err := st.addJoinRows(1); err != nil {
							return nil, err
						}
						joined = append(joined, combined)
					}
				}
				if !matched && j.Type == sqlparse.JoinLeft {
					if err := st.addJoinRows(1); err != nil {
						return nil, err
					}
					joined = append(joined, append(append(sqldata.Row{}, l...), nullRow(rwidth)...))
				}
			}
			return joined, nil
		}()
		if err != nil {
			return nil, err
		}
		rows = joined
	}
	return rows, nil
}

// headers computes the output column names.
func (e *Engine) headers(stmt *sqlparse.SelectStmt, sc *scope) ([]string, error) {
	var h []string
	for _, it := range stmt.Items {
		if it.Star {
			for _, t := range sc.tables {
				if it.StarTable != "" && t.name != strings.ToLower(it.StarTable) {
					continue
				}
				for _, c := range t.schema.Columns {
					h = append(h, c.Name)
				}
			}
			continue
		}
		switch {
		case it.Alias != "":
			h = append(h, it.Alias)
		default:
			h = append(h, it.Expr.String())
		}
	}
	if len(h) == 0 {
		return nil, fmt.Errorf("sqlexec: star matched no tables")
	}
	return h, nil
}

func expandStar(ctx *evalCtx, starTable string) ([]sqldata.Value, error) {
	var vals []sqldata.Value
	for _, t := range ctx.scope.tables {
		if starTable != "" && t.name != strings.ToLower(starTable) {
			continue
		}
		for i := range t.schema.Columns {
			vals = append(vals, ctx.row[t.off+i])
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("sqlexec: %s.* matched no table", starTable)
	}
	return vals, nil
}

// nullRow returns a row of n SQL NULLs (for LEFT JOIN padding and empty
// global aggregate groups).
func nullRow(n int) sqldata.Row {
	r := make(sqldata.Row, n)
	for i := range r {
		r[i] = sqldata.NullValue()
	}
	return r
}

// groupRows hash-partitions rows by the GROUP BY key expressions. It
// returns the groups plus key order of first appearance (deterministic
// output). With no GROUP BY (global aggregate) it returns one group,
// which may be empty.
func groupRows(rows []sqldata.Row, keys []sqlparse.Expr, sc *scope, e *Engine, parent *evalCtx, st *execState) (map[string][]sqldata.Row, []string, error) {
	groups := map[string][]sqldata.Row{}
	var order []string
	if len(keys) == 0 {
		groups[""] = rows
		return groups, []string{""}, nil
	}
	var gsp *obs.Span
	if parent == nil {
		gsp = st.span.Child("group")
	}
	defer func() {
		gsp.Add("in_rows", int64(len(rows)))
		gsp.Add("groups", int64(len(order)))
		gsp.End()
	}()
	for _, r := range rows {
		if err := st.tick(); err != nil {
			return nil, nil, err
		}
		ctx := &evalCtx{engine: e, scope: sc, row: r, parent: parent, st: st}
		var sb strings.Builder
		for _, k := range keys {
			v, err := evalExpr(ctx, k)
			if err != nil {
				// Group-key evaluation errors surface later during
				// projection; bucket such rows together.
				sb.WriteString("\x00ERR")
				continue
			}
			sb.WriteString(v.Key())
			sb.WriteByte(0x1f)
		}
		k := sb.String()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	return groups, order, nil
}
