package sqlexec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// corpDB builds the shared fixture: departments and employees.
func corpDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("corp")
	dept, err := db.CreateTable(&sqldata.Schema{
		Name: "department",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "budget", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dept.MustInsert(sqldata.NewInt(1), sqldata.NewText("engineering"), sqldata.NewFloat(500000))
	dept.MustInsert(sqldata.NewInt(2), sqldata.NewText("sales"), sqldata.NewFloat(300000))
	dept.MustInsert(sqldata.NewInt(3), sqldata.NewText("hr"), sqldata.NewFloat(100000))
	dept.MustInsert(sqldata.NewInt(4), sqldata.NewText("empty_dept"), sqldata.NewFloat(50000))

	emp, err := db.CreateTable(&sqldata.Schema{
		Name: "employee",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "salary", Type: sqldata.TypeFloat},
			{Name: "dept_id", Type: sqldata.TypeInt},
			{Name: "hired", Type: sqldata.TypeDate},
		},
		ForeignKeys: []sqldata.ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := func(id int64, name string, sal float64, dept int64, hired string) {
		d, err := sqldata.ParseDate(hired)
		if err != nil {
			t.Fatal(err)
		}
		emp.MustInsert(sqldata.NewInt(id), sqldata.NewText(name), sqldata.NewFloat(sal), sqldata.NewInt(dept), d)
	}
	ins(1, "alice", 120000, 1, "2015-02-10")
	ins(2, "bob", 95000, 1, "2017-06-01")
	ins(3, "carol", 105000, 1, "2019-09-15")
	ins(4, "dan", 60000, 2, "2018-01-20")
	ins(5, "erin", 72000, 2, "2020-11-05")
	ins(6, "frank", 50000, 3, "2012-03-30")
	// One employee with NULL salary and no department.
	emp.MustInsert(sqldata.NewInt(7), sqldata.NewText("grace"), sqldata.NullValue(), sqldata.NullValue(), sqldata.NewDate(2021, 1, 1))
	return db
}

func runQ(t testing.TB, db *sqldata.Database, sql string) *sqldata.Result {
	t.Helper()
	res, err := New(db).RunSQL(sql)
	if err != nil {
		t.Fatalf("RunSQL(%q): %v", sql, err)
	}
	return res
}

func ints(res *sqldata.Result) []int64 {
	var out []int64
	for _, r := range res.Rows {
		out = append(out, r[0].Int())
	}
	return out
}

func texts(res *sqldata.Result) []string {
	var out []string
	for _, r := range res.Rows {
		out = append(out, r[0].String())
	}
	return out
}

func TestSimpleSelection(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT name FROM employee WHERE salary > 90000")
	got := texts(res)
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	want := map[string]bool{"alice": true, "bob": true, "carol": true}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected row %q", n)
		}
	}
}

func TestProjectionAndStar(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT * FROM department")
	if len(res.Columns) != 3 || len(res.Rows) != 4 {
		t.Fatalf("star: %d cols %d rows", len(res.Columns), len(res.Rows))
	}
	res = runQ(t, db, "SELECT e.* FROM employee AS e WHERE e.id = 1")
	if len(res.Columns) != 5 || res.Rows[0][1].Text() != "alice" {
		t.Fatalf("qualified star: %v", res)
	}
	res = runQ(t, db, "SELECT salary * 2 AS double_pay FROM employee WHERE id = 1")
	if res.Columns[0] != "double_pay" || res.Rows[0][0].Float() != 240000 {
		t.Fatalf("arithmetic projection: %v", res)
	}
}

func TestWherePredicates(t *testing.T) {
	db := corpDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM employee WHERE name LIKE 'a%'", 1},
		{"SELECT id FROM employee WHERE name LIKE '%a%'", 5}, // alice carol dan frank grace
		{"SELECT id FROM employee WHERE name NOT LIKE '%a%'", 2},
		{"SELECT id FROM employee WHERE salary BETWEEN 60000 AND 100000", 3},
		{"SELECT id FROM employee WHERE salary NOT BETWEEN 60000 AND 100000", 3}, // NULL excluded
		{"SELECT id FROM employee WHERE dept_id IN (1, 3)", 4},
		{"SELECT id FROM employee WHERE dept_id NOT IN (1, 3)", 2},
		{"SELECT id FROM employee WHERE salary IS NULL", 1},
		{"SELECT id FROM employee WHERE salary IS NOT NULL", 6},
		{"SELECT id FROM employee WHERE NOT (salary > 90000)", 3}, // NULL row drops
		{"SELECT id FROM employee WHERE salary > 90000 AND dept_id = 1", 3},
		{"SELECT id FROM employee WHERE salary < 60000 OR salary > 110000", 2},
		{"SELECT id FROM employee WHERE hired > '2018-01-01'", 4}, // text coerces to date
	}
	for _, c := range cases {
		res := runQ(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%q: got %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestDateComparisons(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT id FROM employee WHERE hired BETWEEN '2017-01-01' AND '2019-12-31'")
	got := ints(res)
	if len(got) != 3 { // bob, carol, dan
		t.Fatalf("date BETWEEN = %v", got)
	}
	res = runQ(t, db, "SELECT id FROM employee WHERE hired = '2015-02-10'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("date equality = %v", res.Rows)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT COUNT(*), COUNT(salary), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM employee")
	r := res.Rows[0]
	if r[0].Int() != 7 {
		t.Errorf("COUNT(*) = %v", r[0])
	}
	if r[1].Int() != 6 {
		t.Errorf("COUNT(salary) = %v (NULL must be skipped)", r[1])
	}
	if r[2].Float() != 502000 {
		t.Errorf("SUM = %v", r[2])
	}
	if got := r[3].Float(); got < 83666 || got > 83667 {
		t.Errorf("AVG = %v", r[3])
	}
	if r[4].Float() != 50000 || r[5].Float() != 120000 {
		t.Errorf("MIN/MAX = %v/%v", r[4], r[5])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT COUNT(*), SUM(salary) FROM employee WHERE id > 999")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("COUNT(*) over empty = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].Null {
		t.Errorf("SUM over empty = %v, want NULL", res.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT COUNT(DISTINCT dept_id) FROM employee")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("COUNT(DISTINCT dept_id) = %v, want 3", res.Rows[0][0])
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, `SELECT dept_id, COUNT(*) AS n, AVG(salary) AS avg_sal
		FROM employee WHERE dept_id IS NOT NULL
		GROUP BY dept_id HAVING COUNT(*) >= 2 ORDER BY avg_sal DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(res.Rows), res)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Errorf("order by avg desc wrong: %v", res)
	}
	if res.Rows[0][1].Int() != 3 {
		t.Errorf("count for dept 1 = %v", res.Rows[0][1])
	}
}

func TestOrderByWithNullsAndLimit(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT id FROM employee ORDER BY salary ASC")
	got := ints(res)
	if got[0] != 7 { // NULL sorts first ascending
		t.Errorf("NULL should sort first asc: %v", got)
	}
	res = runQ(t, db, "SELECT id FROM employee ORDER BY salary DESC LIMIT 2")
	got = ints(res)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("top-2 by salary = %v", got)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT id FROM employee WHERE dept_id IS NOT NULL ORDER BY dept_id ASC, salary DESC")
	got := ints(res)
	want := []int64{1, 3, 2, 5, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multi-key order = %v, want %v", got, want)
		}
	}
}

func TestDistinct(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT DISTINCT dept_id FROM employee WHERE dept_id IS NOT NULL")
	if len(res.Rows) != 3 {
		t.Errorf("distinct dept_id = %d rows", len(res.Rows))
	}
}

func TestInnerJoin(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, `SELECT e.name, d.name FROM employee AS e
		JOIN department AS d ON e.dept_id = d.id WHERE d.name = 'engineering'`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Text() != "engineering" {
			t.Errorf("wrong dept: %v", r)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, `SELECT d.name, e.name FROM department AS d
		LEFT JOIN employee AS e ON e.dept_id = d.id ORDER BY d.id ASC`)
	// engineering×3 + sales×2 + hr×1 + empty_dept×1(padded) = 7
	if len(res.Rows) != 7 {
		t.Fatalf("left join rows = %d", len(res.Rows))
	}
	last := res.Rows[6]
	if last[0].Text() != "empty_dept" || !last[1].Null {
		t.Errorf("unmatched left row not NULL-padded: %v", last)
	}
}

func TestCommaJoin(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT e.name FROM employee e, department d WHERE e.dept_id = d.id AND d.name = 'sales'")
	if len(res.Rows) != 2 {
		t.Errorf("comma join rows = %d", len(res.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := corpDB(t)
	// Self-join through department: peers in the same dept as alice.
	res := runQ(t, db, `SELECT p.name FROM employee AS e
		JOIN department AS d ON e.dept_id = d.id
		JOIN employee AS p ON p.dept_id = d.id
		WHERE e.name = 'alice' AND p.name != 'alice'`)
	got := texts(res)
	if len(got) != 2 {
		t.Fatalf("peers = %v", got)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT name FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)")
	got := texts(res)
	if len(got) != 3 {
		t.Fatalf("above-average = %v", got)
	}
}

func TestInSubquery(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT name FROM employee WHERE dept_id IN (SELECT id FROM department WHERE budget > 250000)")
	if len(res.Rows) != 5 {
		t.Fatalf("in-subquery rows = %d", len(res.Rows))
	}
	res = runQ(t, db, "SELECT name FROM department WHERE id NOT IN (SELECT dept_id FROM employee WHERE dept_id IS NOT NULL)")
	got := texts(res)
	if len(got) != 1 || got[0] != "empty_dept" {
		t.Fatalf("not-in = %v", got)
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, `SELECT d.name FROM department AS d WHERE EXISTS
		(SELECT id FROM employee WHERE employee.dept_id = d.id AND employee.salary > 100000)`)
	got := texts(res)
	if len(got) != 1 || got[0] != "engineering" {
		t.Fatalf("correlated exists = %v", got)
	}
	res = runQ(t, db, `SELECT d.name FROM department AS d WHERE NOT EXISTS
		(SELECT id FROM employee WHERE employee.dept_id = d.id)`)
	got = texts(res)
	if len(got) != 1 || got[0] != "empty_dept" {
		t.Fatalf("not exists = %v", got)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	db := corpDB(t)
	// Employees earning above their own department's average.
	res := runQ(t, db, `SELECT e.name FROM employee AS e WHERE e.salary >
		(SELECT AVG(salary) FROM employee WHERE employee.dept_id = e.dept_id)`)
	got := texts(res)
	want := map[string]bool{"alice": true, "erin": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("above own dept average = %v", got)
	}
}

func TestNestedTwoLevels(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, `SELECT name FROM department WHERE id IN
		(SELECT dept_id FROM employee WHERE salary >
			(SELECT AVG(salary) FROM employee))`)
	got := texts(res)
	if len(got) != 1 || got[0] != "engineering" {
		t.Fatalf("two-level nesting = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT UPPER(name), LOWER(name), ABS(salary - 100000), YEAR(hired) FROM employee WHERE id = 2")
	r := res.Rows[0]
	if r[0].Text() != "BOB" || r[1].Text() != "bob" || r[2].Float() != 5000 || r[3].Int() != 2017 {
		t.Fatalf("scalar funcs = %v", r)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT YEAR(hired), COUNT(*) FROM employee GROUP BY YEAR(hired) ORDER BY YEAR(hired) ASC")
	if len(res.Rows) != 7 {
		t.Fatalf("group by expr rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 2012 {
		t.Errorf("first year = %v", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	db := corpDB(t)
	bad := []string{
		"SELECT x FROM nosuch",
		"SELECT nosuch FROM employee",
		"SELECT name FROM employee WHERE salary + name > 1",
		"SELECT name FROM employee HAVING COUNT(*) > 1 WHERE id = 1", // clause order
		"SELECT id FROM employee JOIN employee ON 1 = 1",             // dup name, no alias
		"SELECT SUM(*) FROM employee",
		"SELECT name FROM employee WHERE id IN (SELECT id, name FROM employee)",
		"SELECT name FROM employee WHERE salary > (SELECT salary FROM employee)", // >1 row
		"SELECT id FROM employee, department WHERE id = 1",                       // ambiguous id
	}
	for _, sql := range bad {
		if _, err := New(db).RunSQL(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	db := corpDB(t)
	res := runQ(t, db, "SELECT salary / 0 FROM employee WHERE id = 1")
	if !res.Rows[0][0].Null {
		t.Errorf("x/0 = %v, want NULL", res.Rows[0][0])
	}
}

// Property: LIMIT n never yields more than n rows and is a prefix of the
// unlimited ordered result.
func TestPropertyLimitPrefix(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 10)
		full, err := eng.RunSQL("SELECT id FROM employee ORDER BY id ASC")
		if err != nil {
			return false
		}
		limited, err := eng.RunSQL(sqlparse.MustParse("SELECT id FROM employee ORDER BY id ASC").String() + " LIMIT " + string(rune('0'+n)))
		if err != nil {
			return false
		}
		if len(limited.Rows) > n {
			return false
		}
		for i := range limited.Rows {
			if limited.Rows[i][0].Int() != full.Rows[i][0].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: WHERE with a randomly generated conjunction returns a subset of
// the unfiltered rows, and adding conjuncts never grows the result.
func TestPropertyFilterMonotone(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	conds := []string{
		"salary > 60000", "salary < 100000", "dept_id = 1", "dept_id != 2",
		"name LIKE '%a%'", "id <= 5", "salary IS NOT NULL",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(3)
		picked := make([]string, 0, k)
		for i := 0; i < k; i++ {
			picked = append(picked, conds[r.Intn(len(conds))])
		}
		q1 := "SELECT id FROM employee WHERE " + strings.Join(picked, " AND ")
		res1, err := eng.RunSQL(q1)
		if err != nil {
			return false
		}
		q2 := q1 + " AND id < 4"
		res2, err := eng.RunSQL(q2)
		if err != nil {
			return false
		}
		return len(res2.Rows) <= len(res1.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: GROUP BY COUNT(*) sums to the filtered row count.
func TestPropertyGroupCountsSum(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	res, err := eng.RunSQL("SELECT dept_id, COUNT(*) FROM employee GROUP BY dept_id")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range res.Rows {
		sum += r[1].Int()
	}
	if sum != 7 {
		t.Errorf("group counts sum to %d, want 7", sum)
	}
}
