package sqlexec

import (
	"fmt"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// evalPredicate evaluates a boolean expression under SQL three-valued
// logic and reports whether it is definitely TRUE (NULL counts as false,
// matching WHERE/HAVING/ON semantics).
func evalPredicate(ctx *evalCtx, e sqlparse.Expr) (bool, error) {
	v, err := evalExpr(ctx, e)
	if err != nil {
		return false, err
	}
	if v.Null {
		return false, nil
	}
	b, ok := v.BoolOK()
	if !ok {
		return false, fmt.Errorf("sqlexec: predicate evaluated to %s, want BOOL", v.T)
	}
	return b, nil
}

// evalExpr evaluates an expression in the given context. Boolean results
// use NULL for SQL UNKNOWN.
func evalExpr(ctx *evalCtx, e sqlparse.Expr) (sqldata.Value, error) {
	switch t := e.(type) {
	case *sqlparse.Literal:
		return t.Val, nil

	case *sqlparse.ColumnRef:
		return evalColumn(ctx, t)

	case *sqlparse.BinaryExpr:
		return evalBinary(ctx, t)

	case *sqlparse.UnaryExpr:
		x, err := evalExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		switch t.Op {
		case "NOT":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			b, ok := x.BoolOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: NOT on %s", x.T)
			}
			return sqldata.NewBool(!b), nil
		case "-":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			if n, ok := x.IntOK(); ok {
				return sqldata.NewInt(-n), nil
			}
			if f, ok := x.FloatOK(); ok {
				return sqldata.NewFloat(-f), nil
			}
			return sqldata.Value{}, fmt.Errorf("sqlexec: unary minus on %s", x.T)
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: unknown unary op %q", t.Op)

	case *sqlparse.FuncCall:
		if t.IsAggregate() {
			return evalAggregate(ctx, t)
		}
		return evalScalarFunc(ctx, t)

	case *sqlparse.InExpr:
		return evalIn(ctx, t)

	case *sqlparse.ExistsExpr:
		res, err := ctx.engine.runSub(t.Sub, ctx)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((len(res.Rows) > 0) != t.Not), nil

	case *sqlparse.SubqueryExpr:
		return evalScalarSubquery(ctx, t.Sub)

	case *sqlparse.BetweenExpr:
		x, err := evalExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		lo, err := evalExpr(ctx, t.Lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		hi, err := evalExpr(ctx, t.Hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null || lo.Null || hi.Null {
			return sqldata.NullValue(), nil
		}
		x, lo = coerceDatePair(x, lo)
		x, hi = coerceDatePair(x, hi)
		cl, err := sqldata.Compare(x, lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		ch, err := sqldata.Compare(x, hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((cl >= 0 && ch <= 0) != t.Not), nil

	case *sqlparse.LikeExpr:
		x, err := evalExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null {
			return sqldata.NullValue(), nil
		}
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LIKE on %s", x.T)
		}
		return sqldata.NewBool(likeMatch(t.Pattern, s) != t.Not), nil

	case *sqlparse.IsNullExpr:
		x, err := evalExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool(x.Null != t.Not), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unsupported expression %T", e)
}

// evalColumn resolves a column reference against the current scope, then
// select-item aliases, then enclosing scopes (correlated sub-queries).
func evalColumn(ctx *evalCtx, c *sqlparse.ColumnRef) (sqldata.Value, error) {
	for cur := ctx; cur != nil; cur = cur.parent {
		if off, err := cur.scope.resolve(c.Table, c.Column); err == nil {
			return cur.row[off], nil
		}
		if c.Table == "" && cur.aliases != nil {
			if v, ok := cur.aliases[strings.ToLower(c.Column)]; ok {
				return v, nil
			}
		}
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: cannot resolve column %s", c)
}

func evalBinary(ctx *evalCtx, b *sqlparse.BinaryExpr) (sqldata.Value, error) {
	// AND/OR get short-circuit three-valued logic.
	if b.Op == "AND" || b.Op == "OR" {
		l, err := evalExpr(ctx, b.L)
		if err != nil {
			return sqldata.Value{}, err
		}
		r, err := evalExpr(ctx, b.R)
		if err != nil {
			return sqldata.Value{}, err
		}
		lb, lNull, err := boolOrNull(l)
		if err != nil {
			return sqldata.Value{}, err
		}
		rb, rNull, err := boolOrNull(r)
		if err != nil {
			return sqldata.Value{}, err
		}
		if b.Op == "AND" {
			switch {
			case !lNull && !lb, !rNull && !rb:
				return sqldata.NewBool(false), nil
			case lNull || rNull:
				return sqldata.NullValue(), nil
			default:
				return sqldata.NewBool(true), nil
			}
		}
		switch {
		case !lNull && lb, !rNull && rb:
			return sqldata.NewBool(true), nil
		case lNull || rNull:
			return sqldata.NullValue(), nil
		default:
			return sqldata.NewBool(false), nil
		}
	}

	l, err := evalExpr(ctx, b.L)
	if err != nil {
		return sqldata.Value{}, err
	}
	r, err := evalExpr(ctx, b.R)
	if err != nil {
		return sqldata.Value{}, err
	}

	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		l, r = coerceDatePair(l, r)
		c, err := sqldata.Compare(l, r)
		if err != nil {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s: %w", b, err)
		}
		var ok bool
		switch b.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return sqldata.NewBool(ok), nil

	case "+", "-", "*", "/":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		if !l.T.Numeric() || !r.T.Numeric() {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", b.Op, l.T, r.T)
		}
		if b.Op != "/" {
			li, lok := l.IntOK()
			ri, rok := r.IntOK()
			if lok && rok {
				switch b.Op {
				case "+":
					return sqldata.NewInt(li + ri), nil
				case "-":
					return sqldata.NewInt(li - ri), nil
				case "*":
					return sqldata.NewInt(li * ri), nil
				}
			}
		}
		a, aok := l.FloatOK()
		bb, bok := r.FloatOK()
		if !aok || !bok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", b.Op, l.T, r.T)
		}
		switch b.Op {
		case "+":
			return sqldata.NewFloat(a + bb), nil
		case "-":
			return sqldata.NewFloat(a - bb), nil
		case "*":
			return sqldata.NewFloat(a * bb), nil
		default:
			if bb == 0 {
				return sqldata.NullValue(), nil // SQL engines raise; NULL keeps workloads total
			}
			return sqldata.NewFloat(a / bb), nil
		}
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown operator %q", b.Op)
}

func boolOrNull(v sqldata.Value) (b, isNull bool, err error) {
	if v.Null {
		return false, true, nil
	}
	bv, ok := v.BoolOK()
	if !ok {
		return false, false, fmt.Errorf("sqlexec: expected BOOL, got %s", v.T)
	}
	return bv, false, nil
}

// evalAggregate computes COUNT/SUM/AVG/MIN/MAX over the current group.
func evalAggregate(ctx *evalCtx, f *sqlparse.FuncCall) (sqldata.Value, error) {
	if ctx.groupRows == nil {
		return sqldata.Value{}, fmt.Errorf("sqlexec: aggregate %s outside grouped context", f.Name)
	}
	if f.Star {
		if f.Name != "COUNT" {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s(*) is not valid", f.Name)
		}
		return sqldata.NewInt(int64(len(ctx.groupRows))), nil
	}
	if len(f.Args) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: %s expects one argument", f.Name)
	}

	var vals []sqldata.Value
	seen := map[string]bool{}
	for _, r := range ctx.groupRows {
		if err := ctx.st.tick(); err != nil {
			return sqldata.Value{}, err
		}
		rowCtx := &evalCtx{engine: ctx.engine, scope: ctx.scope, row: r, parent: ctx.parent, st: ctx.st}
		v, err := evalExpr(rowCtx, f.Args[0])
		if err != nil {
			return sqldata.Value{}, err
		}
		if v.Null {
			continue // aggregates skip NULLs
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch f.Name {
	case "COUNT":
		return sqldata.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		allInt := true
		sum := 0.0
		var isum int64
		for _, v := range vals {
			fv, ok := v.FloatOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: %s over %s", f.Name, v.T)
			}
			if iv, isInt := v.IntOK(); isInt {
				isum += iv
			} else {
				allInt = false
			}
			sum += fv
		}
		if f.Name == "SUM" {
			if allInt {
				return sqldata.NewInt(isum), nil
			}
			return sqldata.NewFloat(sum), nil
		}
		return sqldata.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := sqldata.Compare(v, best)
			if err != nil {
				return sqldata.Value{}, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown aggregate %q", f.Name)
}

// evalScalarFunc evaluates the small set of supported scalar functions.
func evalScalarFunc(ctx *evalCtx, f *sqlparse.FuncCall) (sqldata.Value, error) {
	if len(f.Args) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: function %s expects one argument", f.Name)
	}
	x, err := evalExpr(ctx, f.Args[0])
	if err != nil {
		return sqldata.Value{}, err
	}
	if x.Null {
		return sqldata.NullValue(), nil
	}
	switch f.Name {
	case "LOWER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LOWER on %s", x.T)
		}
		return sqldata.NewText(strings.ToLower(s)), nil
	case "UPPER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: UPPER on %s", x.T)
		}
		return sqldata.NewText(strings.ToUpper(s)), nil
	case "ABS":
		if v, ok := x.IntOK(); ok {
			if v < 0 {
				v = -v
			}
			return sqldata.NewInt(v), nil
		}
		if v, ok := x.FloatOK(); ok && x.T == sqldata.TypeFloat {
			if v < 0 {
				v = -v
			}
			return sqldata.NewFloat(v), nil
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: ABS on %s", x.T)
	case "YEAR":
		tm, ok := x.TimeOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: YEAR on %s", x.T)
		}
		return sqldata.NewInt(int64(tm.Year())), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown function %q", f.Name)
}

// evalIn evaluates list and sub-query IN with SQL NULL semantics: if no
// element matches but some element (or the probe) is NULL, the result is
// UNKNOWN rather than FALSE.
func evalIn(ctx *evalCtx, in *sqlparse.InExpr) (sqldata.Value, error) {
	x, err := evalExpr(ctx, in.X)
	if err != nil {
		return sqldata.Value{}, err
	}

	var elems []sqldata.Value
	if in.Sub != nil {
		res, err := ctx.engine.runSub(in.Sub, ctx)
		if err != nil {
			return sqldata.Value{}, err
		}
		if len(res.Columns) != 1 {
			return sqldata.Value{}, fmt.Errorf("sqlexec: IN sub-query must return one column, got %d", len(res.Columns))
		}
		for _, r := range res.Rows {
			elems = append(elems, r[0])
		}
	} else {
		for _, e := range in.List {
			v, err := evalExpr(ctx, e)
			if err != nil {
				return sqldata.Value{}, err
			}
			elems = append(elems, v)
		}
	}

	if x.Null {
		if len(elems) == 0 {
			return sqldata.NewBool(in.Not), nil // x IN () is FALSE even for NULL probe
		}
		return sqldata.NullValue(), nil
	}
	sawNull := false
	for _, e := range elems {
		if e.Null {
			sawNull = true
			continue
		}
		x2, e2 := coerceDatePair(x, e)
		c, err := sqldata.Compare(x2, e2)
		if err != nil {
			return sqldata.Value{}, err
		}
		if c == 0 {
			return sqldata.NewBool(!in.Not), nil
		}
	}
	if sawNull {
		return sqldata.NullValue(), nil
	}
	return sqldata.NewBool(in.Not), nil
}

// evalScalarSubquery runs a sub-query expected to produce at most one row
// of one column; an empty result is NULL.
func evalScalarSubquery(ctx *evalCtx, sub *sqlparse.SelectStmt) (sqldata.Value, error) {
	res, err := ctx.engine.runSub(sub, ctx)
	if err != nil {
		return sqldata.Value{}, err
	}
	if len(res.Columns) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query must return one column, got %d", len(res.Columns))
	}
	switch len(res.Rows) {
	case 0:
		return sqldata.NullValue(), nil
	case 1:
		return res.Rows[0][0], nil
	default:
		return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query returned %d rows", len(res.Rows))
	}
}

// coerceDatePair upgrades an ISO-formatted TEXT operand to DATE when the
// other operand is a DATE, so NL-generated SQL like hired > '2018-01-01'
// compares chronologically. Non-date-shaped text is left alone (Compare
// will then report the type error).
func coerceDatePair(a, b sqldata.Value) (sqldata.Value, sqldata.Value) {
	if a.T == sqldata.TypeDate && b.T == sqldata.TypeText {
		if d, err := sqldata.ParseDate(b.Text()); err == nil {
			return a, d
		}
	}
	if a.T == sqldata.TypeText && b.T == sqldata.TypeDate {
		if d, err := sqldata.ParseDate(a.Text()); err == nil {
			return d, b
		}
	}
	return a, b
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-insensitively (the common NLIDB-friendly collation). Classic
// two-pointer wildcard matching, linear in practice.
func likeMatch(pattern, s string) bool {
	p := []rune(strings.ToLower(pattern))
	t := []rune(strings.ToLower(s))
	pi, ti := 0, 0
	star, starTi := -1, 0
	for ti < len(t) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == t[ti]):
			pi++
			ti++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starTi = ti
			pi++
		case star >= 0:
			pi = star + 1
			starTi++
			ti = starTi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
