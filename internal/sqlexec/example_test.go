package sqlexec_test

import (
	"fmt"
	"log"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// ExampleEngine_RunSQL shows the end-to-end path from schema definition to
// executing SQL with a correlated sub-query.
func ExampleEngine_RunSQL() {
	db := sqldata.NewDatabase("demo")
	emp, err := db.CreateTable(&sqldata.Schema{
		Name: "employee",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "salary", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(120))
	emp.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewFloat(80))
	emp.MustInsert(sqldata.NewInt(3), sqldata.NewText("cyd"), sqldata.NewFloat(70))

	res, err := sqlexec.New(db).RunSQL(
		"SELECT name FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// ann
}

// ExampleEngine_Explain renders the physical plan without running it; the
// statically safe WHERE conjunct is pushed into the scan.
func ExampleEngine_Explain() {
	db := sqldata.NewDatabase("demo")
	if _, err := db.CreateTable(&sqldata.Schema{
		Name: "t",
		Columns: []sqldata.Column{
			{Name: "a", Type: sqldata.TypeInt},
			{Name: "b", Type: sqldata.TypeText},
		},
	}); err != nil {
		log.Fatal(err)
	}
	eng := sqlexec.New(db)
	plan, err := eng.Explain(sqlparse.MustParse("SELECT b FROM t WHERE a > 3 LIMIT 2"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// Limit 2
	//   Project [b]
	//     Scan t (0 rows) [filter: a > 3]
}
