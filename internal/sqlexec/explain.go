package sqlexec

import (
	"context"
	"fmt"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Explain renders the physical execution plan for the statement, without
// executing it: a tree of Limit / Distinct / Sort / Project / Having /
// GroupBy / Filter / Join / Scan operators, with nested sub-query plans
// inlined. Because it is the planner's output — not the statement's
// syntactic shape — it shows which joins run as hash joins and which WHERE
// conjuncts were pushed into the scans. Useful for teaching, the CLI, and
// debugging interpreter output.
func (e *Engine) Explain(stmt *sqlparse.SelectStmt) (string, error) {
	if stmt == nil || stmt.From == nil {
		return "", fmt.Errorf("sqlexec: nothing to explain")
	}
	p, err := e.Prepare(stmt)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// ExplainAnalyze executes the statement under ctx and b, then renders the
// plan annotated with each operator's observed output row count, alongside
// the result.
func (e *Engine) ExplainAnalyze(ctx context.Context, stmt *sqlparse.SelectStmt, b Budget) (string, *sqldata.Result, error) {
	if stmt == nil || stmt.From == nil {
		return "", nil, fmt.Errorf("sqlexec: nothing to explain")
	}
	p, err := e.Prepare(stmt)
	if err != nil {
		return "", nil, err
	}
	res, _, stats, err := p.RunStats(ctx, b)
	if err != nil {
		return "", nil, err
	}
	return p.ExplainStats(stats), res, nil
}
