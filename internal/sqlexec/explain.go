package sqlexec

import (
	"fmt"
	"strings"

	"nlidb/internal/sqlparse"
)

// Explain renders the evaluation plan the engine would use for the
// statement, without executing it: a tree of Project / Distinct / Limit /
// Sort / Having / GroupBy / Filter / Join / Scan operators, with nested
// sub-query plans inlined. Useful for teaching, the CLI, and debugging
// interpreter output.
func (e *Engine) Explain(stmt *sqlparse.SelectStmt) (string, error) {
	if stmt == nil || stmt.From == nil {
		return "", fmt.Errorf("sqlexec: nothing to explain")
	}
	var sb strings.Builder
	e.explain(&sb, stmt, 0)
	return strings.TrimRight(sb.String(), "\n"), nil
}

func (e *Engine) explain(sb *strings.Builder, stmt *sqlparse.SelectStmt, depth int) {
	line := func(d int, format string, args ...any) {
		sb.WriteString(strings.Repeat("  ", d))
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}

	d := depth
	items := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		items[i] = it.String()
	}
	line(d, "Project [%s]", strings.Join(items, ", "))
	d++
	if stmt.Distinct {
		line(d, "Distinct")
		d++
	}
	if stmt.Limit >= 0 {
		line(d, "Limit %d", stmt.Limit)
		d++
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			keys[i] = o.String()
		}
		line(d, "Sort [%s]", strings.Join(keys, ", "))
		d++
	}
	if stmt.Having != nil {
		line(d, "Having (%s)", stmt.Having)
		d++
	}
	if len(stmt.GroupBy) > 0 || stmt.HasAggregate() {
		if len(stmt.GroupBy) > 0 {
			keys := make([]string, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				keys[i] = g.String()
			}
			line(d, "HashGroupBy [%s]", strings.Join(keys, ", "))
		} else {
			line(d, "Aggregate (global)")
		}
		d++
	}
	if stmt.Where != nil {
		line(d, "Filter (%s)", stmt.Where)
		d++
	}

	// FROM chain: right-deep textual rendering of the left-deep loop.
	var renderFrom func(d int, joins []sqlparse.Join)
	renderFrom = func(d int, joins []sqlparse.Join) {
		if len(joins) == 0 {
			line(d, "Scan %s%s", stmt.From.First.Name, e.rowCount(stmt.From.First.Name))
			return
		}
		j := joins[len(joins)-1]
		kind := "NestedLoopJoin"
		if j.Type == sqlparse.JoinLeft {
			kind = "NestedLoopLeftJoin"
		}
		line(d, "%s (%s)", kind, j.On)
		renderFrom(d+1, joins[:len(joins)-1])
		line(d+1, "Scan %s%s", j.Table.Name, e.rowCount(j.Table.Name))
	}
	renderFrom(d, stmt.From.Joins)

	// Nested sub-queries.
	for i, sub := range stmt.Subqueries() {
		line(d, "Subquery %d:", i+1)
		e.explain(sb, sub, d+1)
	}
}

func (e *Engine) rowCount(table string) string {
	if t := e.db.Table(table); t != nil {
		return fmt.Sprintf(" (%d rows)", t.Len())
	}
	return " (unknown table)"
}
