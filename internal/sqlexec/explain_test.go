package sqlexec

import (
	"strings"
	"testing"

	"nlidb/internal/sqlparse"
)

func TestExplainSimple(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse("SELECT name FROM employee WHERE salary > 100"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Project [name]", "Filter (salary > 100)", "Scan employee (7 rows)"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainFullPipeline(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		`SELECT dept_id, COUNT(*) FROM employee WHERE salary > 1
		 GROUP BY dept_id HAVING COUNT(*) > 1 ORDER BY dept_id ASC LIMIT 3`))
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"Project", "Limit 3", "Sort", "Having", "HashGroupBy", "Filter", "Scan"}
	last := -1
	for _, frag := range order {
		idx := strings.Index(plan, frag)
		if idx < 0 {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
		if idx < last {
			t.Fatalf("operator %q out of order:\n%s", frag, plan)
		}
		last = idx
	}
}

func TestExplainJoinAndSubquery(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		`SELECT e.name FROM employee AS e JOIN department AS d ON e.dept_id = d.id
		 WHERE e.salary > (SELECT AVG(salary) FROM employee)`))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"NestedLoopJoin", "Scan employee", "Scan department", "Subquery 1:", "Aggregate (global)"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainLeftJoinAndErrors(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		"SELECT d.name FROM department AS d LEFT JOIN employee AS e ON e.dept_id = d.id"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NestedLoopLeftJoin") {
		t.Errorf("left join not shown:\n%s", plan)
	}
	if _, err := eng.Explain(nil); err == nil {
		t.Error("nil statement accepted")
	}
}
