package sqlexec

import (
	"context"
	"strings"
	"testing"

	"nlidb/internal/sqlparse"
)

func TestExplainSimple(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse("SELECT name FROM employee WHERE salary > 100"))
	if err != nil {
		t.Fatal(err)
	}
	// salary > 100 is statically safe, so the planner pushes it into the scan.
	for _, frag := range []string{"Project [name]", "Scan employee (7 rows) [filter: salary > 100]"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainFullPipeline(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		`SELECT dept_id, COUNT(*) FROM employee WHERE salary > 1
		 GROUP BY dept_id HAVING COUNT(*) > 1 ORDER BY dept_id ASC LIMIT 3`))
	if err != nil {
		t.Fatal(err)
	}
	// Physical order, outermost first; the WHERE conjunct is pushed into
	// the scan rather than appearing as a separate Filter.
	order := []string{"Limit 3", "Sort", "Project", "Having", "HashGroupBy", "Scan", "[filter: salary > 1]"}
	last := -1
	for _, frag := range order {
		idx := strings.Index(plan, frag)
		if idx < 0 {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
		if idx < last {
			t.Fatalf("operator %q out of order:\n%s", frag, plan)
		}
		last = idx
	}
}

func TestExplainJoinAndSubquery(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		`SELECT e.name FROM employee AS e JOIN department AS d ON e.dept_id = d.id
		 WHERE e.salary > (SELECT AVG(salary) FROM employee)`))
	if err != nil {
		t.Fatal(err)
	}
	// dept_id = id is an INT/INT equi-pair, so the join runs as a hash
	// join; the sub-query conjunct is unsafe to push and stays a Filter.
	for _, frag := range []string{"HashJoin", "Scan employee", "Scan department",
		"Filter (e.salary > (SELECT AVG(salary) FROM employee))", "Subquery 1:", "Aggregate (global)"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainLeftJoinAndErrors(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		"SELECT d.name FROM department AS d LEFT JOIN employee AS e ON e.dept_id = d.id"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashLeftJoin") {
		t.Errorf("left join not shown:\n%s", plan)
	}
	if _, err := eng.Explain(nil); err == nil {
		t.Error("nil statement accepted")
	}
	if _, err := eng.Explain(sqlparse.MustParse("SELECT x FROM nope")); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestExplainNonEquiJoinFallsBack(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	plan, err := eng.Explain(sqlparse.MustParse(
		"SELECT e.name FROM employee AS e JOIN department AS d ON e.salary > d.budget"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NestedLoopJoin (e.salary > d.budget)") {
		t.Errorf("non-equi join should fall back to nested loop:\n%s", plan)
	}
}

func TestExplainAnalyzeRowCounts(t *testing.T) {
	db := corpDB(t)
	eng := New(db)
	stmt := sqlparse.MustParse(
		"SELECT e.name FROM employee AS e JOIN department AS d ON e.dept_id = d.id WHERE e.salary > 100")
	plan, res, err := eng.ExplainAnalyze(context.Background(), stmt, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatalf("no result rows: %v", res)
	}
	for _, frag := range []string{"HashJoin", "rows="} {
		if !strings.Contains(plan, frag) {
			t.Errorf("analyze output missing %q:\n%s", frag, plan)
		}
	}
	// The join's observed output must appear as a rows= annotation on the
	// HashJoin line.
	for _, line := range strings.Split(plan, "\n") {
		if strings.Contains(line, "HashJoin") && !strings.Contains(line, "rows=") {
			t.Errorf("HashJoin line lacks rows=: %q", line)
		}
	}
}
