package sqlexec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// This file differential-tests the engine against refEval, a deliberately
// naive, independently written evaluator for a restricted single-table
// query space: conjunction/disjunction filters, one optional GROUP BY
// with COUNT(*)/SUM/AVG/MIN/MAX, one optional ORDER BY, and LIMIT. Any
// divergence on randomly generated tables and queries is a bug in one of
// the two — historically always the engine's.

// refQuery is the restricted query shape.
type refQuery struct {
	selectCol string // "" for aggregate-only queries
	agg       string // "", COUNT, SUM, AVG, MIN, MAX
	aggCol    string // "" for COUNT(*)
	conds     []refCond
	disjunct  bool // OR instead of AND
	groupBy   string
	orderBy   string
	desc      bool
	limit     int // -1 none
}

type refCond struct {
	col string
	op  string
	val sqldata.Value
}

// refTable is a simple columnar table.
type refTable struct {
	cols  []string
	types []sqldata.Type
	rows  []sqldata.Row
}

func (t *refTable) colIdx(name string) int {
	for i, c := range t.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// refEval evaluates the query naively.
func refEval(t *refTable, q *refQuery) []sqldata.Row {
	// Filter.
	var kept []sqldata.Row
	for _, r := range t.rows {
		if len(q.conds) == 0 {
			kept = append(kept, r)
			continue
		}
		pass := !q.disjunct
		for _, c := range q.conds {
			v := r[t.colIdx(c.col)]
			m := refMatch(v, c.op, c.val)
			if q.disjunct {
				pass = pass || m
			} else {
				pass = pass && m
			}
		}
		if pass {
			kept = append(kept, r)
		}
	}

	var out []sqldata.Row
	switch {
	case q.agg != "" && q.groupBy == "":
		out = []sqldata.Row{{refAgg(kept, t, q.agg, q.aggCol)}}
	case q.groupBy != "":
		gi := t.colIdx(q.groupBy)
		groups := map[string][]sqldata.Row{}
		var order []string
		for _, r := range kept {
			k := r[gi].Key()
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		}
		for _, k := range order {
			g := groups[k]
			out = append(out, sqldata.Row{g[0][gi], refAgg(g, t, q.agg, q.aggCol)})
		}
	default:
		si := t.colIdx(q.selectCol)
		for _, r := range kept {
			out = append(out, sqldata.Row{r[si]})
		}
	}

	if q.orderBy != "" && q.groupBy == "" && q.agg == "" {
		oi := t.colIdx(q.orderBy)
		si := t.colIdx(q.selectCol)
		type pair struct{ key, val sqldata.Value }
		ps := make([]pair, len(kept))
		for i, r := range kept {
			ps[i] = pair{r[oi], r[si]}
		}
		sort.SliceStable(ps, func(a, b int) bool {
			x, y := ps[a].key, ps[b].key
			if x.Null || y.Null {
				if x.Null && y.Null {
					return false
				}
				return x.Null != q.desc
			}
			c, _ := sqldata.Compare(x, y)
			if q.desc {
				return c > 0
			}
			return c < 0
		})
		out = out[:0]
		for _, p := range ps {
			out = append(out, sqldata.Row{p.val})
		}
	}
	if q.limit >= 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out
}

func refMatch(v sqldata.Value, op string, lit sqldata.Value) bool {
	if v.Null || lit.Null {
		return false
	}
	c, err := sqldata.Compare(v, lit)
	if err != nil {
		return false
	}
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case ">":
		return c > 0
	case "<=":
		return c <= 0
	case ">=":
		return c >= 0
	}
	return false
}

func refAgg(rows []sqldata.Row, t *refTable, agg, col string) sqldata.Value {
	if agg == "COUNT" && col == "" {
		return sqldata.NewInt(int64(len(rows)))
	}
	ci := t.colIdx(col)
	var vals []float64
	allInt := true
	var isum int64
	for _, r := range rows {
		v := r[ci]
		if v.Null {
			continue
		}
		if v.T == sqldata.TypeInt {
			isum += v.Int()
		} else {
			allInt = false
		}
		vals = append(vals, v.Float())
	}
	switch agg {
	case "COUNT":
		return sqldata.NewInt(int64(len(vals)))
	case "SUM":
		if len(vals) == 0 {
			return sqldata.NullValue()
		}
		if allInt {
			return sqldata.NewInt(isum)
		}
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return sqldata.NewFloat(s)
	case "AVG":
		if len(vals) == 0 {
			return sqldata.NullValue()
		}
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return sqldata.NewFloat(s / float64(len(vals)))
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqldata.NullValue()
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if (agg == "MIN" && v < best) || (agg == "MAX" && v > best) {
				best = v
			}
		}
		// Types: reference returns float; compare numerically below.
		return sqldata.NewFloat(best)
	}
	return sqldata.NullValue()
}

// genTable builds a random table. Column 0 is a text category, column 1
// an int, column 2 a float; NULLs appear in columns 1 and 2.
func genTable(r *rand.Rand) *refTable {
	t := &refTable{
		cols:  []string{"cat", "n", "x"},
		types: []sqldata.Type{sqldata.TypeText, sqldata.TypeInt, sqldata.TypeFloat},
	}
	cats := []string{"a", "b", "c", "d"}
	nRows := r.Intn(40)
	for i := 0; i < nRows; i++ {
		row := sqldata.Row{
			sqldata.NewText(cats[r.Intn(len(cats))]),
			sqldata.NewInt(int64(r.Intn(20) - 10)),
			sqldata.NewFloat(float64(r.Intn(100)) / 4),
		}
		if r.Intn(8) == 0 {
			row[1] = sqldata.NullValue()
		}
		if r.Intn(8) == 0 {
			row[2] = sqldata.NullValue()
		}
		t.rows = append(t.rows, row)
	}
	return t
}

// genQuery builds a random query in the restricted space.
func genQuery(r *rand.Rand) *refQuery {
	q := &refQuery{limit: -1}
	nConds := r.Intn(3)
	q.disjunct = r.Intn(2) == 0 && nConds > 1
	ops := []string{"=", "!=", "<", ">", "<=", ">="}
	for i := 0; i < nConds; i++ {
		switch r.Intn(3) {
		case 0:
			q.conds = append(q.conds, refCond{col: "cat", op: ops[r.Intn(2)], val: sqldata.NewText(string(rune('a' + r.Intn(4))))})
		case 1:
			q.conds = append(q.conds, refCond{col: "n", op: ops[r.Intn(len(ops))], val: sqldata.NewInt(int64(r.Intn(20) - 10))})
		default:
			q.conds = append(q.conds, refCond{col: "x", op: ops[r.Intn(len(ops))], val: sqldata.NewFloat(float64(r.Intn(100)) / 4)})
		}
	}
	aggs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
	switch r.Intn(4) {
	case 0: // plain selection
		q.selectCol = []string{"cat", "n", "x"}[r.Intn(3)]
		if r.Intn(2) == 0 {
			q.orderBy = []string{"n", "x"}[r.Intn(2)]
			q.desc = r.Intn(2) == 0
			if r.Intn(2) == 0 {
				q.limit = r.Intn(6)
			}
		}
	case 1: // global aggregate
		q.agg = aggs[r.Intn(len(aggs))]
		if q.agg != "COUNT" || r.Intn(2) == 0 {
			q.aggCol = []string{"n", "x"}[r.Intn(2)]
		}
	default: // group by
		q.groupBy = "cat"
		q.agg = aggs[r.Intn(len(aggs))]
		if q.agg != "COUNT" {
			q.aggCol = []string{"n", "x"}[r.Intn(2)]
		}
	}
	return q
}

// toSQL renders the refQuery as SQL for the engine.
func (q *refQuery) toSQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case q.agg != "" && q.groupBy != "":
		fmt.Fprintf(&sb, "cat, %s(%s)", q.agg, orStar(q.aggCol))
	case q.agg != "":
		fmt.Fprintf(&sb, "%s(%s)", q.agg, orStar(q.aggCol))
	default:
		sb.WriteString(q.selectCol)
	}
	sb.WriteString(" FROM t")
	if len(q.conds) > 0 {
		sb.WriteString(" WHERE ")
		parts := make([]string, len(q.conds))
		for i, c := range q.conds {
			parts[i] = fmt.Sprintf("%s %s %s", c.col, c.op, c.val.SQLLiteral())
		}
		sep := " AND "
		if q.disjunct {
			sep = " OR "
		}
		sb.WriteString(strings.Join(parts, sep))
	}
	if q.groupBy != "" {
		sb.WriteString(" GROUP BY cat")
	}
	if q.orderBy != "" {
		fmt.Fprintf(&sb, " ORDER BY %s", q.orderBy)
		if q.desc {
			sb.WriteString(" DESC")
		}
	}
	if q.limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.limit)
	}
	return sb.String()
}

func orStar(col string) string {
	if col == "" {
		return "*"
	}
	return col
}

// rowsEqual compares engine output with reference output, numerically
// tolerant (the reference computes aggregates in float).
func rowsEqual(a []sqldata.Row, b []sqldata.Row, ordered bool) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r sqldata.Row) string {
		parts := make([]string, len(r))
		for i, v := range r {
			switch {
			case v.Null:
				parts[i] = "NULL"
			case v.T.Numeric():
				parts[i] = fmt.Sprintf("%.6f", v.Float())
			default:
				parts[i] = v.String()
			}
		}
		return strings.Join(parts, "|")
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	if !ordered {
		sort.Strings(ka)
		sort.Strings(kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestPropertyEngineMatchesReference is the differential property test.
func TestPropertyEngineMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := genTable(r)
		q := genQuery(r)

		db := sqldata.NewDatabase("ref")
		tbl, err := db.CreateTable(&sqldata.Schema{Name: "t", Columns: []sqldata.Column{
			{Name: "cat", Type: sqldata.TypeText},
			{Name: "n", Type: sqldata.TypeInt},
			{Name: "x", Type: sqldata.TypeFloat},
		}})
		if err != nil {
			return false
		}
		for _, row := range rt.rows {
			if err := tbl.Insert(row); err != nil {
				return false
			}
		}

		sql := q.toSQL()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Logf("seed %d: generated unparseable SQL %q: %v", seed, sql, err)
			return false
		}
		got, err := New(db).Run(stmt)
		if err != nil {
			t.Logf("seed %d: engine error on %q: %v", seed, sql, err)
			return false
		}
		want := refEval(rt, q)
		// Ties under ORDER BY+LIMIT admit several valid answers; compare
		// unordered in that case and skip the length trap by comparing
		// only when the boundary is tie-free.
		ordered := q.orderBy != "" && q.limit < 0
		if q.orderBy != "" && q.limit >= 0 {
			if hasBoundaryTies(rt, q) {
				return true // both answers are legal; skip
			}
		}
		if !rowsEqual(got.Rows, want, ordered) {
			t.Logf("seed %d: %q\n engine: %v\n reference: %v", seed, sql, got.Rows, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// hasBoundaryTies reports whether the ORDER BY key has duplicate values
// (which make top-k non-unique).
func hasBoundaryTies(t *refTable, q *refQuery) bool {
	oi := t.colIdx(q.orderBy)
	seen := map[string]bool{}
	for _, r := range t.rows {
		k := r[oi].Key()
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}
