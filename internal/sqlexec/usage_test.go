package sqlexec

import (
	"context"
	"strings"
	"testing"

	"nlidb/internal/obs"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// usageDB builds a two-table fixture for usage/trace assertions: 3 depts,
// 9 emps (3 per dept).
func usageDB(t *testing.T) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("usage")
	dept, err := db.CreateTable(&sqldata.Schema{
		Name: "dept",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable(&sqldata.Schema{
		Name: "emp",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "dept_id", Type: sqldata.TypeInt},
			{Name: "salary", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		dept.MustInsert(sqldata.NewInt(i), sqldata.NewText("d"))
	}
	for i := int64(1); i <= 9; i++ {
		emp.MustInsert(sqldata.NewInt(i), sqldata.NewInt(i%3+1), sqldata.NewInt(1000*i))
	}
	return db
}

func usageParse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt
}

func TestRunContextUsageCounts(t *testing.T) {
	eng := New(usageDB(t))
	stmt := usageParse(t,
		"SELECT dept.name, COUNT(emp.id) FROM dept JOIN emp ON dept.id = emp.dept_id GROUP BY dept.name")
	res, u, err := eng.RunContextUsage(context.Background(), stmt, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	// 3 dept base rows charged at scan, plus 1 projected output row
	// (joined-table rows are metered as join rows, not base rows).
	if u.Rows != 3+1 {
		t.Errorf("Usage.Rows = %d, want 4", u.Rows)
	}
	if u.JoinRows != 9 {
		t.Errorf("Usage.JoinRows = %d, want 9", u.JoinRows)
	}
	if u.Subqueries != 0 {
		t.Errorf("Usage.Subqueries = %d, want 0", u.Subqueries)
	}
	if len(res.Rows) != 1 {
		t.Errorf("result rows = %d, want 1", len(res.Rows))
	}
}

func TestExecutorAnnotatesSpan(t *testing.T) {
	eng := New(usageDB(t))
	ctx, trace := obs.NewQueryTrace(context.Background(), "trace me")
	ctx, execSp := obs.StartSpan(ctx, "execute")
	stmt := usageParse(t, "SELECT dept.name FROM dept JOIN emp ON dept.id = emp.dept_id GROUP BY dept.name")
	if _, _, err := eng.RunContextUsage(ctx, stmt, DefaultBudget()); err != nil {
		t.Fatal(err)
	}
	execSp.End()
	trace.Root.End()

	if got := execSp.Count("rows_scanned"); got != 4 {
		t.Errorf("rows_scanned = %d, want 4", got)
	}
	if got := execSp.Count("join_rows"); got != 9 {
		t.Errorf("join_rows = %d, want 9", got)
	}
	if got := execSp.Count("rows_returned"); got != 1 {
		t.Errorf("rows_returned = %d, want 1", got)
	}
	if got := execSp.Attr("budget"); !strings.Contains(got, "rows 4/") {
		t.Errorf("budget attr = %q, want rows 4/<limit>", got)
	}
	for _, name := range []string{"scan dept", "join emp", "group"} {
		if trace.Find(name) == nil {
			t.Errorf("trace missing operator span %q in:\n%s", name, trace)
		}
	}
}

// TestSubquerySpansBounded runs a correlated sub-query and checks the
// trace does not fan out one operator span per outer-row evaluation.
func TestSubquerySpansBounded(t *testing.T) {
	eng := New(usageDB(t))
	ctx, trace := obs.NewQueryTrace(context.Background(), "nested")
	ctx, execSp := obs.StartSpan(ctx, "execute")
	stmt := usageParse(t,
		"SELECT emp.id FROM emp WHERE emp.salary > (SELECT AVG(e2.salary) FROM emp AS e2 WHERE e2.dept_id = emp.dept_id)")
	if _, u, err := eng.RunContextUsage(ctx, stmt, DefaultBudget()); err != nil {
		t.Fatal(err)
	} else if u.Subqueries != 9 {
		t.Errorf("Usage.Subqueries = %d, want 9 (one per outer row)", u.Subqueries)
	}
	execSp.End()
	trace.Root.End()
	// One scan span for the outer table only; sub-query re-evaluations
	// must not append per-iteration children.
	if got := len(execSp.Children()); got != 1 {
		t.Errorf("execute children = %d, want 1 (outer scan only):\n%s", got, trace)
	}
	if got := execSp.Count("subqueries"); got != 9 {
		t.Errorf("subqueries count = %d, want 9", got)
	}
}
