package sqlparse

import (
	"fmt"
	"strings"

	"nlidb/internal/sqldata"
)

// Expr is a SQL expression node. All implementations render themselves back
// to SQL via String.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

func (c *ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal wraps a constant value.
type Literal struct {
	Val sqldata.Value
}

func (l *Literal) exprNode()      {}
func (l *Literal) String() string { return l.Val.SQLLiteral() }

// BinaryExpr applies Op to L and R. Ops: OR AND = != < <= > >= + - * /.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	if b.Op == "AND" || b.Op == "OR" {
		return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
	}
	return fmt.Sprintf("%s %s %s", maybeParen(b.L), b.Op, maybeParen(b.R))
}

func maybeParen(e Expr) string {
	if be, ok := e.(*BinaryExpr); ok && (be.Op == "+" || be.Op == "-" || be.Op == "*" || be.Op == "/") {
		return "(" + be.String() + ")"
	}
	return e.String()
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *UnaryExpr) exprNode() {}
func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "NOT (" + u.X.String() + ")"
	}
	return "-" + u.X.String()
}

// FuncCall is a function application. Star is true for COUNT(*).
type FuncCall struct {
	Name     string // upper-case: COUNT SUM AVG MIN MAX ...
	Distinct bool
	Star     bool
	Args     []Expr
}

func (f *FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// IsAggregate reports whether the function is one of the five aggregates.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// InExpr tests membership of X in a literal list or a sub-query.
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr      // nil when Sub is set
	Sub  *SelectStmt // nil when List is set
}

func (in *InExpr) exprNode() {}
func (in *InExpr) String() string {
	not := ""
	if in.Not {
		not = "NOT "
	}
	if in.Sub != nil {
		return fmt.Sprintf("%s %sIN (%s)", in.X, not, in.Sub)
	}
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.String()
	}
	return fmt.Sprintf("%s %sIN (%s)", in.X, not, strings.Join(items, ", "))
}

// ExistsExpr tests non-emptiness of a sub-query.
type ExistsExpr struct {
	Not bool
	Sub *SelectStmt
}

func (e *ExistsExpr) exprNode() {}
func (e *ExistsExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%sEXISTS (%s)", not, e.Sub)
}

// SubqueryExpr is a scalar sub-query used as a value (e.g. "> (SELECT ...)").
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (s *SubqueryExpr) exprNode()      {}
func (s *SubqueryExpr) String() string { return "(" + s.Sub.String() + ")" }

// BetweenExpr tests Lo <= X <= Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (b *BetweenExpr) exprNode() {}
func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sBETWEEN %s AND %s", b.X, not, b.Lo, b.Hi)
}

// LikeExpr performs SQL LIKE matching with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern string
	Not     bool
}

func (l *LikeExpr) exprNode() {}
func (l *LikeExpr) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sLIKE '%s'", l.X, not, strings.ReplaceAll(l.Pattern, "'", "''"))
}

// IsNullExpr tests X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (i *IsNullExpr) exprNode() {}
func (i *IsNullExpr) String() string {
	if i.Not {
		return i.X.String() + " IS NOT NULL"
	}
	return i.X.String() + " IS NULL"
}

// SelectItem is one projection: either a star (optionally table-qualified)
// or an expression with an optional alias.
type SelectItem struct {
	Star      bool
	StarTable string // qualifier for "t.*"; empty for bare "*"
	Expr      Expr
	Alias     string
}

func (s SelectItem) String() string {
	if s.Star {
		if s.StarTable != "" {
			return s.StarTable + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// JoinType distinguishes INNER from LEFT OUTER joins.
type JoinType int

const (
	// JoinInner keeps only matching row pairs.
	JoinInner JoinType = iota
	// JoinLeft keeps all left rows, NULL-padding unmatched right sides.
	JoinLeft
)

func (j JoinType) String() string {
	if j == JoinLeft {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffName returns the name the table is addressable by in the query scope.
func (t TableRef) EffName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// Join is one JOIN step in a FROM chain.
type Join struct {
	Type  JoinType
	Table TableRef
	On    Expr
}

// FromClause is a chain: the First table followed by zero or more Joins.
type FromClause struct {
	First TableRef
	Joins []Join
}

func (f *FromClause) String() string {
	var sb strings.Builder
	sb.WriteString(f.First.String())
	for _, j := range f.Joins {
		fmt.Fprintf(&sb, " %s %s ON %s", j.Type, j.Table, j.On)
	}
	return sb.String()
}

// Tables returns every table reference in the clause, First included.
func (f *FromClause) Tables() []TableRef {
	out := []TableRef{f.First}
	for _, j := range f.Joins {
		out = append(out, j.Table)
	}
	return out
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// SelectStmt is a full SELECT statement, possibly nested inside another.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *FromClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	// Limit is the row cap; negative means no LIMIT.
	Limit int
}

// NewSelect returns a SelectStmt with no LIMIT.
func NewSelect() *SelectStmt { return &SelectStmt{Limit: -1} }

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	sb.WriteString(strings.Join(items, ", "))
	if s.From != nil {
		sb.WriteString(" FROM ")
		sb.WriteString(s.From.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.String()
		}
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(keys, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.String()
		}
		sb.WriteString(" ORDER BY ")
		sb.WriteString(strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// WalkExprs calls fn for every expression in the statement (items, where,
// group by, having, order by, and join conditions), without descending into
// sub-selects. Useful for analyses such as aggregate detection.
func (s *SelectStmt) WalkExprs(fn func(Expr)) {
	var walk func(e Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch t := e.(type) {
		case *BinaryExpr:
			walk(t.L)
			walk(t.R)
		case *UnaryExpr:
			walk(t.X)
		case *FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case *InExpr:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *BetweenExpr:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *LikeExpr:
			walk(t.X)
		case *IsNullExpr:
			walk(t.X)
		}
	}
	for _, it := range s.Items {
		if !it.Star {
			walk(it.Expr)
		}
	}
	if s.From != nil {
		for _, j := range s.From.Joins {
			walk(j.On)
		}
	}
	walk(s.Where)
	for _, g := range s.GroupBy {
		walk(g)
	}
	walk(s.Having)
	for _, o := range s.OrderBy {
		walk(o.Expr)
	}
}

// Subqueries returns all directly nested sub-selects (IN, EXISTS, scalar).
func (s *SelectStmt) Subqueries() []*SelectStmt {
	var subs []*SelectStmt
	s.WalkExprs(func(e Expr) {
		switch t := e.(type) {
		case *InExpr:
			if t.Sub != nil {
				subs = append(subs, t.Sub)
			}
		case *ExistsExpr:
			subs = append(subs, t.Sub)
		case *SubqueryExpr:
			subs = append(subs, t.Sub)
		}
	})
	return subs
}

// HasAggregate reports whether any select item, HAVING, or ORDER BY uses an
// aggregate function (not counting sub-queries).
func (s *SelectStmt) HasAggregate() bool {
	found := false
	s.WalkExprs(func(e Expr) {
		if f, ok := e.(*FuncCall); ok && f.IsAggregate() {
			found = true
		}
	})
	return found
}
