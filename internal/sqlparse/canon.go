package sqlparse

import (
	"sort"
	"strings"
)

// Canonical returns a normalized deep copy of the statement suitable for
// exact-match comparison between a predicted and a gold query, in the style
// of WikiSQL's order-insensitive matching:
//
//   - identifiers and aliases are lower-cased,
//   - AND/OR conjunct chains are flattened and sorted,
//   - IN lists are sorted,
//   - comparisons with the literal on the left are flipped (5 < x → x > 5),
//   - sub-queries are canonicalized recursively.
//
// The input is not modified.
func Canonical(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := NewSelect()
	out.Distinct = s.Distinct
	out.Limit = s.Limit
	for _, it := range s.Items {
		ci := SelectItem{Star: it.Star, StarTable: strings.ToLower(it.StarTable), Alias: strings.ToLower(it.Alias)}
		if !it.Star {
			ci.Expr = canonExpr(it.Expr)
		}
		out.Items = append(out.Items, ci)
	}
	if s.From != nil {
		f := &FromClause{First: canonRef(s.From.First)}
		for _, j := range s.From.Joins {
			f.Joins = append(f.Joins, Join{Type: j.Type, Table: canonRef(j.Table), On: canonExpr(j.On)})
		}
		out.From = f
	}
	out.Where = canonExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, canonExpr(g))
	}
	out.Having = canonExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: canonExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

// EqualCanonical reports whether two statements are identical after
// canonicalization. This is the framework's "exact match" metric.
func EqualCanonical(a, b *SelectStmt) bool {
	if a == nil || b == nil {
		return a == b
	}
	return Canonical(a).String() == Canonical(b).String()
}

func canonRef(r TableRef) TableRef {
	return TableRef{Name: strings.ToLower(r.Name), Alias: strings.ToLower(r.Alias)}
}

// flip maps a comparison operator to its mirror.
var flip = map[string]string{"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}

func canonExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *ColumnRef:
		return &ColumnRef{Table: strings.ToLower(t.Table), Column: strings.ToLower(t.Column)}
	case *Literal:
		return &Literal{Val: t.Val}
	case *BinaryExpr:
		if t.Op == "AND" || t.Op == "OR" {
			terms := flatten(t.Op, t)
			canon := make([]Expr, len(terms))
			for i, x := range terms {
				canon[i] = canonExpr(x)
			}
			sort.Slice(canon, func(i, j int) bool { return canon[i].String() < canon[j].String() })
			res := canon[0]
			for _, x := range canon[1:] {
				res = &BinaryExpr{Op: t.Op, L: res, R: x}
			}
			return res
		}
		l, r := canonExpr(t.L), canonExpr(t.R)
		if m, ok := flip[t.Op]; ok {
			_, lLit := l.(*Literal)
			_, rLit := r.(*Literal)
			if lLit && !rLit {
				return &BinaryExpr{Op: m, L: r, R: l}
			}
		}
		return &BinaryExpr{Op: t.Op, L: l, R: r}
	case *UnaryExpr:
		return &UnaryExpr{Op: t.Op, X: canonExpr(t.X)}
	case *FuncCall:
		f := &FuncCall{Name: strings.ToUpper(t.Name), Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			f.Args = append(f.Args, canonExpr(a))
		}
		return f
	case *InExpr:
		in := &InExpr{X: canonExpr(t.X), Not: t.Not}
		if t.Sub != nil {
			in.Sub = Canonical(t.Sub)
			return in
		}
		for _, x := range t.List {
			in.List = append(in.List, canonExpr(x))
		}
		sort.Slice(in.List, func(i, j int) bool { return in.List[i].String() < in.List[j].String() })
		return in
	case *ExistsExpr:
		return &ExistsExpr{Not: t.Not, Sub: Canonical(t.Sub)}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: Canonical(t.Sub)}
	case *BetweenExpr:
		return &BetweenExpr{X: canonExpr(t.X), Lo: canonExpr(t.Lo), Hi: canonExpr(t.Hi), Not: t.Not}
	case *LikeExpr:
		return &LikeExpr{X: canonExpr(t.X), Pattern: t.Pattern, Not: t.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: canonExpr(t.X), Not: t.Not}
	default:
		return e
	}
}

// flatten collects the leaves of a left- or right-nested AND/OR chain.
func flatten(op string, e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == op {
		return append(flatten(op, b.L), flatten(op, b.R)...)
	}
	return []Expr{e}
}
