package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever bytes arrive — it returns an
// error or a statement that prints and re-parses.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		stmt, err := Parse(s)
		if err != nil {
			return true
		}
		// Valid parses must round-trip.
		_, err = Parse(stmt.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FuzzParse is the native fuzz target behind the property tests above:
// whatever bytes arrive, Parse returns an error or a statement whose
// printed form re-parses. The seed corpus covers the gold-SQL shapes the
// benchdata generators emit for all four complexity classes (selection,
// aggregation, join, nested), so mutation starts from realistic inputs.
// Run with: go test -run=^$ -fuzz=FuzzParse ./internal/sqlparse
func FuzzParse(f *testing.F) {
	seeds := []string{
		// benchdata gold shapes, simple → nested.
		"SELECT name FROM customer WHERE city = 'Berlin'",
		"SELECT * FROM orders WHERE total > 100.5 AND status != 'done'",
		"SELECT city, COUNT(*) FROM customer GROUP BY city ORDER BY COUNT(*) DESC LIMIT 3",
		"SELECT AVG(total) FROM orders WHERE placed BETWEEN '2018-01-01' AND '2019-12-31'",
		"SELECT customer.name, SUM(orders.total) FROM customer JOIN orders ON customer.id = orders.customer_id GROUP BY customer.name",
		"SELECT p.name FROM product AS p LEFT JOIN category AS c ON p.category_id = c.id WHERE c.name IS NOT NULL",
		"SELECT name FROM customer WHERE id IN (SELECT customer_id FROM orders WHERE total > 500)",
		"SELECT name FROM customer WHERE NOT EXISTS (SELECT id FROM orders WHERE orders.customer_id = customer.id)",
		"SELECT city FROM customer GROUP BY city HAVING COUNT(*) > (SELECT COUNT(*) FROM orders) ORDER BY city",
		"SELECT DISTINCT LOWER(name) FROM customer WHERE name LIKE 'a%' OR credit BETWEEN 1 AND 2;",
		// degenerate shapes that historically stress parsers.
		"SELECT", "SELECT ((((1", "SELECT * FROM t WHERE a = 'unterminated",
		"SELECT -1.e FROM t", "SELECT a FROM t ORDER BY", "",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		stmt, err := Parse(s)
		if err != nil {
			return
		}
		// Valid parses must print and re-parse.
		if _, err := Parse(stmt.String()); err != nil {
			t.Fatalf("accepted %q but print %q does not re-parse: %v", s, stmt.String(), err)
		}
	})
}

// Property: token-soup inputs built from SQL vocabulary never panic either
// (they stress the parser far more than random unicode).
func TestPropertyTokenSoupNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"JOIN", "LEFT", "ON", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN",
		"LIKE", "IS", "NULL", "DISTINCT", "COUNT", "AVG", "(", ")", ",", ".",
		"*", "=", "<", ">", "<=", "!=", "'x'", "42", "3.14", "t", "a", "b", "AS",
	}
	f := func(seed int64) (ok bool) {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(24)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[r.Intn(len(vocab))]
		}
		s := strings.Join(parts, " ")
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic on %q: %v", s, rec)
				ok = false
			}
		}()
		stmt, err := Parse(s)
		if err == nil {
			if _, err2 := Parse(stmt.String()); err2 != nil {
				t.Logf("accepted %q but print does not re-parse: %s", s, stmt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
