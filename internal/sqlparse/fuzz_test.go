package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever bytes arrive — it returns an
// error or a statement that prints and re-parses.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		stmt, err := Parse(s)
		if err != nil {
			return true
		}
		// Valid parses must round-trip.
		_, err = Parse(stmt.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: token-soup inputs built from SQL vocabulary never panic either
// (they stress the parser far more than random unicode).
func TestPropertyTokenSoupNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"JOIN", "LEFT", "ON", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN",
		"LIKE", "IS", "NULL", "DISTINCT", "COUNT", "AVG", "(", ")", ",", ".",
		"*", "=", "<", ">", "<=", "!=", "'x'", "42", "3.14", "t", "a", "b", "AS",
	}
	f := func(seed int64) (ok bool) {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(24)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[r.Intn(len(vocab))]
		}
		s := strings.Join(parts, " ")
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic on %q: %v", s, rec)
				ok = false
			}
		}()
		stmt, err := Parse(s)
		if err == nil {
			if _, err2 := Parse(stmt.String()); err2 != nil {
				t.Logf("accepted %q but print does not re-parse: %s", s, stmt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
