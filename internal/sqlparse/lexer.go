// Package sqlparse implements a lexer, recursive-descent parser, AST,
// pretty-printer, and canonicalizer for the SQL subset the engine executes:
//
//	SELECT [DISTINCT] items FROM t [AS a] [(INNER|LEFT) JOIN u ON ...]...
//	[WHERE expr] [GROUP BY exprs] [HAVING expr]
//	[ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
// with aggregates (COUNT, SUM, AVG, MIN, MAX), arithmetic, LIKE, BETWEEN,
// IN (list or sub-query), EXISTS sub-queries, scalar sub-queries, and
// IS [NOT] NULL. This subset covers all four query-complexity classes of
// the SIGMOD 2020 tutorial (Section 3), including nested BI queries.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier (table, column, alias, function name).
	TokIdent
	// TokKeyword is a reserved word (SELECT, FROM, ...), upper-cased.
	TokKeyword
	// TokNumber is an integer or float literal.
	TokNumber
	// TokString is a single-quoted string literal (quotes removed,
	// doubled quotes unescaped).
	TokString
	// TokOp is an operator: = != <> < <= > >= + - * / , ( ) . ;
	TokOp
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

// keywords is the reserved-word set. Identifiers matching these
// (case-insensitively) lex as TokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"DISTINCT": true, "TRUE": true, "FALSE": true, "ALL": true, "ANY": true,
	"UNION": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true,
}

// Lex splits a SQL string into tokens. It returns an error for unterminated
// strings or characters outside the supported alphabet.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch {
			case two == "!=" || two == "<>" || two == "<=" || two == ">=":
				op := two
				if op == "<>" {
					op = "!="
				}
				toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
				i += 2
			case strings.ContainsRune("=<>+-*/,().;", rune(c)):
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
