package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"nlidb/internal/sqldata"
)

// Parse parses a single SELECT statement (optionally ';'-terminated) and
// returns its AST.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := Lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("trailing input starting at %q", p.peek())
	}
	return stmt, nil
}

// MustParse parses or panics; for tests and statically known queries.
func MustParse(sql string) *SelectStmt {
	s, err := Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("sqlparse: MustParse(%q): %v", sql, err))
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches kind and (case-insensitive)
// text; it reports whether it did.
func (p *parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && strings.EqualFold(t.Text, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errorf("expected %q, found %q", text, p.peek())
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := NewSelect()
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptKeyword("ALL") {
		stmt.Distinct = false
	}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("LIMIT expects a number, found %q", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		p.next()
		stmt.Limit = n
	}

	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*" form: ident '.' '*'
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", t)
		}
		item.Alias = p.next().Text
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return TableRef{}, p.errorf("expected table name, found %q", t)
	}
	ref := TableRef{Name: p.next().Text}
	if p.acceptKeyword("AS") {
		a := p.peek()
		if a.Kind != TokIdent {
			return TableRef{}, p.errorf("expected alias after AS, found %q", a)
		}
		ref.Alias = p.next().Text
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *parser) parseFrom() (*FromClause, error) {
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	from := &FromClause{First: first}
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = JoinInner
		case p.acceptKeyword("INNER"):
			if err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.accept(TokOp, ","):
			// Comma join desugars to INNER JOIN ON TRUE; the WHERE clause
			// carries the join predicate, as in pre-ANSI SQL.
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			from.Joins = append(from.Joins, Join{
				Type:  JoinInner,
				Table: ref,
				On:    &Literal{Val: sqldata.NewBool(true)},
			})
			continue
		default:
			return from, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		from.Joins = append(from.Joins, Join{Type: jt, Table: ref, On: on})
	}
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := additive ( cmpOp additive
//	            | [NOT] IN (...) | [NOT] BETWEEN x AND y
//	            | [NOT] LIKE 'pat' | IS [NOT] NULL )?
//	additive := multiplicative (('+'|'-') multiplicative)*
//	multiplicative := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
//	primary := literal | funcCall | columnRef | '(' expr ')' | '(' SELECT ... ')' | EXISTS (...)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	not := p.acceptKeyword("NOT")
	switch {
	case p.acceptKeyword("IN"):
		return p.parseInTail(l, not)
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		t := p.peek()
		if t.Kind != TokString {
			return nil, p.errorf("LIKE expects a string pattern, found %q", t)
		}
		p.next()
		return &LikeExpr{X: l, Pattern: t.Text, Not: not}, nil
	case not:
		return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
	}

	if p.acceptKeyword("IS") {
		isNot := p.acceptKeyword("NOT")
		if err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: isNot}, nil
	}

	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, not bool) (Expr, error) {
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, Not: not, Sub: sub}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return &InExpr{X: l, Not: not, List: list}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals so "-3" is a literal, which
		// keeps canonical forms stable.
		if lit, ok := x.(*Literal); ok && !lit.Val.Null {
			switch lit.Val.T {
			case sqldata.TypeInt:
				return &Literal{Val: sqldata.NewInt(-lit.Val.Int())}, nil
			case sqldata.TypeFloat:
				return &Literal{Val: sqldata.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad float literal %q", t.Text)
			}
			return &Literal{Val: sqldata.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad int literal %q", t.Text)
		}
		return &Literal{Val: sqldata.NewInt(n)}, nil

	case TokString:
		p.next()
		return &Literal{Val: sqldata.NewText(t.Text)}, nil

	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Val: sqldata.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: sqldata.NewBool(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: sqldata.NullValue()}, nil
		case "EXISTS":
			p.next()
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.Text)

	case TokIdent:
		p.next()
		// Function call?
		if p.accept(TokOp, "(") {
			return p.parseFuncTail(strings.ToUpper(t.Text))
		}
		// Qualified column?
		if p.accept(TokOp, ".") {
			c := p.peek()
			if c.Kind != TokIdent {
				return nil, p.errorf("expected column after %q., found %q", t.Text, c)
			}
			p.next()
			return &ColumnRef{Table: t.Text, Column: c.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil

	case TokOp:
		if t.Text == "(" {
			p.next()
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t)
}

func (p *parser) parseFuncTail(name string) (Expr, error) {
	f := &FuncCall{Name: name}
	if p.accept(TokOp, "*") {
		f.Star = true
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.accept(TokOp, ")") {
		return f, nil
	}
	f.Distinct = p.acceptKeyword("DISTINCT")
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, a)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return f, nil
}
