package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nlidb/internal/sqldata"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x >= 10.5 AND name = 'O''Brien';")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if kinds[0] != TokKeyword || texts[0] != "SELECT" {
		t.Errorf("first token = %v %q", kinds[0], texts[0])
	}
	found := false
	for i, tok := range toks {
		if tok.Kind == TokString {
			found = true
			if tok.Text != "O'Brien" {
				t.Errorf("string literal = %q", tok.Text)
			}
			_ = i
		}
	}
	if !found {
		t.Error("no string token lexed")
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("SELECT a # b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("a <> b != c <= d >= e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"!=", "!=", "<=", ">="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %q, want %q", i, ops[i], want[i])
		}
	}
}

// roundTrips asserts parse → print → parse reaches a fixed point.
func roundTrips(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	s1, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	printed := s1.String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q (from %q): %v", printed, sql, err)
	}
	if s2.String() != printed {
		t.Errorf("print not a fixed point:\n  first  %s\n  second %s", printed, s2.String())
	}
	return s1
}

func TestParseSimpleSelect(t *testing.T) {
	s := roundTrips(t, "select name, salary from employee where salary > 50000")
	if len(s.Items) != 2 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.From.First.Name != "employee" {
		t.Errorf("from = %q", s.From.First.Name)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("where = %#v", s.Where)
	}
}

func TestParseStar(t *testing.T) {
	s := roundTrips(t, "SELECT * FROM t")
	if !s.Items[0].Star {
		t.Error("star not parsed")
	}
	s = roundTrips(t, "SELECT e.* FROM employee AS e")
	if !s.Items[0].Star || s.Items[0].StarTable != "e" {
		t.Errorf("qualified star = %+v", s.Items[0])
	}
}

func TestParseAggregation(t *testing.T) {
	s := roundTrips(t, "SELECT dept, COUNT(*), AVG(salary) AS avg_sal FROM employee GROUP BY dept HAVING COUNT(*) > 3 ORDER BY avg_sal DESC LIMIT 5")
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 1 || s.Limit != 5 {
		t.Fatalf("clauses not parsed: %s", s)
	}
	if !s.OrderBy[0].Desc {
		t.Error("DESC not parsed")
	}
	f, ok := s.Items[1].Expr.(*FuncCall)
	if !ok || !f.Star || f.Name != "COUNT" {
		t.Errorf("COUNT(*) = %#v", s.Items[1].Expr)
	}
	if !s.HasAggregate() {
		t.Error("HasAggregate = false")
	}
}

func TestParseJoins(t *testing.T) {
	s := roundTrips(t, "SELECT e.name, d.name FROM employee AS e JOIN department AS d ON e.dept_id = d.id LEFT JOIN city ON d.city_id = city.id WHERE city.name = 'Berlin'")
	if len(s.From.Joins) != 2 {
		t.Fatalf("joins = %d", len(s.From.Joins))
	}
	if s.From.Joins[0].Type != JoinInner || s.From.Joins[1].Type != JoinLeft {
		t.Errorf("join types = %v %v", s.From.Joins[0].Type, s.From.Joins[1].Type)
	}
	if got := len(s.From.Tables()); got != 3 {
		t.Errorf("Tables() = %d", got)
	}
}

func TestParseCommaJoin(t *testing.T) {
	s, err := Parse("SELECT a.x FROM a, b WHERE a.id = b.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.From.Joins) != 1 {
		t.Fatalf("comma join not desugared: %s", s)
	}
	lit, ok := s.From.Joins[0].On.(*Literal)
	if !ok || lit.Val.T != sqldata.TypeBool || !lit.Val.Bool() {
		t.Errorf("comma join ON = %v", s.From.Joins[0].On)
	}
}

func TestParseNested(t *testing.T) {
	sql := "SELECT name FROM employee WHERE salary > (SELECT AVG(salary) FROM employee) AND dept_id IN (SELECT id FROM department WHERE budget > 100000)"
	s := roundTrips(t, sql)
	subs := s.Subqueries()
	if len(subs) != 2 {
		t.Fatalf("subqueries = %d", len(subs))
	}
}

func TestParseExists(t *testing.T) {
	s := roundTrips(t, "SELECT d.name FROM department AS d WHERE NOT (EXISTS (SELECT id FROM employee WHERE employee.dept_id = d.id))")
	if len(s.Subqueries()) != 1 {
		t.Fatalf("exists subquery missing: %s", s)
	}
}

func TestParsePredicates(t *testing.T) {
	s := roundTrips(t, "SELECT x FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'foo%' AND c IS NOT NULL AND d IN (1, 2, 3) AND e NOT IN (4) AND f NOT BETWEEN 0 AND 1 AND g NOT LIKE 'z%' AND h IS NULL")
	terms := flatten("AND", s.Where)
	if len(terms) != 8 {
		t.Fatalf("conjuncts = %d: %s", len(terms), s.Where)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := roundTrips(t, "SELECT a + b * c - d / 2 FROM t")
	// a + (b*c) - (d/2): top is "-", left is "+".
	top, ok := s.Items[0].Expr.(*BinaryExpr)
	if !ok || top.Op != "-" {
		t.Fatalf("top = %#v", s.Items[0].Expr)
	}
	l, ok := top.L.(*BinaryExpr)
	if !ok || l.Op != "+" {
		t.Fatalf("left = %#v", top.L)
	}
	if r, ok := l.R.(*BinaryExpr); !ok || r.Op != "*" {
		t.Fatalf("b*c = %#v", l.R)
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	s, err := Parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := s.Where.(*BinaryExpr)
	if !ok || top.Op != "OR" {
		t.Fatalf("OR should bind loosest: %s", s.Where)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s, err := Parse("SELECT x FROM t WHERE a = -5 AND b = -2.5")
	if err != nil {
		t.Fatal(err)
	}
	terms := flatten("AND", s.Where)
	lit := terms[0].(*BinaryExpr).R.(*Literal)
	if lit.Val.Int() != -5 {
		t.Errorf("folded literal = %v", lit.Val)
	}
}

func TestParseDistinct(t *testing.T) {
	s := roundTrips(t, "SELECT DISTINCT city FROM customer")
	if !s.Distinct {
		t.Error("DISTINCT not parsed")
	}
	s = roundTrips(t, "SELECT COUNT(DISTINCT city) FROM customer")
	f := s.Items[0].Expr.(*FuncCall)
	if !f.Distinct {
		t.Error("COUNT(DISTINCT ...) not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t extra garbage tokens ON x",
		"SELECT a FROM t JOIN u",         // missing ON
		"SELECT a FROM t WHERE a IN (",   // unterminated
		"SELECT a FROM t WHERE a LIKE 5", // LIKE needs string
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted", sql)
		}
	}
}

func TestCanonicalSortsConjuncts(t *testing.T) {
	a := MustParse("SELECT x FROM t WHERE b = 2 AND a = 1")
	b := MustParse("SELECT x FROM t WHERE a = 1 AND b = 2")
	if !EqualCanonical(a, b) {
		t.Errorf("conjunct order should not matter:\n%s\n%s", Canonical(a), Canonical(b))
	}
}

func TestCanonicalFlipsLiteralComparison(t *testing.T) {
	a := MustParse("SELECT x FROM t WHERE 5 < a")
	b := MustParse("SELECT x FROM t WHERE a > 5")
	if !EqualCanonical(a, b) {
		t.Errorf("flipped comparison should match:\n%s\n%s", Canonical(a), Canonical(b))
	}
}

func TestCanonicalCaseInsensitive(t *testing.T) {
	a := MustParse("SELECT Name FROM Employee WHERE Salary > 10")
	b := MustParse("select name from employee where salary > 10")
	if !EqualCanonical(a, b) {
		t.Error("identifier case should not matter")
	}
}

func TestCanonicalInListSorted(t *testing.T) {
	a := MustParse("SELECT x FROM t WHERE a IN (3, 1, 2)")
	b := MustParse("SELECT x FROM t WHERE a IN (1, 2, 3)")
	if !EqualCanonical(a, b) {
		t.Error("IN list order should not matter")
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"SELECT x FROM t WHERE a = 1", "SELECT x FROM t WHERE a = 2"},
		{"SELECT x FROM t", "SELECT DISTINCT x FROM t"},
		{"SELECT x FROM t ORDER BY x ASC", "SELECT x FROM t ORDER BY x DESC"},
		{"SELECT x FROM t WHERE a = 1 AND b = 2", "SELECT x FROM t WHERE a = 1 OR b = 2"},
		{"SELECT x FROM t LIMIT 5", "SELECT x FROM t LIMIT 6"},
		{"SELECT MIN(x) FROM t", "SELECT MAX(x) FROM t"},
	}
	for _, p := range pairs {
		if EqualCanonical(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("%q and %q should differ", p[0], p[1])
		}
	}
}

func TestCanonicalDoesNotMutate(t *testing.T) {
	s := MustParse("SELECT X FROM T WHERE B = 2 AND A = 1")
	before := s.String()
	_ = Canonical(s)
	if s.String() != before {
		t.Error("Canonical mutated its input")
	}
}

// randSQL generates a random valid SQL string from a small grammar.
func randSQL(r *rand.Rand) string {
	cols := []string{"a", "b", "c", "price", "qty"}
	tbls := []string{"t", "orders", "items"}
	col := func() string { return cols[r.Intn(len(cols))] }
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if r.Intn(4) == 0 {
		sb.WriteString("DISTINCT ")
	}
	switch r.Intn(3) {
	case 0:
		sb.WriteString("*")
	case 1:
		sb.WriteString(col())
	default:
		aggs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
		sb.WriteString(aggs[r.Intn(len(aggs))] + "(" + col() + ")")
	}
	sb.WriteString(" FROM " + tbls[r.Intn(len(tbls))])
	if r.Intn(2) == 0 {
		sb.WriteString(" WHERE ")
		nconds := 1 + r.Intn(3)
		for i := 0; i < nconds; i++ {
			if i > 0 {
				if r.Intn(2) == 0 {
					sb.WriteString(" AND ")
				} else {
					sb.WriteString(" OR ")
				}
			}
			ops := []string{"=", "!=", "<", ">", "<=", ">="}
			switch r.Intn(3) {
			case 0:
				sb.WriteString(col() + " " + ops[r.Intn(len(ops))] + " " + string(rune('0'+r.Intn(10))))
			case 1:
				sb.WriteString(col() + " LIKE 'x%'")
			default:
				sb.WriteString(col() + " BETWEEN 1 AND 9")
			}
		}
	}
	if r.Intn(3) == 0 {
		sb.WriteString(" GROUP BY " + col())
	}
	if r.Intn(3) == 0 {
		sb.WriteString(" ORDER BY " + col())
		if r.Intn(2) == 0 {
			sb.WriteString(" DESC")
		}
	}
	if r.Intn(3) == 0 {
		sb.WriteString(" LIMIT " + string(rune('1'+r.Intn(9))))
	}
	return sb.String()
}

// Property: for any generated SQL, parse→print→parse→print is a fixed point
// and canonicalization is idempotent.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sql := randSQL(r)
		s1, err := Parse(sql)
		if err != nil {
			t.Logf("generated invalid SQL %q: %v", sql, err)
			return false
		}
		s2, err := Parse(s1.String())
		if err != nil {
			return false
		}
		if s1.String() != s2.String() {
			return false
		}
		c1 := Canonical(s1)
		c2 := Canonical(c1)
		return c1.String() == c2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
