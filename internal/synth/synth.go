// Package synth provides (1) a paraphrase engine that rewrites questions
// through composable linguistic operators — the mechanism behind the
// robustness experiments (the tutorial: entity-based systems are "highly
// sensitive to variations and paraphrasing", ML-based ones are "robust to
// NL variations") — and (2) a DBPal-style synthetic training-data
// generator that mass-produces NL/SQL pairs from schema templates with
// paraphrase augmentation, avoiding manual labelling.
package synth

import (
	"math/rand"
	"strings"

	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
)

// Op is one paraphrase operator.
type Op int

const (
	// OpSynonym substitutes a content word with a lexicon synonym.
	OpSynonym Op = iota
	// OpPrefix prepends conversational padding ("could you please…").
	OpPrefix
	// OpFiller inserts a filler word mid-sentence.
	OpFiller
	// OpTypo transposes two adjacent letters of a long content word.
	OpTypo
	// OpCompSwap replaces a comparison phrase with a rarer equivalent
	// ("over" → "exceeding") that fixed cue lists don't know.
	OpCompSwap
	// OpDropDet removes determiners.
	OpDropDet
	// OpReorder moves a trailing "with …" clause to the front, breaking
	// position-sensitive heuristics while leaving bag-of-n-gram features
	// almost intact.
	OpReorder
	numOps
)

var prefixes = []string{
	"could you please show me",
	"i would like to know",
	"can you tell me",
	"please find",
	"i need",
}

var fillers = []string{"really", "currently", "actually", "overall", "right now"}

// compSwaps maps known comparison phrasings to rarer equivalents.
var compSwaps = [][2]string{
	{" over ", " exceeding "},
	{" greater than ", " beyond "},
	{" under ", " beneath "},
	{" below ", " short of "},
	{" more than ", " upwards of "},
}

// Paraphrase applies `strength` randomly chosen distinct operators to the
// question, deterministically under r. Strength 0 returns the input.
func Paraphrase(q string, strength int, lex *lexicon.Lexicon, r *rand.Rand) string {
	if strength <= 0 {
		return q
	}
	ops := r.Perm(int(numOps))
	applied := 0
	for _, oi := range ops {
		if applied >= strength {
			break
		}
		out := apply(Op(oi), q, lex, r)
		if out != q {
			q = out
			applied++
		}
	}
	return q
}

func apply(op Op, q string, lex *lexicon.Lexicon, r *rand.Rand) string {
	switch op {
	case OpSynonym:
		return synonymSwap(q, lex, r)
	case OpPrefix:
		return prefixes[r.Intn(len(prefixes))] + " " + q
	case OpFiller:
		words := strings.Fields(q)
		if len(words) < 2 {
			return q
		}
		pos := 1 + r.Intn(len(words)-1)
		f := fillers[r.Intn(len(fillers))]
		words = append(words[:pos], append([]string{f}, words[pos:]...)...)
		return strings.Join(words, " ")
	case OpTypo:
		return typo(q, r)
	case OpCompSwap:
		padded := " " + q + " "
		idxs := r.Perm(len(compSwaps))
		for _, i := range idxs {
			if strings.Contains(padded, compSwaps[i][0]) {
				padded = strings.Replace(padded, compSwaps[i][0], compSwaps[i][1], 1)
				return strings.TrimSpace(padded)
			}
		}
		return q
	case OpDropDet:
		words := strings.Fields(q)
		var out []string
		dropped := false
		for _, w := range words {
			if !dropped && (w == "the" || w == "a" || w == "an") {
				dropped = true
				continue
			}
			out = append(out, w)
		}
		return strings.Join(out, " ")
	case OpReorder:
		if i := strings.Index(q, " with "); i > 0 {
			return q[i+1:] + " " + q[:i]
		}
		return q
	}
	return q
}

// synonymSwap replaces one random content word that has a lexicon synonym.
func synonymSwap(q string, lex *lexicon.Lexicon, r *rand.Rand) string {
	if lex == nil {
		return q
	}
	words := strings.Fields(q)
	idxs := r.Perm(len(words))
	for _, i := range idxs {
		w := strings.ToLower(words[i])
		if nlp.Tokenize(w)[0].IsStop() {
			continue
		}
		syns := lex.Synonyms(w)
		var alts []string
		for _, s := range syns {
			if s != nlp.Stem(w) {
				alts = append(alts, s)
			}
		}
		if len(alts) == 0 {
			continue
		}
		words[i] = alts[r.Intn(len(alts))]
		return strings.Join(words, " ")
	}
	return q
}

// typo transposes two adjacent letters in one content word of length ≥ 5.
func typo(q string, r *rand.Rand) string {
	words := strings.Fields(q)
	idxs := r.Perm(len(words))
	for _, i := range idxs {
		w := words[i]
		if len(w) < 5 || nlp.Tokenize(strings.ToLower(w))[0].Kind != nlp.KindWord {
			continue
		}
		p := 1 + r.Intn(len(w)-2)
		b := []byte(w)
		b[p], b[p+1] = b[p+1], b[p]
		words[i] = string(b)
		return strings.Join(words, " ")
	}
	return q
}

// TrainingSet synthesizes n single-table training pairs over the domain's
// main table, DBPal-style: template-generated questions, each optionally
// duplicated with `augment` paraphrased variants (the gold SQL is shared).
func TrainingSet(d *benchdata.Domain, n, augment int, lex *lexicon.Lexicon, seed int64) *dataset.Set {
	base := benchdata.WikiSQLStyle(d, n, seed)
	if augment <= 0 {
		base.Name = "synth-" + d.Name
		return base
	}
	r := rand.New(rand.NewSource(seed + 1000))
	out := &dataset.Set{Name: "synth-" + d.Name, DB: d.DB}
	for _, p := range base.Pairs {
		out.Pairs = append(out.Pairs, p)
		for a := 0; a < augment; a++ {
			v := p
			v.ID = p.ID + "-aug" + string(rune('a'+a))
			v.Question = Paraphrase(p.Question, 1+r.Intn(2), lex, r)
			out.Pairs = append(out.Pairs, v)
		}
	}
	return out
}
