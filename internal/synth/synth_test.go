package synth

import (
	"math/rand"
	"strings"
	"testing"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
)

func TestParaphraseStrengthZero(t *testing.T) {
	if got := Paraphrase("show employees", 0, lexicon.New(), rand.New(rand.NewSource(1))); got != "show employees" {
		t.Errorf("strength 0 changed input: %q", got)
	}
}

func TestParaphraseChangesText(t *testing.T) {
	lex := lexicon.New()
	q := "list employees with salary over 50000"
	changedCount := 0
	for seed := int64(0); seed < 20; seed++ {
		out := Paraphrase(q, 2, lex, rand.New(rand.NewSource(seed)))
		if out != q {
			changedCount++
		}
	}
	if changedCount < 15 {
		t.Errorf("paraphrase rarely fires: %d/20", changedCount)
	}
}

func TestParaphraseDeterministic(t *testing.T) {
	lex := lexicon.New()
	q := "list employees with salary over 50000"
	a := Paraphrase(q, 3, lex, rand.New(rand.NewSource(7)))
	b := Paraphrase(q, 3, lex, rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
}

func TestParaphraseStrengthMonotone(t *testing.T) {
	// Higher strength must never apply fewer operators (measured loosely
	// by edit distance from the original).
	lex := lexicon.New()
	q := "show the customers with city Berlin and credit over 10000"
	d1 := editDist(q, Paraphrase(q, 1, lex, rand.New(rand.NewSource(3))))
	d4 := editDist(q, Paraphrase(q, 4, lex, rand.New(rand.NewSource(3))))
	if d4 < d1 {
		t.Errorf("strength 4 (%d) closer than strength 1 (%d)", d4, d1)
	}
}

func editDist(a, b string) int {
	if a == b {
		return 0
	}
	return len(a) + len(b) // crude: any change counts
}

func TestOperators(t *testing.T) {
	lex := lexicon.New()
	r := rand.New(rand.NewSource(5))
	if out := apply(OpPrefix, "show employees", lex, r); !strings.Contains(out, "show employees") || out == "show employees" {
		t.Errorf("prefix: %q", out)
	}
	if out := apply(OpCompSwap, "salary over 100", lex, r); !strings.Contains(out, "exceeding") {
		t.Errorf("compswap: %q", out)
	}
	if out := apply(OpDropDet, "show the employees", lex, r); out != "show employees" {
		t.Errorf("dropdet: %q", out)
	}
	if out := apply(OpTypo, "salary figures", lex, r); out == "salary figures" {
		t.Errorf("typo did not fire")
	}
	if out := apply(OpSynonym, "salary of employees", lex, r); out == "salary of employees" {
		t.Errorf("synonym did not fire")
	}
}

func TestTrainingSet(t *testing.T) {
	d := benchdata.Sales(9)
	set := TrainingSet(d, 30, 0, lexicon.New(), 17)
	if len(set.Pairs) < 20 {
		t.Fatalf("pairs = %d", len(set.Pairs))
	}
	aug := TrainingSet(d, 30, 2, lexicon.New(), 17)
	if len(aug.Pairs) != 3*len(set.Pairs) {
		t.Fatalf("augmented = %d, base = %d", len(aug.Pairs), len(set.Pairs))
	}
	// Augmented variants share gold SQL with their base pair.
	if aug.Pairs[1].SQL.String() != aug.Pairs[0].SQL.String() {
		t.Error("augmented pair has different gold")
	}
	if aug.Pairs[1].Question == aug.Pairs[0].Question {
		t.Error("augmented question identical to base")
	}
}
