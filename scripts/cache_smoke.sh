#!/bin/sh
# cache_smoke.sh — end-to-end check of the answer cache's hot path.
#
# Serves the same question twice in one cmd/nlidb one-shot invocation
# (';'-separated questions share the gateway and its cache) with -explain
# traces on, then asserts on the printed traces that:
#   1. the first (cold) serve ran the pipeline — its trace has an
#      execute span and no cached attribute;
#   2. the repeat was a cache hit — marked cached in the provenance
#      line, cached=true on the trace root, and served WITHOUT an
#      execute span (the pipeline never ran);
#   3. the cache hit/miss counters surfaced on /metrics.
set -eu

PORT="${CACHE_SMOKE_PORT:-19191}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

QUESTION="customers in Berlin"
"$TMP/nlidb" -explain "$QUESTION; $QUESTION" >"$TMP/out.log" 2>&1 || {
    echo "cache-smoke: nlidb failed" >&2
    cat "$TMP/out.log" >&2
    exit 1
}

# Split the output at the second question header: everything before is
# the cold serve, everything after is the warm one.
awk 'BEGIN{n=0} /^» /{n++} n<2' "$TMP/out.log" >"$TMP/cold.log"
awk 'BEGIN{n=0} /^» /{n++} n>=2' "$TMP/out.log" >"$TMP/warm.log"

status=0
if ! grep -q 'execute' "$TMP/cold.log"; then
    echo "cache-smoke: cold serve shows no execute span" >&2
    status=1
fi
if grep -q 'cached=true' "$TMP/cold.log"; then
    echo "cache-smoke: cold serve claims to be cached" >&2
    status=1
fi
if ! grep -q 'cached=true' "$TMP/warm.log"; then
    echo "cache-smoke: warm serve lacks cached=true on the trace" >&2
    status=1
fi
if ! grep -q ', cached,' "$TMP/warm.log"; then
    echo "cache-smoke: warm provenance line not marked cached" >&2
    status=1
fi
if grep -q 'execute' "$TMP/warm.log"; then
    echo "cache-smoke: warm hit was served WITH an execute span" >&2
    status=1
fi

# Counter check over /metrics: one miss (cold) and one hit (warm).
( echo "$QUESTION"; echo "$QUESTION"; sleep 5 ) | \
    "$TMP/nlidb" -metrics-addr "$ADDR" >"$TMP/srv.log" 2>&1 &
SRV_PID=$!
i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "cache-smoke: endpoint $ADDR never came up" >&2
        cat "$TMP/srv.log" >&2
        kill "$SRV_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
sleep 1
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
kill "$SRV_PID" 2>/dev/null || true

for family in nlidb_cache_hits_total nlidb_cache_misses_total nlidb_cache_entries; do
    if ! grep -q "^$family" "$TMP/metrics.txt"; then
        echo "cache-smoke: missing family $family" >&2
        status=1
    fi
done
if ! grep -q '^nlidb_cache_hits_total [1-9]' "$TMP/metrics.txt"; then
    echo "cache-smoke: repeated question produced no cache hit" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- one-shot output ---" >&2
    cat "$TMP/out.log" >&2
    echo "--- scrape ---" >&2
    cat "$TMP/metrics.txt" >&2 || true
    exit "$status"
fi
echo "cache-smoke: ok (warm hit served without execute, counters present on $ADDR)"
