#!/bin/sh
# metrics_smoke.sh — end-to-end scrape check for the observability layer.
#
# Starts cmd/nlidb with -metrics-addr on a fixed localhost port, feeds it
# one question on stdin (so the query-path metrics have data), scrapes
# /metrics, and asserts every required Prometheus family is present.
# Exits non-zero, with the scrape dumped, on any missing family.
set -eu

PORT="${METRICS_PORT:-19190}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$NLIDB_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

# Ask one question, then hold stdin open long enough for the scrape.
( echo "customers in Berlin"; sleep 5 ) | \
    "$TMP/nlidb" -metrics-addr "$ADDR" -slowlog 1ns >"$TMP/out.log" 2>&1 &
NLIDB_PID=$!

# Wait for the endpoint to come up (the binary prints the bound address
# before reading stdin, so a short poll suffices).
i=0
until curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "metrics-smoke: endpoint $ADDR never came up" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Re-scrape after the question has certainly been served.
sleep 1
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"

status=0
for family in \
    nlidb_queries_total \
    nlidb_query_seconds \
    nlidb_stage_seconds \
    nlidb_breaker_state \
    nlidb_slow_queries_total \
    nlidb_rows_scanned_total; do
    if ! grep -q "^$family" "$TMP/metrics.txt"; then
        echo "metrics-smoke: missing family $family" >&2
        status=1
    fi
done

# The served question must be visible as a counted query.
if ! grep -q 'nlidb_queries_total{.*outcome="ok".*} [1-9]' "$TMP/metrics.txt"; then
    echo "metrics-smoke: no successful query counted" >&2
    status=1
fi

# expvar must be published alongside.
if ! curl -sf "http://$ADDR/debug/vars" | grep -q '"nlidb"'; then
    echo "metrics-smoke: /debug/vars missing the nlidb registry" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- scrape ---" >&2
    cat "$TMP/metrics.txt" >&2
    exit "$status"
fi
echo "metrics-smoke: ok (all families present on $ADDR)"
