#!/bin/sh
# overload_smoke.sh — end-to-end check of the overload-safe serving layer.
#
# Starts cmd/nlidb -serve with a deliberately tiny admission ceiling and
# no answer cache (every request pays the pipeline), fires a concurrent
# curl surge, and asserts the serving contract end to end:
#   - successful answers come back 200 with SQL in the body,
#   - excess load is shed with 503 + Retry-After (or 429 from the
#     per-client rate limiter) instead of queueing forever,
#   - the sheds are visible on /metrics (nlidb_admission_shed_total),
#   - admission gauges/counters are exported alongside the query families,
#   - SIGTERM drains: the process exits promptly and cleanly.
set -eu

PORT="${SERVE_PORT:-19191}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$NLIDB_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

"$TMP/nlidb" -serve "$ADDR" -cache 0 -max-inflight 1 -drain-timeout 5s \
    >"$TMP/out.log" 2>&1 &
NLIDB_PID=$!

# Wait for the listener.
i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "overload-smoke: $ADDR never came up" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

# One healthy request must answer with SQL.
curl -sf -X POST "http://$ADDR/query" \
    -d '{"question": "customers in Berlin"}' >"$TMP/ok.json"
if ! grep -q '"sql"' "$TMP/ok.json"; then
    echo "overload-smoke: healthy request returned no SQL: $(cat "$TMP/ok.json")" >&2
    exit 1
fi

# The surge: 40 concurrent requests against a 1-slot admission limit with
# a tight client budget. Each request records its status code and dumps
# its response headers for the Retry-After assertion.
SURGE=40
n=0
SURGE_PIDS=""
while [ "$n" -lt "$SURGE" ]; do
    curl -s -D "$TMP/h$n.txt" -o /dev/null -w '%{http_code}\n' \
        -X POST "http://$ADDR/query" \
        -H 'X-Deadline-Ms: 200' \
        -d '{"question": "customers with credit over 20000"}' \
        >>"$TMP/codes.txt" &
    SURGE_PIDS="$SURGE_PIDS $!"
    n=$((n + 1))
done
# Wait for the curls only — a bare `wait` would also wait on the server.
for pid in $SURGE_PIDS; do
    wait "$pid" || true
done

total="$(wc -l <"$TMP/codes.txt" | tr -d ' ')"
ok="$(grep -c '^200$' "$TMP/codes.txt" || true)"
shed="$(grep -c '^503$' "$TMP/codes.txt" || true)"
timeout="$(grep -c '^504$' "$TMP/codes.txt" || true)"
echo "overload-smoke: surge of $total → $ok ok, $shed shed (503), $timeout timeout (504)"

status=0
if [ "$ok" -lt 1 ]; then
    echo "overload-smoke: surge produced no successful answers" >&2
    status=1
fi
if [ "$shed" -lt 1 ]; then
    echo "overload-smoke: a $SURGE-deep surge against 1 slot shed nothing" >&2
    status=1
fi

# Every shed response must carry honest retry advice.
for h in "$TMP"/h*.txt; do
    if grep -q ' 503 ' "$h" && ! grep -qi '^Retry-After:' "$h"; then
        echo "overload-smoke: 503 without Retry-After:" >&2
        cat "$h" >&2
        status=1
        break
    fi
done

# The sheds must be visible on /metrics, next to the admission gauges.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for family in \
    nlidb_admission_shed_total \
    nlidb_admission_inflight \
    nlidb_admission_limit \
    nlidb_admission_queue_depth \
    nlidb_http_requests_total \
    nlidb_http_inflight; do
    if ! grep -q "^$family" "$TMP/metrics.txt"; then
        echo "overload-smoke: missing family $family" >&2
        status=1
    fi
done
if ! grep -q 'nlidb_admission_shed_total{.*} [1-9]' "$TMP/metrics.txt"; then
    echo "overload-smoke: shed counter never moved" >&2
    status=1
fi

# SIGTERM must drain and exit cleanly, within the drain budget plus slack.
kill -TERM "$NLIDB_PID"
i=0
while kill -0 "$NLIDB_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "overload-smoke: server did not exit within 10s of SIGTERM" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done
if ! grep -q 'drained' "$TMP/out.log"; then
    echo "overload-smoke: no drain log line" >&2
    cat "$TMP/out.log" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- codes ---" >&2
    sort "$TMP/codes.txt" | uniq -c >&2
    echo "--- metrics ---" >&2
    cat "$TMP/metrics.txt" >&2
    exit "$status"
fi
echo "overload-smoke: ok (shed with Retry-After, counters moved, drain clean on $ADDR)"
