#!/bin/sh
# plan_smoke.sh — end-to-end check of the bind/plan/execute pipeline.
#
# Serves a two-table equi-join question twice in one cmd/nlidb one-shot
# invocation with -explain traces on and the answer cache disabled (so
# the repeat re-enters the pipeline), then asserts on the printed traces
# that:
#   1. the interpreter produced a two-table equi-join statement;
#   2. the plan span shows a HashJoin node — the planner detected the
#      equi-join and did not fall back to a nested loop;
#   3. the plan span carries the compact plan shape attribute;
#   4. the repeated question hit the physical-plan cache.
set -eu

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

QUESTION="count of orders per customer"
"$TMP/nlidb" -explain -cache 0 "$QUESTION; $QUESTION" >"$TMP/out.log" 2>&1 || {
    echo "plan-smoke: nlidb failed" >&2
    cat "$TMP/out.log" >&2
    exit 1
}

status=0
if ! grep -q 'JOIN' "$TMP/out.log"; then
    echo "plan-smoke: question did not produce a join statement" >&2
    status=1
fi
if ! grep -q 'HashJoin' "$TMP/out.log"; then
    echo "plan-smoke: plan shows no HashJoin node for an equi-join" >&2
    status=1
fi
if grep -q 'NestedLoopJoin' "$TMP/out.log"; then
    echo "plan-smoke: equi-join fell back to a nested loop" >&2
    status=1
fi
if ! grep -q 'shape=.*hashjoin(scan,scan)' "$TMP/out.log"; then
    echo "plan-smoke: plan span lacks the hashjoin plan-shape attribute" >&2
    status=1
fi
if ! grep -q 'plan_cache=hit' "$TMP/out.log"; then
    echo "plan-smoke: repeated question did not hit the plan cache" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- one-shot output ---" >&2
    cat "$TMP/out.log" >&2
    exit "$status"
fi
echo "plan-smoke: ok (equi-join planned as HashJoin, shape traced, repeat hit the plan cache)"
