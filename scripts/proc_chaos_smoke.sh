#!/bin/sh
# proc_chaos_smoke.sh — real-process chaos over out-of-process shards.
#
# Starts cmd/nlidb -serve as a coordinator with -remote-shards spawn:2
# -replicas 2: the supervisor forks four REAL child processes (the same
# binary with -join S@E), ships each its CSV partition, and the
# coordinator routes over HTTP. Under a steady query load the smoke then
# SIGKILLs one replica of EVERY shard mid-flight and asserts the
# honesty-under-chaos contract:
#   - zero wrong answers: every 200 response either carries the correct
#     fleet-wide COUNT, or says so when it could not ("partial": true
#     with a smaller count); errors/sheds are honest refusals,
#   - bounded recovery: the supervisor relaunches the killed children
#     (with backoff) and a correct non-partial answer returns within
#     the recovery deadline,
#   - the supervisor log shows the SIGKILL exits and the restarts,
#   - SIGTERM drains the coordinator, and no child process outlives it.
set -eu

PORT="${SERVE_PORT:-19377}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
NLIDB_PID=""
LOAD_PID=""
cleanup() {
    kill "$LOAD_PID" 2>/dev/null || true
    kill "$NLIDB_PID" 2>/dev/null || true
    # Belt and braces: no shard child may outlive the smoke. The children
    # run the tmp-dir binary, so the path is unique to this run.
    pkill -9 -f "$TMP/nlidb" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

# -cache 0: every query must pay the full scatter so the kill window is
# actually observed, not papered over by the answer cache.
"$TMP/nlidb" -serve "$ADDR" -remote-shards spawn:2 -replicas 2 -cache 0 \
    -drain-timeout 5s >"$TMP/out.log" 2>&1 &
NLIDB_PID=$!

# Readiness: the coordinator only listens after all four children have
# imported their partitions and passed /healthz, so give it a while.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "proc-chaos: $ADDR never came up" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

if ! grep -q 'remote shards: 2 shards × 2 replicas' "$TMP/out.log"; then
    echo "proc-chaos: coordinator did not report the out-of-process topology" >&2
    cat "$TMP/out.log" >&2
    exit 1
fi
if [ "$(pgrep -cf "$TMP/nlidb .*-join")" -ne 4 ]; then
    echo "proc-chaos: expected 4 shard child processes, found:" >&2
    pgrep -af "$TMP/nlidb" >&2 || true
    exit 1
fi

QUESTION='{"question": "how many customers are there"}'

# Ground truth from the healthy fleet.
curl -sf -X POST "http://$ADDR/query" -d "$QUESTION" >"$TMP/base.json"
TOTAL="$(sed -n 's/.*"rows":\[\["\([0-9][0-9]*\)"\]\].*/\1/p' "$TMP/base.json")"
if [ -z "$TOTAL" ]; then
    echo "proc-chaos: baseline COUNT unreadable: $(cat "$TMP/base.json")" >&2
    exit 1
fi
if grep -q '"partial": *true' "$TMP/base.json"; then
    echo "proc-chaos: healthy fleet answered partial: $(cat "$TMP/base.json")" >&2
    exit 1
fi

# Steady load, one response per line.
(
    while :; do
        curl -s -m 5 -X POST "http://$ADDR/query" -d "$QUESTION" >>"$TMP/load.jsonl" 2>/dev/null || true
        printf '\n' >>"$TMP/load.jsonl"
        sleep 0.02
    done
) &
LOAD_PID=$!
sleep 0.5

# Mid-load: SIGKILL one replica of EVERY shard. Children carry their
# shard assignment as -join S@E on the command line.
for s in 0 1; do
    CHILD="$(pgrep -f "$TMP/nlidb .*-join ${s}@" | head -1)"
    if [ -z "$CHILD" ]; then
        echo "proc-chaos: no child found for shard $s" >&2
        exit 1
    fi
    kill -9 "$CHILD"
done

# Let the load run through the kill window.
sleep 1

# Bounded recovery: the supervisor must relaunch the killed children and
# a correct, non-partial answer must return within the deadline.
RECOVERED=""
i=0
while [ "$i" -lt 300 ]; do
    ANS="$(curl -s -m 5 -X POST "http://$ADDR/query" -d "$QUESTION" || true)"
    case "$ANS" in
    *'"rows":[["'"$TOTAL"'"]]'*)
        if ! printf '%s' "$ANS" | grep -q '"partial": *true'; then
            RECOVERED=1
            break
        fi
        ;;
    esac
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$RECOVERED" ]; then
    echo "proc-chaos: no correct non-partial answer within 30s of the kills" >&2
    cat "$TMP/out.log" >&2
    exit 1
fi

kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=""

status=0

# Zero wrong answers: every 200 under chaos is either the correct total
# or an honest partial (smaller count, flagged). Non-200s (sheds, shard
# down) are honest refusals and don't count against correctness.
ANSWERS=0
WRONG=0
while IFS= read -r line; do
    [ -z "$line" ] && continue
    count="$(printf '%s' "$line" | sed -n 's/.*"rows":\[\["\([0-9][0-9]*\)"\]\].*/\1/p')"
    [ -z "$count" ] && continue
    ANSWERS=$((ANSWERS + 1))
    if printf '%s' "$line" | grep -q '"partial": *true'; then
        if [ "$count" -ge "$TOTAL" ]; then
            echo "proc-chaos: partial answer claims count $count >= total $TOTAL" >&2
            WRONG=$((WRONG + 1))
        fi
    elif [ "$count" -ne "$TOTAL" ]; then
        echo "proc-chaos: WRONG answer: count $count != $TOTAL and not flagged partial: $line" >&2
        WRONG=$((WRONG + 1))
    fi
done <"$TMP/load.jsonl"
if [ "$ANSWERS" -lt 5 ]; then
    echo "proc-chaos: load loop produced only $ANSWERS answers" >&2
    status=1
fi
if [ "$WRONG" -ne 0 ]; then
    echo "proc-chaos: $WRONG wrong answers out of $ANSWERS" >&2
    status=1
fi

# The supervisor must have seen the SIGKILLs and scheduled restarts.
if ! grep -q 'signal: killed' "$TMP/out.log"; then
    echo "proc-chaos: supervisor log shows no SIGKILL exit" >&2
    status=1
fi
if ! grep -q 'restarting in' "$TMP/out.log"; then
    echo "proc-chaos: supervisor log shows no restart event" >&2
    status=1
fi

# SIGTERM must drain the coordinator AND reap every child.
kill -TERM "$NLIDB_PID"
i=0
while kill -0 "$NLIDB_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "proc-chaos: coordinator did not exit within 10s of SIGTERM" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done
NLIDB_PID=""
if ! grep -q 'drained' "$TMP/out.log"; then
    echo "proc-chaos: no drain log line" >&2
    status=1
fi
sleep 0.3
if pgrep -f "$TMP/nlidb" >/dev/null 2>&1; then
    echo "proc-chaos: shard children outlived the coordinator:" >&2
    pgrep -af "$TMP/nlidb" >&2 || true
    pkill -9 -f "$TMP/nlidb" 2>/dev/null || true
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- coordinator log ---" >&2
    cat "$TMP/out.log" >&2
    exit "$status"
fi
echo "proc-chaos: ok ($ANSWERS answers under real-process SIGKILL chaos, 0 wrong; children restarted and reaped on $ADDR)"
