#!/bin/sh
# session_smoke.sh — end-to-end check of conversational serving.
#
# Starts cmd/nlidb -serve with a short session TTL and walks the whole
# session protocol over HTTP:
#   - POST /session opens a conversation (session_id + ttl_ms, echoed in
#     the X-Session-ID header),
#   - a full question answers with rows,
#   - a follow-up ("how many are there") resolves against the tracked
#     context: context_resolved=true and the count matches turn 1's rows,
#   - the nlidb_session_* families are visible on /metrics,
#   - DELETE /session ends the conversation; asking it again is 410 Gone,
#   - an unknown session ID is 404,
#   - a session idle past its TTL answers 410 Gone.
set -eu

PORT="${SERVE_PORT:-19194}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$NLIDB_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

"$TMP/nlidb" -serve "$ADDR" -session-ttl 2s -drain-timeout 5s \
    >"$TMP/out.log" 2>&1 &
NLIDB_PID=$!

i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "session-smoke: $ADDR never came up" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

status=0

# Open a session.
curl -sf -X POST "http://$ADDR/session" -D "$TMP/create_hdr.txt" >"$TMP/create.json"
SID="$(sed -n 's/.*"session_id": *"\([0-9a-f]*\)".*/\1/p' "$TMP/create.json")"
if [ -z "$SID" ]; then
    echo "session-smoke: create returned no session_id: $(cat "$TMP/create.json")" >&2
    exit 1
fi
if ! grep -qi "^X-Session-ID: *$SID" "$TMP/create_hdr.txt"; then
    echo "session-smoke: create did not echo X-Session-ID" >&2
    status=1
fi

# Turn 1: a full question.
curl -sf -X POST "http://$ADDR/session/ask" \
    -H "X-Session-ID: $SID" \
    -d '{"utterance": "show customers with city Berlin"}' >"$TMP/t1.json"
if ! grep -q '"sql"' "$TMP/t1.json"; then
    echo "session-smoke: turn 1 returned no SQL: $(cat "$TMP/t1.json")" >&2
    exit 1
fi
rows1="$(grep -o '\["[^]]*"\]' "$TMP/t1.json" | wc -l | tr -d ' ')"

# Turn 2: the follow-up resolves against tracked context.
curl -sf -X POST "http://$ADDR/session/ask" \
    -H "X-Session-ID: $SID" \
    -d '{"utterance": "how many are there"}' >"$TMP/t2.json"
if ! grep -q '"context_resolved": *true' "$TMP/t2.json"; then
    echo "session-smoke: follow-up did not resolve context: $(cat "$TMP/t2.json")" >&2
    status=1
fi
count="$(sed -n 's/.*"rows": *\[\[ *"\([0-9]*\)".*/\1/p' "$TMP/t2.json")"
# rows1 counts turn 1's row arrays, minus one for the columns array.
want=$((rows1 - 1))
if [ "$count" != "$want" ]; then
    echo "session-smoke: follow-up count $count != turn-1 rows $want" >&2
    cat "$TMP/t1.json" "$TMP/t2.json" >&2
    status=1
fi

# Session families on /metrics.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for family in \
    nlidb_session_live \
    nlidb_session_created_total \
    nlidb_session_turns_total \
    nlidb_session_turn_seconds \
    nlidb_session_memory_bytes; do
    if ! grep -q "^$family" "$TMP/metrics.txt"; then
        echo "session-smoke: missing family $family" >&2
        status=1
    fi
done
if ! grep -q '^nlidb_session_live [1-9]' "$TMP/metrics.txt"; then
    echo "session-smoke: live-session gauge never moved" >&2
    status=1
fi

# End the session; asking it again is 410 Gone, not 404.
code="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/session" -H "X-Session-ID: $SID")"
if [ "$code" != "204" ]; then
    echo "session-smoke: end returned $code, want 204" >&2
    status=1
fi
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/session/ask" \
    -H "X-Session-ID: $SID" -d '{"utterance": "how many are there"}')"
if [ "$code" != "410" ]; then
    echo "session-smoke: ask after end returned $code, want 410" >&2
    status=1
fi

# An ID never issued is 404.
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/session/ask" \
    -H "X-Session-ID: deadbeefdeadbeefdeadbeefdeadbeef" -d '{"utterance": "x"}')"
if [ "$code" != "404" ]; then
    echo "session-smoke: unknown session returned $code, want 404" >&2
    status=1
fi

# TTL expiry: a fresh session left idle past -session-ttl answers 410.
curl -sf -X POST "http://$ADDR/session" >"$TMP/create2.json"
SID2="$(sed -n 's/.*"session_id": *"\([0-9a-f]*\)".*/\1/p' "$TMP/create2.json")"
sleep 3
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/session/ask" \
    -H "X-Session-ID: $SID2" -d '{"utterance": "how many are there"}')"
if [ "$code" != "410" ]; then
    echo "session-smoke: expired session returned $code, want 410" >&2
    status=1
fi

kill -TERM "$NLIDB_PID"
i=0
while kill -0 "$NLIDB_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "session-smoke: server did not exit within 10s of SIGTERM" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

if [ "$status" -ne 0 ]; then
    echo "--- turn 1 ---" >&2
    cat "$TMP/t1.json" >&2
    echo "--- turn 2 ---" >&2
    cat "$TMP/t2.json" >&2
    exit "$status"
fi
echo "session-smoke: ok (create → ask → follow-up resolved → metrics → 410 after end/expiry, 404 unknown on $ADDR)"
