#!/bin/sh
# trace_smoke.sh — end-to-end check of the fleet observability layer.
#
# Starts cmd/nlidb -serve sharded (3 shards × 2 replicas) with the answer
# cache off and trace sampling at 1, serves one scatter question over
# HTTP, and asserts the distributed-tracing contract end to end:
#   - the /query response carries a trace_id,
#   - GET /trace?id=<trace_id> renders ONE span tree that crosses the
#     coordinator/replica boundary: classify + scatter routing at the
#     coordinator, per-replica attempt spans, the replica gateway's own
#     interpret/execute spans nested beneath them, and the merge span,
#   - /fleet reports per-shard/per-replica rollups with closed breakers,
#   - /slo reports multi-window burn rates that saw the request,
#   - the nlidb_shard_* and nlidb_slo_* families ride the /metrics scrape,
#   - SIGTERM drains: the process exits promptly and cleanly.
set -eu

PORT="${SERVE_PORT:-19292}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$NLIDB_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$(dirname "$0")/.."
go build -o "$TMP/nlidb" ./cmd/nlidb

# -cache 0 so the question pays the full pipeline (cached answers skip
# tracing); -trace-sample 1 so the healthy trace is retained for /trace.
"$TMP/nlidb" -serve "$ADDR" -shards 3 -replicas 2 -cache 0 -trace-sample 1 \
    -drain-timeout 5s >"$TMP/out.log" 2>&1 &
NLIDB_PID=$!

# Wait for the listener.
i=0
until curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "trace-smoke: $ADDR never came up" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done

if ! grep -q 'sharded: 3 shards × 2 replicas' "$TMP/out.log"; then
    echo "trace-smoke: server did not report the sharded topology" >&2
    cat "$TMP/out.log" >&2
    exit 1
fi

status=0

# A cross-shard aggregate must scatter and come back whole, with a trace.
curl -sf -X POST "http://$ADDR/query" \
    -d '{"question": "how many customers are there"}' >"$TMP/ans.json"
if ! grep -q '"sql"' "$TMP/ans.json"; then
    echo "trace-smoke: scatter question returned no SQL: $(cat "$TMP/ans.json")" >&2
    exit 1
fi
if grep -q '"partial": *true' "$TMP/ans.json"; then
    echo "trace-smoke: healthy cluster answered partial: $(cat "$TMP/ans.json")" >&2
    status=1
fi
TID="$(sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$TMP/ans.json")"
if [ -z "$TID" ]; then
    echo "trace-smoke: response carries no trace_id: $(cat "$TMP/ans.json")" >&2
    exit 1
fi

# The exemplar store must render the whole distributed tree under that ID:
# coordinator spans (classify/scatter/merge), the per-replica attempt legs,
# and the replica gateway's own spans (interpret/execute) nested beneath —
# proof that one trace crosses the coordinator/replica boundary.
curl -sf "http://$ADDR/trace?id=$TID" >"$TMP/trace.txt"
for span in classify route=scatter scatter attempt replica= execute merge; do
    if ! grep -q "$span" "$TMP/trace.txt"; then
        echo "trace-smoke: /trace?id=$TID missing \"$span\"" >&2
        status=1
    fi
done

# /fleet: per-shard rollups, every replica breaker closed after a healthy
# scatter that touched all three shards.
curl -sf "http://$ADDR/fleet" >"$TMP/fleet.json"
for want in '"shards"' '"replicas"' '"state": "closed"' '"requests"'; do
    if ! grep -q "$want" "$TMP/fleet.json"; then
        echo "trace-smoke: /fleet missing $want" >&2
        status=1
    fi
done

# /slo: the burn-rate windows exist and the 5m window saw the request.
curl -sf "http://$ADDR/slo" >"$TMP/slo.json"
for want in '"window": "5m"' '"window": "3d"' '"availability_burn_rate"' '"latency_burn_rate"'; do
    if ! grep -q "$want" "$TMP/slo.json"; then
        echo "trace-smoke: /slo missing $want" >&2
        status=1
    fi
done
if ! grep -q '"total": [1-9]' "$TMP/slo.json"; then
    echo "trace-smoke: /slo windows never saw the request" >&2
    status=1
fi

# The fleet and SLO families must ride the same /metrics scrape.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for family in \
    nlidb_shard_replica_ewma_micros \
    nlidb_shard_replica_inflight \
    nlidb_shard_latency_ms \
    nlidb_shard_hedge_wins_total \
    nlidb_shard_partial_rate \
    nlidb_slo_burn_rate \
    nlidb_slo_fast_burn_alert; do
    if ! grep -q "^$family" "$TMP/metrics.txt"; then
        echo "trace-smoke: /metrics missing family $family" >&2
        status=1
    fi
done

# SIGTERM must drain and exit cleanly.
kill -TERM "$NLIDB_PID"
i=0
while kill -0 "$NLIDB_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "trace-smoke: server did not exit within 10s of SIGTERM" >&2
        cat "$TMP/out.log" >&2
        exit 1
    fi
    sleep 0.1
done
if ! grep -q 'drained' "$TMP/out.log"; then
    echo "trace-smoke: no drain log line" >&2
    cat "$TMP/out.log" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- answer ---" >&2
    cat "$TMP/ans.json" >&2
    echo "--- trace ---" >&2
    cat "$TMP/trace.txt" >&2
    echo "--- fleet ---" >&2
    cat "$TMP/fleet.json" >&2
    exit "$status"
fi
echo "trace-smoke: ok (trace $TID crosses the node boundary; /fleet, /slo, /metrics agree on $ADDR)"
